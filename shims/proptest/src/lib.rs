//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API the seed's property tests use —
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`, `Strategy`
//! with `prop_map`, `any::<T>()`, `Just`, integer/float range strategies,
//! regex-subset string strategies, `collection::vec` and `option::of` — on a
//! deterministic SplitMix64 generator seeded from the test name.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (a failing case prints its generated inputs but is not
//! minimized), no persistence files, and string strategies support only the
//! `[class]{m,n}` regex subset that appears in this repo's tests.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not failed.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Deterministic SplitMix64 RNG; the seed is derived from the test name
    /// so every `cargo test` run generates identical cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name gives a stable, spread-out seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            loop {
                let x = self.next_u64();
                let m = (x as u128).wrapping_mul(n as u128);
                let lo = m as u64;
                if lo >= n.wrapping_neg() % n {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its payload.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed variants (backs `prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].generate(rng)
        }
    }

    // ---- primitive strategies: `any::<T>()` --------------------------------

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced, magnitude-spread values.
            let mag = (rng.unit_f64() * 2.0 - 1.0) * 1e9;
            mag + rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    // ---- range strategies --------------------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    // ---- regex-subset string strategies ------------------------------------

    /// `&str` patterns act as strategies, supporting the `[class]{m,n}` regex
    /// subset used in this repo (classes with ranges and literals, counted
    /// repetition, literal characters outside classes).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (alphabet, next) = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                (parse_class(&chars[i + 1..close]), close + 1)
            } else {
                (vec![chars[i]], i + 1)
            };
            let (min, max, next) = parse_quantifier(&chars, next, pattern);
            let n = if min == max {
                min
            } else {
                min + rng.below((max - min + 1) as u64) as usize
            };
            for _ in 0..n {
                let j = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[j]);
            }
            i = next;
        }
        out
    }

    /// Expands `a-zA-Z0-9_ -` style class bodies into their member chars.
    fn parse_class(body: &[char]) -> Vec<char> {
        let mut members = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    members.push(c);
                }
                i += 3;
            } else {
                members.push(body[i]);
                i += 1;
            }
        }
        assert!(!members.is_empty(), "empty character class");
        members
    }

    /// Parses an optional `{m}` / `{m,n}` after an atom; default is `{1}`.
    fn parse_quantifier(chars: &[char], at: usize, pattern: &str) -> (usize, usize, usize) {
        if at >= chars.len() || chars[at] != '{' {
            return (1, 1, at);
        }
        let close = chars[at..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| at + p)
            .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
        let body: String = chars[at + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("bad quantifier"),
                hi.trim().parse().expect("bad quantifier"),
            ),
            None => {
                let n = body.trim().parse().expect("bad quantifier");
                (n, n)
            }
        };
        (min, max, close + 1)
    }

    // ---- tuple strategies --------------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// `collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `option::of(inner)` — `None` a quarter of the time, like proptest's
    /// default probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Like `assert!` but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!` but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!` but reported through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The proptest test-harness macro: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while passed < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest: too many rejected cases ({} passed of {} wanted)",
                        passed, config.cases
                    );
                }
                let case = (|rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $binding = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })(&mut rng);
                match case {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempts, msg);
                    }
                }
            }
        }
    )*};
}
