//! Offline stand-in for `serde`.
//!
//! This environment has no access to a crates registry, so the workspace
//! vendors the smallest possible surface the seed code touches: the
//! `Serialize` / `Deserialize` derive macros.  Nothing in the repo actually
//! serializes data yet (no `serde_json` call sites), so the derives expand to
//! nothing.  If a future PR needs real serialization, replace this shim with
//! the published crate or grow it into a trait + impl generator.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
