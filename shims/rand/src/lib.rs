//! Offline stand-in for `rand`.
//!
//! The data generator only needs a seedable RNG and uniform ranges, so this
//! shim provides a SplitMix64 core behind the `rand` 0.9-style names the seed
//! imports (`rngs::StdRng`, `SeedableRng`, and a `RngExt` extension trait with
//! `random_range`).  SplitMix64 passes BigCrush for this use (whole-range
//! uniform draws) and keeps datasets bit-for-bit reproducible for a seed.

use std::ops::{Range, RangeInclusive};

/// Core of every RNG in this shim: produces raw `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed (the only constructor the repo uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods mirroring `rand::Rng`'s `random_*` family.
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Rejection-free (modulo-bias-free) draw in `[0, n)` via Lemire's method.
fn u64_below(rng: &mut impl RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = end.abs_diff(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..=1000), b.random_range(0u64..=1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(1..=5i64);
            assert!((1..=5).contains(&v));
            let f = rng.random_range(0.0..400.0);
            assert!((0.0..400.0).contains(&f));
            let u = rng.random_range(10u64..20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
