//! Offline stand-in for `criterion`.
//!
//! Implements exactly the surface the `bench` crate's seven bench targets
//! use — `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, bench_function, finish}`
//! and `Bencher::iter` — with a simple wall-clock measurement loop instead of
//! Criterion's statistical machinery.  Each benchmark warms up once, runs
//! `sample_size` timed samples (stopping early once `measurement_time` is
//! spent), and prints `name  time: [mean ± spread]` in a Criterion-like line.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Declared per-iteration work, used to report throughput alongside time.
///
/// Mirrors `criterion::Throughput`: a group that declares
/// `Throughput::Elements(n)` has every benchmark line annotated with
/// `n / mean_sample_time` rows per second (or bytes per second for
/// [`Throughput::Bytes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each sample processes this many elements (e.g. rows).
    Elements(u64),
    /// Each sample processes this many bytes.
    Bytes(u64),
}

/// Re-export so `criterion::black_box` callers work too.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point handed to every registered bench function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        run_benchmark(&id.to_string(), sample_size, measurement_time, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample/measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares how much work one sample performs; subsequent
    /// `bench_function` lines report it as a rate (rows/s or bytes/s).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
    };
    // Warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();

    let budget_start = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        if budget_start.elapsed() > measurement_time {
            break;
        }
    }

    let n = bencher.samples.len().max(1);
    let mean = bencher.samples.iter().sum::<Duration>() / n as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let rate = throughput.map(|t| {
        let secs = mean.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(e) => format!("  thrpt: {:.0} elem/s", e as f64 / secs),
            Throughput::Bytes(b) => format!("  thrpt: {:.0} B/s", b as f64 / secs),
        }
    });
    println!(
        "{name:<60} time: [{min:?} {mean:?} {max:?}]  samples: {n}{}",
        rate.unwrap_or_default()
    );
}

/// Passed to the closure given to `bench_function`; `iter` times one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        std_black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// bench with a default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
