//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s.
//! Poisoned locks are recovered rather than propagated — the closest match to
//! parking_lot, whose locks never poison.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read`/`write` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
