//! A TPC-W bookstore session on the Synergy system, compared against the
//! Baseline (no views, MVCC) system — the workload the paper's introduction
//! motivates: product browsing, best sellers, order display and checkout
//! writes over a horizontally scaled NoSQL store.
//!
//! ```text
//! cargo run --release --example tpcw_bookstore
//! ```

use tpcw::queries::join_queries;
use tpcw::systems::{build_system, SystemKind};
use tpcw::writes::write_statements;
use tpcw::{TpcwDataset, TpcwScale};

fn main() {
    let scale = TpcwScale::new(200);
    println!(
        "generating the TPC-W dataset: {} customers, {} items, {} orders ...",
        scale.customers,
        scale.items(),
        scale.orders()
    );
    let dataset = TpcwDataset::generate(scale);

    println!("standing up Synergy and Baseline over the same data ...\n");
    let synergy = build_system(SystemKind::Synergy, &dataset);
    let baseline = build_system(SystemKind::Baseline, &dataset);

    println!("{:<6} {:<55} {:>14} {:>14}", "query", "description", "Synergy (ms)", "Baseline (ms)");
    for query in join_queries() {
        let params = query.params(scale, 1);
        let statement = query.statement();
        let synergy_outcome = synergy.execute(&statement, &params).expect("synergy runs");
        let baseline_outcome = baseline.execute(&statement, &params).expect("baseline runs");
        println!(
            "{:<6} {:<55} {:>14.1} {:>14.1}",
            query.id,
            query.description,
            synergy_outcome.elapsed.as_millis_f64(),
            baseline_outcome.elapsed.as_millis_f64()
        );
    }

    println!("\ncheckout path (write statements):");
    println!("{:<6} {:<40} {:>14} {:>14}", "write", "description", "Synergy (ms)", "Baseline (ms)");
    for write in write_statements() {
        let params = write.params(scale, 7);
        let statement = write.statement();
        let synergy_outcome = synergy.execute(&statement, &params).expect("synergy runs");
        let baseline_outcome = baseline.execute(&statement, &params).expect("baseline runs");
        println!(
            "{:<6} {:<40} {:>14.1} {:>14.1}",
            write.id,
            write.description,
            synergy_outcome.elapsed.as_millis_f64(),
            baseline_outcome.elapsed.as_millis_f64()
        );
    }

    println!(
        "\ndatabase sizes: Synergy {:.1} MiB (base tables + views + view-indexes), Baseline {:.1} MiB",
        synergy.database_size_bytes() as f64 / (1024.0 * 1024.0),
        baseline.database_size_bytes() as f64 / (1024.0 * 1024.0),
    );
    println!("(all times are simulated milliseconds from the cluster cost model — see DESIGN.md §7)");
}
