//! The §IX-B micro-benchmark as a standalone program: scans of the
//! Customer-Orders and Customer-Orders-Order_line materialized views versus
//! the HBase join algorithm, across database scales (the paper's Figure 10).
//!
//! ```text
//! cargo run --release --example micro_view_vs_join
//! ```

use tpcw::micro::MicroBench;

fn main() {
    println!("{:<10} {:<6} {:>12} {:>16} {:>16} {:>10}",
        "customers", "query", "result rows", "view scan (ms)", "join algo (ms)", "speedup");
    for customers in [50u64, 200, 800] {
        let bench = MicroBench::build(customers).expect("micro benchmark builds");
        for query_index in 0..2 {
            let measurement = bench.measure(query_index).expect("measurement");
            println!(
                "{:<10} {:<6} {:>12} {:>16.1} {:>16.1} {:>9.1}x",
                customers,
                measurement.query,
                measurement.result_rows,
                measurement.view_scan.as_millis_f64(),
                measurement.join_algorithm.as_millis_f64(),
                measurement.speedup()
            );
        }
    }
    println!("\npaper (Figure 10, 50k customers): view scan 6x (Q1) and 11.7x (Q2) faster than the join algorithm");
}
