//! Concurrent checkouts: several client threads insert order lines and
//! update customer balances for the *same* customers while reader threads
//! continuously run the customer-order join.  Demonstrates the hierarchical
//! single-lock protocol (writers targeting the same root serialize, writers
//! on different roots proceed in parallel) and the read-committed dirty-row
//! protocol (readers never observe half-applied view updates).
//!
//! ```text
//! cargo run --release --example concurrent_checkout
//! ```

use relational::Value;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use tpcw::queries::join_queries;
use tpcw::systems::{build_system, EvaluatedSystem, HBaseSystem, SystemKind};
use tpcw::{TpcwDataset, TpcwScale};

fn main() {
    let scale = TpcwScale::new(50);
    let dataset = TpcwDataset::generate(scale);
    println!("building the Synergy system over {} customers ...", scale.customers);
    let boxed = build_system(SystemKind::Synergy, &dataset);
    // Down-cast through the concrete constructor for direct access to the
    // inner SynergySystem (the trait object is enough for the benchmark
    // harness, but here we want to inspect lock state afterwards).
    drop(boxed);
    let system = HBaseSystem::build(SystemKind::Synergy, &dataset);

    let writes_done = AtomicUsize::new(0);
    let reads_done = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Four writer threads, all checking out carts for customers 1..=4.
        for writer in 0..4u64 {
            let system = &system;
            let writes_done = &writes_done;
            scope.spawn(move || {
                let insert = sql::parse_statement(
                    "INSERT INTO Order_line (ol_o_id, ol_id, ol_i_id, ol_qty, ol_discount, ol_comments) \
                     VALUES (?, ?, ?, ?, ?, ?)",
                )
                .unwrap();
                let update = sql::parse_statement(
                    "UPDATE Customer SET c_balance = ?, c_ytd_pmt = ?, c_last_login = ? WHERE c_id = ?",
                )
                .unwrap();
                for i in 0..10u64 {
                    // Every writer hits order (writer+1): same Customer root
                    // rows, so the hierarchical lock serializes them.
                    let order = (writer % 4) as i64 + 1;
                    system
                        .execute(
                            &insert,
                            &[
                                Value::Int(order),
                                Value::Int(1000 + (writer * 10 + i) as i64),
                                Value::Int(((writer * 13 + i) % scale.items()) as i64 + 1),
                                Value::Int(1),
                                Value::Float(0.0),
                                Value::str("concurrent checkout"),
                            ],
                        )
                        .expect("insert order line");
                    system
                        .execute(
                            &update,
                            &[
                                Value::Float(10.0 * i as f64),
                                Value::Float(5.0 * i as f64),
                                Value::Int(20170701),
                                Value::Int(order),
                            ],
                        )
                        .expect("update customer");
                    writes_done.fetch_add(2, Ordering::Relaxed);
                }
            });
        }
        // Two reader threads run the customer-order join continuously.
        for _ in 0..2 {
            let system = &system;
            let reads_done = &reads_done;
            let stop = &stop;
            scope.spawn(move || {
                let q2 = join_queries().remove(1);
                let statement = q2.statement();
                while !stop.load(Ordering::Relaxed) {
                    let outcome = system
                        .execute(&statement, &q2.params(scale, reads_done.load(Ordering::Relaxed) as u64))
                        .expect("read never observes dirty rows");
                    assert!(outcome.rows <= 1);
                    reads_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Let the writers finish, then stop the readers.
        scope.spawn(|| {
            while writes_done.load(Ordering::Relaxed) < 4 * 10 * 2 {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    println!(
        "completed {} write transactions and {} consistent reads",
        writes_done.load(Ordering::Relaxed),
        reads_done.load(Ordering::Relaxed)
    );
    println!(
        "order lines now stored: {}, view rows: {}",
        system.inner().cluster().row_count("Order_line").unwrap(),
        system
            .inner()
            .cluster()
            .row_count("V_Author__Item__Order_line")
            .or_else(|_| system.inner().cluster().row_count("V_Item__Order_line"))
            .unwrap_or(0)
    );
    println!("no reader ever observed a dirty (half-applied) view row — read committed holds.");
}
