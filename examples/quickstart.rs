//! Quickstart: the paper's running Company example, end to end.
//!
//! Builds the Company schema of Figure 2, runs the candidate-view generation
//! mechanism (§V) with roots {Address, Department}, selects views for the
//! three-query workload (§VI), prints the rooted trees / selected views /
//! rewritten queries, then stands up the full Synergy system on the
//! simulated NoSQL cluster and executes a few statements.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nosql_store::{Cluster, ClusterConfig};
use query::ColumnType;
use relational::{company, Row, Value};
use sql::parse_workload;
use synergy::{SynergyConfig, SynergySystem};

fn company_types(_relation: &str, column: &str) -> Option<ColumnType> {
    matches!(
        column,
        "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo" | "P_DNo"
            | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
    )
    .then_some(ColumnType::Int)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = company::company_schema();
    let workload_sql = company::company_workload_sql();
    let workload = parse_workload(workload_sql.iter().map(String::as_str))?;

    println!("== Synergy quickstart: the Company database ==\n");
    println!("workload:");
    for (i, sql) in workload_sql.iter().enumerate() {
        println!("  W{}: {sql}", i + 1);
    }

    // Offline pipeline: candidate views → selection → rewriting → tables.
    let cluster = Cluster::new(ClusterConfig::default());
    let system = SynergySystem::build(
        cluster,
        SynergyConfig::new(
            schema,
            workload.clone(),
            company::company_roots(),
            &company_types,
        ),
    )?;

    println!("\nrooted trees (Figure 4b):");
    for tree in &system.candidates().trees {
        println!("  root {}:", tree.root);
        for edge in &tree.edges {
            println!("    {} -> {}  {}", edge.from, edge.to, edge.label());
        }
    }

    println!("\nselected views (§VI-A):");
    for view in &system.selection().views {
        println!("  {}  (stored as {})", view.display_name(), view.table_name());
    }
    println!("\nview-indexes (§VI-C / §VII-C):");
    for index in &system.selection().view_indexes {
        println!(
            "  {} on {:?}{}",
            index.name,
            index.indexed_on,
            if index.for_maintenance { "  [maintenance]" } else { "" }
        );
    }

    println!("\nrewritten workload (§VI-B):");
    for statement in &workload {
        println!("  {}", system.rewrite(statement));
    }

    // Load a tiny database and run the workload.
    system.bulk_load(
        "Address",
        &(1..=3i64)
            .map(|aid| {
                Row::new()
                    .with("AID", aid)
                    .with("Street", format!("{aid} Main St"))
                    .with("City", "Nashville")
                    .with("Zip", 37200 + aid)
            })
            .collect::<Vec<_>>(),
    )?;
    system.bulk_load(
        "Department",
        &[Row::new().with("DNo", 1).with("DName", "Research")],
    )?;
    system.bulk_load(
        "Employee",
        &(1..=3i64)
            .map(|eid| {
                Row::new()
                    .with("EID", eid)
                    .with("EName", format!("Employee{eid}"))
                    .with("EHome_AID", eid)
                    .with("EOffice_AID", 1)
                    .with("E_DNo", 1)
            })
            .collect::<Vec<_>>(),
    )?;
    system.bulk_load(
        "Works_On",
        &[
            Row::new().with("WO_EID", 1).with("WO_PNo", 1).with("Hours", 12),
            Row::new().with("WO_EID", 2).with("WO_PNo", 1).with("Hours", 40),
        ],
    )?;
    system.bulk_load(
        "Project",
        &[Row::new().with("PNo", 1).with("PName", "Synergy").with("P_DNo", 1)],
    )?;
    system.materialize_views()?;

    println!("\nW1 (employee home address) for EID = 2:");
    let result = system.execute(&workload[0], &[Value::Int(2)])?;
    for row in &result.rows {
        println!("  {row}");
    }

    println!("\ninserting a Works_On row through the single-lock transaction layer ...");
    let insert =
        sql::parse_statement("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)")?;
    let plan = system.plan_write(&insert)?;
    println!("  plan: lock root = {:?}, affected views = {:?}", plan.lock_root, plan.affected_views);
    system.execute(&insert, &[Value::Int(3), Value::Int(1), Value::Int(25)])?;

    println!("\nW3 (employees working 25 hours):");
    let result = system.execute(&workload[2], &[Value::Int(25)])?;
    for row in &result.rows {
        println!("  {row}");
    }

    println!(
        "\ndatabase size: {} bytes across {} tables; total simulated time charged: {}",
        system.database_size_bytes(),
        system.cluster().list_tables().len(),
        system.cluster().clock().now().as_nanos() as f64 / 1e6
    );
    Ok(())
}
