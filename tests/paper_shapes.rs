//! Workspace-level tests asserting the *shape* of the paper's headline
//! results at laptop scale: who wins, in which direction, and by more than a
//! trivial margin.  Absolute numbers are not asserted (the substrate is a
//! simulator, not the paper's EC2 cluster) — see EXPERIMENTS.md.

use bench::{ablation_lock_granularity, comparison_matrix, fig10_micro, fig11_lock_overhead};

#[test]
fn figure_10_view_scans_beat_joins_and_the_gap_grows_with_depth() {
    let rows = fig10_micro(&[40, 160], 2, 1);
    for row in &rows {
        assert!(
            row.speedup > 1.5,
            "{} at {} customers: view scan must clearly beat the join (got {:.2}x)",
            row.query,
            row.customers,
            row.speedup
        );
    }
    // The three-way join (Q2) benefits more than the two-way join (Q1),
    // as in the paper's 6x vs 11.7x.
    let q1 = rows.iter().find(|r| r.query == "Q1" && r.customers == 160).unwrap();
    let q2 = rows.iter().find(|r| r.query == "Q2" && r.customers == 160).unwrap();
    assert!(q2.speedup > q1.speedup);
}

#[test]
fn figure_11_locking_overhead_grows_with_lock_count() {
    let rows = fig11_lock_overhead(&[10, 100, 1000], 2);
    assert!(rows[1].overhead_ms.mean > rows[0].overhead_ms.mean * 5.0);
    assert!(rows[2].overhead_ms.mean > rows[1].overhead_ms.mean * 5.0);
    // 100 locks already cost hundreds of simulated milliseconds — more than
    // any single Synergy write transaction — motivating the single lock.
    assert!(rows[1].overhead_ms.mean > 500.0);
}

#[test]
fn ablation_single_hierarchical_lock_vs_per_row_locks() {
    let rows = ablation_lock_granularity(&[100]);
    assert!(rows[0].per_row_locks_ms > rows[0].single_lock_ms * 50.0);
}

#[test]
fn figures_12_14_and_tables_2_3_shapes() {
    // One shared matrix keeps this expensive test to a single system build.
    let matrix = comparison_matrix(60, 2);

    // --- Figure 12 (joins) ---
    // Synergy is faster than every MVCC system on average.
    for other in ["MVCC-A", "MVCC-UA", "Baseline"] {
        let ratio = matrix
            .mean_ratio(other, "Synergy", |s| s.starts_with('Q'))
            .unwrap();
        assert!(ratio > 2.0, "{other} / Synergy joins ratio {ratio:.1} too small");
    }
    // VoltDB is faster than Synergy on the joins it supports, but does not
    // support Q3 / Q7 / Q9 / Q10.
    let synergy_over_voltdb = matrix
        .mean_ratio("Synergy", "VoltDB", |s| s.starts_with('Q'))
        .unwrap();
    assert!(synergy_over_voltdb > 1.0);
    for unsupported in ["Q3", "Q7", "Q9", "Q10"] {
        assert!(matrix.mean_ms(unsupported, "VoltDB").is_none());
    }
    for supported in ["Q1", "Q2", "Q4", "Q5", "Q6", "Q8", "Q11"] {
        assert!(matrix.mean_ms(supported, "VoltDB").is_some());
    }

    // --- Figure 14 (writes) ---
    for other in ["MVCC-A", "MVCC-UA", "Baseline"] {
        let ratio = matrix
            .mean_ratio(other, "Synergy", |s| s.starts_with('W'))
            .unwrap();
        assert!(ratio > 3.0, "{other} / Synergy writes ratio {ratio:.1} too small");
    }
    let synergy_over_voltdb_writes = matrix
        .mean_ratio("Synergy", "VoltDB", |s| s.starts_with('W'))
        .unwrap();
    assert!(synergy_over_voltdb_writes > 2.0);
    // W6 and W11 (shopping cart, not part of any view) are among Synergy's
    // cheapest writes, as the paper observes.
    let w6 = matrix.mean_ms("W6", "Synergy").unwrap();
    let w13 = matrix.mean_ms("W13", "Synergy").unwrap();
    assert!(w13 > w6 * 2.0, "W13 ({w13:.1}) should dwarf W6 ({w6:.1})");

    // --- Table II (sum over all statements, VoltDB excluded) ---
    let synergy_total = matrix.total_ms("Synergy").unwrap();
    let mvcc_a_total = matrix.total_ms("MVCC-A").unwrap();
    let baseline_total = matrix.total_ms("Baseline").unwrap();
    assert!(synergy_total * 3.0 < mvcc_a_total);
    assert!(synergy_total * 3.0 < baseline_total);
    // MVCC-A beats Baseline only once the database is large enough for the
    // join savings to outweigh its extra view-maintenance writes; that
    // ordering is checked at the report's default scale (500 customers) and
    // recorded in EXPERIMENTS.md.  Here (tiny CI scale) we only require that
    // the view maintenance does not blow the total up.
    assert!(mvcc_a_total < baseline_total * 1.3);

    // --- Table III (database sizes) ---
    let size = |name: &str| *matrix.database_bytes.get(name).unwrap();
    assert!(size("Synergy") > size("Baseline"), "views cost storage");
    assert!(size("MVCC-A") > size("Baseline"));
    assert!(size("VoltDB") < size("Baseline"), "no index/view tables in VoltDB");
    assert!(size("MVCC-UA") >= size("Baseline"));
    assert!(size("Synergy") >= size("MVCC-UA"));
}
