//! Golden-plan snapshot tests: the `EXPLAIN` rendering for the
//! micro-benchmark query shapes is pinned against committed text under
//! `tests/golden/`, at `threads = 1` and `threads = 4`.
//!
//! What the snapshots prove:
//!
//! * **Q1/Q2 baseline** — the join algorithm plans as left-deep hash joins
//!   over full scans, and at 4 threads every join is hash-**partitioned**
//!   and every full scan fans out region-**parallel**;
//! * **Q1/Q2 Synergy** — the view-rewrite planner rule fires and is
//!   visible as a `Rewrite` node substituting the materialized view for
//!   the base tables;
//! * **LIMIT-50** — a bare LIMIT over the rewritten view pushes the row
//!   limit into the store scan (`store-pushdown`) and pins the source to
//!   the serial cursor even at 4 threads;
//! * **ORDER BY + LIMIT** — plans as a bounded `TopK` (per-worker heaps at
//!   4 threads) under the final projection;
//! * **Delta plans** — the incremental maintenance plans compiled from the
//!   views' defining joins: the Orders side probes its covered maintenance
//!   index (`MI_Orders__o_c_id`), the Order_line side probes by key prefix
//!   (its FK is the leading key column), and parents probe by primary key.
//!
//! Plan text is deterministic by construction (no row counts or timings in
//! the rendering), so these are exact string comparisons.

use sql::{parse_statement, Statement};
use tpcw::micro::{micro_queries, MicroBench};

fn limit50_query() -> Statement {
    parse_statement("SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id LIMIT 50")
        .unwrap()
}

fn topk_query() -> Statement {
    parse_statement(
        "SELECT c.c_uname, o.o_total FROM Customer AS c, Orders AS o \
         WHERE c.c_id = o.o_c_id ORDER BY o.o_date DESC, o.o_id DESC LIMIT 10",
    )
    .unwrap()
}

fn assert_golden(actual: &str, expected: &str, what: &str) {
    assert_eq!(
        actual, expected,
        "golden plan mismatch for {what}\n--- actual ---\n{actual}\n--- expected ---\n{expected}"
    );
}

fn check_at(threads: usize, goldens: &[(&str, &str)]) {
    let bench = MicroBench::build_with_threads(20, threads).expect("micro benchmark builds");
    let system = bench.system();
    let queries = micro_queries();
    for (name, expected) in goldens {
        let actual = match *name {
            "q1_baseline" => system.executor().explain_statement(&queries[0]).unwrap(),
            "q2_baseline" => system.executor().explain_statement(&queries[1]).unwrap(),
            "q1_synergy" => system.explain(&queries[0]).unwrap(),
            "q2_synergy" => system.explain(&queries[1]).unwrap(),
            "limit50_synergy" => system.explain(&limit50_query()).unwrap(),
            "topk_baseline" => system.executor().explain_statement(&topk_query()).unwrap(),
            other => panic!("unknown golden {other}"),
        };
        assert_golden(&actual, expected, &format!("{name} at threads={threads}"));
    }
}

#[test]
fn golden_plans_serial() {
    check_at(
        1,
        &[
            ("q1_baseline", include_str!("golden/q1_baseline_t1.txt")),
            ("q2_baseline", include_str!("golden/q2_baseline_t1.txt")),
            ("q1_synergy", include_str!("golden/q1_synergy_t1.txt")),
            ("q2_synergy", include_str!("golden/q2_synergy_t1.txt")),
            ("limit50_synergy", include_str!("golden/limit50_synergy_t1.txt")),
            ("topk_baseline", include_str!("golden/topk_baseline_t1.txt")),
        ],
    );
}

#[test]
fn golden_plans_four_threads() {
    check_at(
        4,
        &[
            ("q1_baseline", include_str!("golden/q1_baseline_t4.txt")),
            ("q2_baseline", include_str!("golden/q2_baseline_t4.txt")),
            ("q1_synergy", include_str!("golden/q1_synergy_t4.txt")),
            ("q2_synergy", include_str!("golden/q2_synergy_t4.txt")),
            ("limit50_synergy", include_str!("golden/limit50_synergy_t4.txt")),
            ("topk_baseline", include_str!("golden/topk_baseline_t4.txt")),
        ],
    );
}

/// The view-maintenance delta plans, rendered through
/// `SynergySystem::explain_delta_plan` and pinned as golden text.  The
/// plan shape is thread-count independent (maintenance deltas apply on
/// the write path), so one deployment suffices.
#[test]
fn golden_delta_plans() {
    let bench = MicroBench::build_with_threads(20, 1).expect("micro benchmark builds");
    let system = bench.system();
    for (display, golden) in [
        ("Customer-Orders", include_str!("golden/delta_q1.txt")),
        ("Customer-Orders-Order_line", include_str!("golden/delta_q2.txt")),
    ] {
        let view = system
            .selection()
            .views
            .iter()
            .find(|v| v.display_name() == display)
            .expect("micro view selected");
        let actual = system.explain_delta_plan(view).unwrap();
        assert_golden(&actual, golden, &format!("delta plan of {display}"));
    }
}

/// The structural assertions the ISSUE calls out, independent of exact
/// golden text (so the intent survives a rendering change that regenerates
/// the goldens).
#[test]
fn partitioned_join_and_rewrite_appear_where_required() {
    let serial = MicroBench::build_with_threads(20, 1).unwrap();
    let parallel = MicroBench::build_with_threads(20, 4).unwrap();
    let q2 = &micro_queries()[1];

    // EXPLAIN for Q2 shows the Synergy rule substituting the view.
    let rewritten = serial.system().explain(q2).unwrap();
    assert!(rewritten.contains("Rewrite [synergy-view-rewrite]"));
    assert!(rewritten.contains("V_Customer__Orders__Order_line"));

    // threads=4 picks the partitioned join; threads=1 never mentions it.
    let base_serial = serial.system().executor().explain_statement(q2).unwrap();
    let base_parallel = parallel.system().executor().explain_statement(q2).unwrap();
    assert!(!base_serial.contains("partitioned"));
    assert!(base_parallel.contains("partitioned=x4"));

    // The bare-LIMIT shape stays serial at any width (early termination).
    let limited = parallel.system().explain(&limit50_query()).unwrap();
    assert!(limited.contains("store-pushdown"));
    assert!(!limited.contains("parallel"));
}
