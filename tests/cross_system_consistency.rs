//! Workspace-level integration tests: the five evaluated systems must agree
//! on query answers over the same TPC-W dataset, and remain consistent after
//! running the write workload.

use relational::Value;
use tpcw::queries::join_queries;
use tpcw::systems::{build_system, SystemKind};
use tpcw::writes::write_statements;
use tpcw::{TpcwDataset, TpcwScale};

fn dataset() -> (TpcwScale, TpcwDataset) {
    let scale = TpcwScale::new(30);
    (scale, TpcwDataset::generate(scale))
}

#[test]
fn synergy_and_baseline_agree_on_every_join_query() {
    let (scale, dataset) = dataset();
    let synergy = build_system(SystemKind::Synergy, &dataset);
    let baseline = build_system(SystemKind::Baseline, &dataset);
    for query in join_queries() {
        let statement = query.statement();
        for rep in 0..3 {
            let params = query.params(scale, rep);
            let synergy_rows = synergy.execute(&statement, &params).unwrap().rows;
            let baseline_rows = baseline.execute(&statement, &params).unwrap().rows;
            assert_eq!(
                synergy_rows, baseline_rows,
                "{} rep {rep}: Synergy answered {synergy_rows} rows but Baseline {baseline_rows}",
                query.id
            );
        }
    }
}

#[test]
fn mvcc_variants_agree_with_baseline_on_join_queries() {
    let (scale, dataset) = dataset();
    let baseline = build_system(SystemKind::Baseline, &dataset);
    let mvcc_a = build_system(SystemKind::MvccA, &dataset);
    let mvcc_ua = build_system(SystemKind::MvccUa, &dataset);
    for query in join_queries() {
        let statement = query.statement();
        let params = query.params(scale, 2);
        let expected = baseline.execute(&statement, &params).unwrap().rows;
        assert_eq!(mvcc_a.execute(&statement, &params).unwrap().rows, expected, "{}", query.id);
        assert_eq!(mvcc_ua.execute(&statement, &params).unwrap().rows, expected, "{}", query.id);
    }
}

#[test]
fn voltdb_agrees_on_the_queries_it_supports() {
    let (scale, dataset) = dataset();
    let baseline = build_system(SystemKind::Baseline, &dataset);
    let voltdb = build_system(SystemKind::VoltDb, &dataset);
    for query in join_queries().iter().filter(|q| q.supported_on_voltdb) {
        let statement = query.statement();
        let params = query.params(scale, 1);
        let expected = baseline.execute(&statement, &params).unwrap().rows;
        let actual = voltdb.execute(&statement, &params).unwrap().rows;
        assert_eq!(actual, expected, "{} row count", query.id);
    }
}

#[test]
fn writes_are_visible_to_subsequent_reads_on_every_system() {
    let (scale, dataset) = dataset();
    for kind in SystemKind::all() {
        let system = build_system(kind, &dataset);
        // W4 inserts a new customer; the insert must be visible afterwards.
        let w4 = write_statements().into_iter().find(|w| w.id == "W4").unwrap();
        let params = w4.params(scale, 9);
        system.execute(&w4.statement(), &params).unwrap();
        let uname = params[1].clone();
        let lookup = sql::parse_statement("SELECT * FROM Customer WHERE c_uname = ?").unwrap();
        let rows = system.execute(&lookup, &[uname]).unwrap().rows;
        assert_eq!(rows, 1, "{}: inserted customer must be readable", kind.name());

        // W13 updates an existing customer's balance; the new value must be
        // visible through a key lookup.
        let w13 = write_statements().into_iter().find(|w| w.id == "W13").unwrap();
        let params = w13.params(scale, 3);
        system.execute(&w13.statement(), &params).unwrap();
        let c_id = params[3].clone();
        let lookup = sql::parse_statement("SELECT * FROM Customer WHERE c_id = ?").unwrap();
        let rows = system.execute(&lookup, &[c_id]).unwrap().rows;
        assert_eq!(rows, 1, "{}: updated customer must be readable", kind.name());
    }
}

#[test]
fn view_maintenance_keeps_synergy_consistent_after_the_write_workload() {
    let (scale, dataset) = dataset();
    let synergy = build_system(SystemKind::Synergy, &dataset);
    let baseline = build_system(SystemKind::Baseline, &dataset);
    // Run the whole write workload on both systems.
    for write in write_statements() {
        let params = write.params(scale, 5);
        synergy.execute(&write.statement(), &params).unwrap();
        baseline.execute(&write.statement(), &params).unwrap();
    }
    // Afterwards, the view-backed answers must still match the base-table
    // answers for every join query.
    for query in join_queries() {
        let statement = query.statement();
        let params = query.params(scale, 4);
        assert_eq!(
            synergy.execute(&statement, &params).unwrap().rows,
            baseline.execute(&statement, &params).unwrap().rows,
            "{} after write workload",
            query.id
        );
    }
}

#[test]
fn deleted_rows_disappear_from_views() {
    let (scale, dataset) = dataset();
    let synergy = build_system(SystemKind::Synergy, &dataset);
    // Insert then delete a shopping-cart line, checking Q8 (cart contents)
    // before and after.
    let cart = Value::Int(1);
    let q8 = join_queries().into_iter().find(|q| q.id == "Q8").unwrap();
    let before = synergy.execute(&q8.statement(), std::slice::from_ref(&cart)).unwrap().rows;

    let insert = sql::parse_statement(
        "INSERT INTO Shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)",
    )
    .unwrap();
    let new_item = Value::Int(scale.items() as i64); // an item not already in cart 1
    synergy
        .execute(&insert, &[cart.clone(), new_item.clone(), Value::Int(2)])
        .unwrap();
    let after_insert = synergy.execute(&q8.statement(), std::slice::from_ref(&cart)).unwrap().rows;
    assert_eq!(after_insert, before + 1);

    let delete = sql::parse_statement(
        "DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?",
    )
    .unwrap();
    synergy.execute(&delete, &[cart.clone(), new_item]).unwrap();
    let after_delete = synergy.execute(&q8.statement(), &[cart]).unwrap().rows;
    assert_eq!(after_delete, before);
}
