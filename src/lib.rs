//! Umbrella crate for the Synergy reproduction (Tapdiya, Xue, Fabbri —
//! CLUSTER 2017).
//!
//! The real code lives in the workspace crates under `crates/`; this root
//! package exists to host the repo-level integration tests (`tests/`) and
//! runnable examples (`examples/`), and re-exports the member crates so those
//! targets can reach everything through one dependency graph.

// `::bench` disambiguates the workspace crate from the built-in `#[bench]`
// attribute macro, which otherwise wins name resolution here.
pub use ::bench;
pub use mvcc;
pub use newsql;
pub use nosql_store;
pub use query;
pub use relational;
pub use simclock;
pub use sql;
pub use synergy;
pub use tpcw;
