//! The partitioned in-memory engine.

use parking_lot::Mutex;
use relational::{encode_key, Row, Value};
use simclock::{CostModel, SimClock};
use sql::{
    AggregateFunction, ColumnRef, Comparison, Condition, Expr, SelectItem, SelectStatement,
    Statement,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// How a table is laid out across partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableDistribution {
    /// Rows are hashed on one column across the partitions.
    Partitioned {
        /// The partitioning column.
        column: String,
    },
    /// The full table is copied to every partition.
    Replicated,
}

/// A named partitioning scheme: table → distribution.  The paper evaluates
/// three different schemes because no single one supports every TPC-W join.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionScheme {
    /// Human-readable name of the scheme.
    pub name: String,
    /// Distribution per table.
    pub tables: BTreeMap<String, TableDistribution>,
}

impl PartitionScheme {
    /// Creates an empty scheme.
    pub fn new(name: impl Into<String>) -> Self {
        PartitionScheme {
            name: name.into(),
            tables: BTreeMap::new(),
        }
    }

    /// Declares a table partitioned on `column`.
    pub fn partitioned(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.tables.insert(
            table.into(),
            TableDistribution::Partitioned {
                column: column.into(),
            },
        );
        self
    }

    /// Declares a replicated table.
    pub fn replicated(mut self, table: impl Into<String>) -> Self {
        self.tables.insert(table.into(), TableDistribution::Replicated);
        self
    }
}

/// Errors returned by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum NewSqlError {
    /// The statement referenced an undeclared table.
    UnknownTable(String),
    /// The join is not expressible under the partitioning scheme
    /// (partitioned tables must join on their partitioning columns).
    UnsupportedJoin {
        /// Human-readable explanation naming the offending tables.
        reason: String,
    },
    /// A `?` parameter had no bound value.
    MissingParameter(usize),
    /// Write statements must identify rows by the table's key.
    IncompleteKey {
        /// The table being written.
        table: String,
    },
}

impl fmt::Display for NewSqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NewSqlError::UnknownTable(t) => write!(f, "unknown table {t}"),
            NewSqlError::UnsupportedJoin { reason } => write!(f, "unsupported join: {reason}"),
            NewSqlError::MissingParameter(i) => write!(f, "missing parameter {i}"),
            NewSqlError::IncompleteKey { table } => {
                write!(f, "write to {table} must specify the full key")
            }
        }
    }
}

impl std::error::Error for NewSqlError {}

#[derive(Debug, Clone)]
struct TableMeta {
    key: Vec<String>,
    distribution: TableDistribution,
}

#[derive(Default)]
struct Partition {
    /// table → key → row
    tables: BTreeMap<String, BTreeMap<String, Row>>,
}

/// The VoltDB-class engine.
#[derive(Clone)]
pub struct NewSqlEngine {
    clock: SimClock,
    model: CostModel,
    meta: Arc<Mutex<BTreeMap<String, TableMeta>>>,
    partitions: Arc<Vec<Mutex<Partition>>>,
    scheme_name: String,
}

impl NewSqlEngine {
    /// Creates an engine with `partitions` partitions (the paper uses a five
    /// node VoltDB cluster) charging costs into `clock`.
    pub fn new(partitions: usize, clock: SimClock, model: CostModel, scheme: &PartitionScheme) -> Self {
        NewSqlEngine {
            clock,
            model,
            meta: Arc::new(Mutex::new(BTreeMap::new())),
            partitions: Arc::new((0..partitions.max(1)).map(|_| Mutex::new(Partition::default())).collect()),
            scheme_name: scheme.name.clone(),
        }
    }

    /// The partitioning-scheme name this engine was built with.
    pub fn scheme_name(&self) -> &str {
        &self.scheme_name
    }

    /// Declares a table with its key and distribution.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        key: Vec<String>,
        distribution: TableDistribution,
    ) {
        self.meta.lock().insert(
            name.into(),
            TableMeta {
                key,
                distribution,
            },
        );
    }

    fn meta_for(&self, table: &str) -> Result<(String, TableMeta), NewSqlError> {
        let metas = self.meta.lock();
        metas
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(table))
            .map(|(name, meta)| (name.clone(), meta.clone()))
            .ok_or_else(|| NewSqlError::UnknownTable(table.to_string()))
    }

    fn partition_for(&self, value: &Value) -> usize {
        let mut hasher = DefaultHasher::new();
        value.hash(&mut hasher);
        (hasher.finish() as usize) % self.partitions.len()
    }

    fn row_key(meta: &TableMeta, row: &Row) -> String {
        let values: Vec<Value> = meta
            .key
            .iter()
            .map(|k| row.get(k).cloned().unwrap_or(Value::Null))
            .collect();
        encode_key(values.iter())
    }

    /// Loads a row directly (offline population — charges no simulated time).
    pub fn load_row(&self, table: &str, row: &Row) -> Result<(), NewSqlError> {
        let (name, meta) = self.meta_for(table)?;
        let key = Self::row_key(&meta, row);
        match &meta.distribution {
            TableDistribution::Replicated => {
                for partition in self.partitions.iter() {
                    partition
                        .lock()
                        .tables
                        .entry(name.clone())
                        .or_default()
                        .insert(key.clone(), row.clone());
                }
            }
            TableDistribution::Partitioned { column } => {
                let value = row.get(column).cloned().unwrap_or(Value::Null);
                let idx = self.partition_for(&value);
                self.partitions[idx]
                    .lock()
                    .tables
                    .entry(name)
                    .or_default()
                    .insert(key, row.clone());
            }
        }
        Ok(())
    }

    /// Bulk-loads rows.
    pub fn load_rows<'a>(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Result<usize, NewSqlError> {
        let mut n = 0;
        for row in rows {
            self.load_row(table, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Number of (logical) rows stored in a table.
    pub fn row_count(&self, table: &str) -> Result<usize, NewSqlError> {
        let (name, meta) = self.meta_for(table)?;
        let count: usize = match meta.distribution {
            TableDistribution::Replicated => self.partitions[0]
                .lock()
                .tables
                .get(&name)
                .map(|t| t.len())
                .unwrap_or(0),
            TableDistribution::Partitioned { .. } => self
                .partitions
                .iter()
                .map(|p| p.lock().tables.get(&name).map(|t| t.len()).unwrap_or(0))
                .sum(),
        };
        Ok(count)
    }

    /// Approximate stored bytes across all partitions, counting replicated
    /// tables once (VoltDB's logical database size in the paper's Table III).
    pub fn database_size_bytes(&self) -> u64 {
        let metas = self.meta.lock();
        let mut total = 0u64;
        for (name, meta) in metas.iter() {
            let logical_rows: u64 = match meta.distribution {
                TableDistribution::Replicated => self.partitions[0]
                    .lock()
                    .tables
                    .get(name)
                    .map(|t| t.values().map(|r| r.byte_size() as u64).sum())
                    .unwrap_or(0),
                TableDistribution::Partitioned { .. } => self
                    .partitions
                    .iter()
                    .map(|p| {
                        p.lock()
                            .tables
                            .get(name)
                            .map(|t| t.values().map(|r| r.byte_size() as u64).sum())
                            .unwrap_or(0)
                    })
                    .sum(),
            };
            total += logical_rows;
        }
        total
    }

    fn all_rows(&self, table: &str) -> Result<Vec<Row>, NewSqlError> {
        let (name, meta) = self.meta_for(table)?;
        Ok(match meta.distribution {
            TableDistribution::Replicated => self.partitions[0]
                .lock()
                .tables
                .get(&name)
                .map(|t| t.values().cloned().collect())
                .unwrap_or_default(),
            TableDistribution::Partitioned { .. } => self
                .partitions
                .iter()
                .flat_map(|p| {
                    p.lock()
                        .tables
                        .get(&name)
                        .map(|t| t.values().cloned().collect::<Vec<_>>())
                        .unwrap_or_default()
                })
                .collect(),
        })
    }

    /// Validates a join query against the partitioning scheme: every pair of
    /// *partitioned* tables must be connected by an equi-join on both tables'
    /// partitioning columns (possibly transitively through other partitioned
    /// tables); replicated tables may join freely.  A table may not appear
    /// twice unless it is replicated.
    pub fn check_join_supported(&self, select: &SelectStatement) -> Result<(), NewSqlError> {
        let metas = self.meta.lock();
        let mut partitioned_aliases: Vec<(String, String, String)> = Vec::new(); // (alias, table, part col)
        for table_ref in &select.from {
            let Some((name, meta)) = metas
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(&table_ref.table))
            else {
                return Err(NewSqlError::UnknownTable(table_ref.table.clone()));
            };
            if let TableDistribution::Partitioned { column } = &meta.distribution {
                // A partitioned table may appear more than once (self-join)
                // only when every occurrence joins on the partitioning
                // column, which the union-find below enforces.
                partitioned_aliases.push((table_ref.alias.clone(), name.clone(), column.clone()));
            }
        }
        if partitioned_aliases.len() <= 1 {
            return Ok(());
        }
        // Union-find over the partitioned aliases: an equi-join on both
        // sides' partitioning columns merges their groups.
        let mut parent: Vec<usize> = (0..partitioned_aliases.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        for condition in select.join_conditions() {
            let Expr::Column(right) = &condition.right else {
                continue;
            };
            let left = &condition.left;
            let find_alias = |col: &ColumnRef| {
                partitioned_aliases.iter().position(|(alias, _, part_col)| {
                    col.qualifier.as_deref() == Some(alias.as_str())
                        && col.column.eq_ignore_ascii_case(part_col)
                })
            };
            if let (Some(a), Some(b)) = (find_alias(left), find_alias(right)) {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
        }
        let root0 = find(&mut parent, 0);
        for i in 1..partitioned_aliases.len() {
            if find(&mut parent, i) != root0 {
                return Err(NewSqlError::UnsupportedJoin {
                    reason: format!(
                        "partitioned tables {} and {} are not joined on their partitioning columns",
                        partitioned_aliases[0].1, partitioned_aliases[i].1
                    ),
                });
            }
        }
        Ok(())
    }

    /// Executes a statement with positional parameters.
    pub fn execute(&self, statement: &Statement, params: &[Value]) -> Result<Vec<Row>, NewSqlError> {
        match statement {
            Statement::Select(select) => self.execute_select(select, params),
            Statement::Insert(insert) => {
                let mut row = Row::new();
                for (column, expr) in insert.columns.iter().zip(&insert.values) {
                    row.set(column.clone(), bind(expr, params)?);
                }
                let (name, meta) = self.meta_for(&insert.table)?;
                self.charge_write(&meta, 1);
                self.store_row(&name, &meta, row)?;
                Ok(Vec::new())
            }
            Statement::Update(update) => {
                let (name, meta) = self.meta_for(&update.table)?;
                let key = self.key_from_conditions(&meta, &update.conditions, params)?;
                self.charge_write(&meta, 1);
                self.mutate_row(&name, &meta, &key, |row| {
                    for (column, expr) in &update.assignments {
                        if let Ok(v) = bind(expr, params) {
                            row.set(column.clone(), v);
                        }
                    }
                })?;
                Ok(Vec::new())
            }
            Statement::Delete(delete) => {
                let (name, meta) = self.meta_for(&delete.table)?;
                let key = self.key_from_conditions(&meta, &delete.conditions, params)?;
                self.charge_write(&meta, 1);
                self.remove_row(&name, &meta, &key)?;
                Ok(Vec::new())
            }
        }
    }

    fn charge_write(&self, meta: &TableMeta, rows: u64) {
        let replicated = matches!(meta.distribution, TableDistribution::Replicated);
        self.clock
            .charge(self.model.newsql_write_cost(rows, replicated));
    }

    fn store_row(&self, name: &str, meta: &TableMeta, row: Row) -> Result<(), NewSqlError> {
        let key = Self::row_key(meta, &row);
        if key.is_empty() {
            return Err(NewSqlError::IncompleteKey {
                table: name.to_string(),
            });
        }
        match &meta.distribution {
            TableDistribution::Replicated => {
                for partition in self.partitions.iter() {
                    partition
                        .lock()
                        .tables
                        .entry(name.to_string())
                        .or_default()
                        .insert(key.clone(), row.clone());
                }
            }
            TableDistribution::Partitioned { column } => {
                let value = row.get(column).cloned().unwrap_or(Value::Null);
                let idx = self.partition_for(&value);
                self.partitions[idx]
                    .lock()
                    .tables
                    .entry(name.to_string())
                    .or_default()
                    .insert(key, row);
            }
        }
        Ok(())
    }

    fn mutate_row(
        &self,
        name: &str,
        meta: &TableMeta,
        key: &str,
        mutate: impl Fn(&mut Row),
    ) -> Result<bool, NewSqlError> {
        let mut any = false;
        for partition in self.partitions.iter() {
            let mut p = partition.lock();
            if let Some(table) = p.tables.get_mut(name) {
                if let Some(row) = table.get_mut(key) {
                    mutate(row);
                    any = true;
                    if matches!(meta.distribution, TableDistribution::Partitioned { .. }) {
                        break;
                    }
                }
            }
        }
        Ok(any)
    }

    fn remove_row(&self, name: &str, meta: &TableMeta, key: &str) -> Result<bool, NewSqlError> {
        let mut any = false;
        for partition in self.partitions.iter() {
            let mut p = partition.lock();
            if let Some(table) = p.tables.get_mut(name) {
                if table.remove(key).is_some() {
                    any = true;
                    if matches!(meta.distribution, TableDistribution::Partitioned { .. }) {
                        break;
                    }
                }
            }
        }
        Ok(any)
    }

    fn key_from_conditions(
        &self,
        meta: &TableMeta,
        conditions: &[Condition],
        params: &[Value],
    ) -> Result<String, NewSqlError> {
        let mut key_row = Row::new();
        for attribute in &meta.key {
            let value = conditions
                .iter()
                .find(|c| c.op == Comparison::Eq && c.is_filter() && &c.left.column == attribute)
                .map(|c| bind(&c.right, params))
                .transpose()?;
            match value {
                Some(v) => {
                    key_row.set(attribute.clone(), v);
                }
                None => {
                    return Err(NewSqlError::IncompleteKey {
                        table: "write".to_string(),
                    })
                }
            }
        }
        Ok(Self::row_key(meta, &key_row))
    }

    // ------------------------------------------------------------------
    // SELECT evaluation (in-memory)
    // ------------------------------------------------------------------

    fn execute_select(
        &self,
        select: &SelectStatement,
        params: &[Value],
    ) -> Result<Vec<Row>, NewSqlError> {
        self.check_join_supported(select)?;

        // Fetch and qualify rows per alias, applying single-alias filters.
        let mut per_alias: Vec<(String, Vec<Row>)> = Vec::new();
        let mut total_rows = 0u64;
        for table_ref in &select.from {
            let rows = self.all_rows(&table_ref.table)?;
            let single = select.from.len() == 1;
            let mut qualified = Vec::with_capacity(rows.len());
            for row in rows {
                let mut out = Row::new();
                for (k, v) in row.iter() {
                    out.set(format!("{}.{k}", table_ref.alias), v.clone());
                    if single {
                        out.set(k, v.clone());
                    }
                }
                qualified.push(out);
            }
            // Single-alias filters.
            let filtered: Vec<Row> = qualified
                .into_iter()
                .filter(|row| {
                    select.conditions.iter().all(|c| {
                        if !c.is_filter() {
                            return true;
                        }
                        let belongs = c.left.qualifier.as_deref() == Some(table_ref.alias.as_str())
                            || (c.left.qualifier.is_none() && single);
                        if !belongs {
                            return true;
                        }
                        let Ok(v) = bind(&c.right, params) else {
                            return false;
                        };
                        row.get(&c.left.column)
                            .map(|l| c.op.evaluate(l, &v))
                            .unwrap_or(false)
                    })
                })
                .collect();
            total_rows += filtered.len() as u64;
            per_alias.push((table_ref.alias.clone(), filtered));
        }
        self.clock
            .charge(self.model.newsql_statement_cost(total_rows, false));

        // Fold hash joins left to right.
        let mut iter = per_alias.into_iter();
        let (_, mut joined) = iter.next().unwrap_or_default();
        let mut joined_aliases = vec![select.from[0].alias.clone()];
        for (alias, rows) in iter {
            let join_conds: Vec<&Condition> = select
                .conditions
                .iter()
                .filter(|c| {
                    c.is_equi_join()
                        && match (&c.left.qualifier, &c.right) {
                            (Some(lq), Expr::Column(r)) => {
                                let rq = r.qualifier.as_deref().unwrap_or("");
                                (lq == &alias && joined_aliases.iter().any(|j| j == rq))
                                    || (rq == alias && joined_aliases.iter().any(|j| j == lq))
                            }
                            _ => false,
                        }
                })
                .collect();
            let mut build: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for row in &rows {
                let key: Option<Vec<Value>> = join_conds
                    .iter()
                    .map(|c| {
                        let col = side_for(c, &alias);
                        row.get(&format!("{alias}.{}", col.column)).cloned()
                    })
                    .collect();
                if let Some(key) = key {
                    build.entry(key).or_default().push(row);
                }
            }
            let mut next = Vec::new();
            for row in &joined {
                let key: Option<Vec<Value>> = join_conds
                    .iter()
                    .map(|c| {
                        let col = other_side_for(c, &alias);
                        row.get(&col.qualified_name()).or_else(|| row.get(&col.column)).cloned()
                    })
                    .collect();
                let Some(key) = key else { continue };
                if join_conds.is_empty() {
                    for r in &rows {
                        let mut merged = row.clone();
                        for (k, v) in r.iter() {
                            merged.set(k, v.clone());
                        }
                        next.push(merged);
                    }
                } else if let Some(matches) = build.get(&key) {
                    for r in matches {
                        let mut merged = row.clone();
                        for (k, v) in r.iter() {
                            merged.set(k, v.clone());
                        }
                        next.push(merged);
                    }
                }
            }
            joined = next;
            joined_aliases.push(alias);
        }

        // Residual conditions (cross-alias non-equi etc.).
        let mut rows: Vec<Row> = joined
            .into_iter()
            .filter(|row| {
                select.conditions.iter().all(|c| {
                    let left = row
                        .get(&c.left.qualified_name())
                        .or_else(|| row.get(&c.left.column));
                    let Some(left) = left else { return true };
                    match &c.right {
                        Expr::Column(rc) => row
                            .get(&rc.qualified_name())
                            .or_else(|| row.get(&rc.column))
                            .map(|r| c.op.evaluate(left, r))
                            .unwrap_or(true),
                        other => bind(other, params)
                            .map(|v| c.op.evaluate(left, &v))
                            .unwrap_or(false),
                    }
                })
            })
            .collect();

        // GROUP BY + aggregates.
        if select.has_aggregates() || !select.group_by.is_empty() {
            let mut groups: BTreeMap<Vec<Value>, Vec<Row>> = BTreeMap::new();
            for row in rows {
                let key: Vec<Value> = select
                    .group_by
                    .iter()
                    .map(|c| {
                        row.get(&c.qualified_name())
                            .or_else(|| row.get(&c.column))
                            .cloned()
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                groups.entry(key).or_default().push(row);
            }
            if groups.is_empty() && select.group_by.is_empty() {
                groups.insert(Vec::new(), Vec::new());
            }
            rows = groups
                .into_iter()
                .map(|(key, members)| {
                    let mut row = Row::new();
                    for (i, col) in select.group_by.iter().enumerate() {
                        row.set(col.column.clone(), key[i].clone());
                    }
                    for item in &select.items {
                        match item {
                            SelectItem::Aggregate {
                                function,
                                argument,
                                alias,
                            } => {
                                let value = aggregate(*function, argument.as_ref(), &members);
                                let name = alias.clone().unwrap_or_else(|| format!("{function}"));
                                row.set(name, value);
                            }
                            SelectItem::Column { column, alias } => {
                                let value = members
                                    .first()
                                    .and_then(|m| {
                                        m.get(&column.qualified_name()).or_else(|| m.get(&column.column))
                                    })
                                    .cloned()
                                    .unwrap_or(Value::Null);
                                row.set(
                                    alias.clone().unwrap_or_else(|| column.column.clone()),
                                    value,
                                );
                            }
                            SelectItem::Wildcard => {
                                if let Some(first) = members.first() {
                                    for (k, v) in first.iter() {
                                        row.set(k, v.clone());
                                    }
                                }
                            }
                        }
                    }
                    row
                })
                .collect();
        }

        // ORDER BY + LIMIT.
        if !select.order_by.is_empty() {
            rows.sort_by(|a, b| {
                for key in &select.order_by {
                    let av = a
                        .get(&key.column.qualified_name())
                        .or_else(|| a.get(&key.column.column))
                        .cloned()
                        .unwrap_or(Value::Null);
                    let bv = b
                        .get(&key.column.qualified_name())
                        .or_else(|| b.get(&key.column.column))
                        .cloned()
                        .unwrap_or(Value::Null);
                    let ord = av.cmp(&bv);
                    let ord = if key.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(limit) = select.limit {
            rows.truncate(limit);
        }
        Ok(rows)
    }
}

fn side_for<'a>(c: &'a Condition, alias: &str) -> &'a ColumnRef {
    if let Expr::Column(right) = &c.right {
        if right.qualifier.as_deref() == Some(alias) {
            return right;
        }
    }
    &c.left
}

fn other_side_for<'a>(c: &'a Condition, alias: &str) -> &'a ColumnRef {
    if let Expr::Column(right) = &c.right {
        if right.qualifier.as_deref() == Some(alias) {
            return &c.left;
        }
        return right;
    }
    &c.left
}

fn bind(expr: &Expr, params: &[Value]) -> Result<Value, NewSqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Parameter(i) => params
            .get(*i)
            .cloned()
            .ok_or(NewSqlError::MissingParameter(*i)),
        Expr::Column(_) => Ok(Value::Null),
    }
}

fn aggregate(function: AggregateFunction, argument: Option<&ColumnRef>, members: &[Row]) -> Value {
    let values: Vec<Value> = match argument {
        None => return Value::Int(members.len() as i64),
        Some(col) => members
            .iter()
            .filter_map(|m| m.get(&col.qualified_name()).or_else(|| m.get(&col.column)).cloned())
            .filter(|v| !v.is_null())
            .collect(),
    };
    match function {
        AggregateFunction::Count => Value::Int(values.len() as i64),
        AggregateFunction::Sum => {
            let sum: f64 = values.iter().filter_map(Value::as_float).sum();
            if values.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(sum as i64)
            } else {
                Value::Float(sum)
            }
        }
        AggregateFunction::Avg => {
            if values.is_empty() {
                Value::Null
            } else {
                Value::Float(values.iter().filter_map(Value::as_float).sum::<f64>() / values.len() as f64)
            }
        }
        AggregateFunction::Min => values.iter().min().cloned().unwrap_or(Value::Null),
        AggregateFunction::Max => values.iter().max().cloned().unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql::parse_statement;

    fn engine() -> NewSqlEngine {
        let scheme = PartitionScheme::new("by-customer")
            .partitioned("Customer", "c_id")
            .partitioned("Orders", "o_c_id")
            .replicated("Country");
        let engine = NewSqlEngine::new(4, SimClock::new(), CostModel::default(), &scheme);
        engine.create_table(
            "Customer",
            vec!["c_id".into()],
            TableDistribution::Partitioned { column: "c_id".into() },
        );
        engine.create_table(
            "Orders",
            vec!["o_id".into()],
            TableDistribution::Partitioned { column: "o_c_id".into() },
        );
        engine.create_table("Country", vec!["co_id".into()], TableDistribution::Replicated);
        for c in 1..=10i64 {
            engine
                .load_row(
                    "Customer",
                    &Row::new().with("c_id", c).with("c_uname", format!("user{c}")).with("c_co_id", 1),
                )
                .unwrap();
            for o in 0..3i64 {
                engine
                    .load_row(
                        "Orders",
                        &Row::new()
                            .with("o_id", c * 100 + o)
                            .with("o_c_id", c)
                            .with("o_total", (c * 10 + o) as f64),
                    )
                    .unwrap();
            }
        }
        engine
            .load_row("Country", &Row::new().with("co_id", 1).with("co_name", "USA"))
            .unwrap();
        engine
    }

    #[test]
    fn rows_are_distributed_and_counted() {
        let e = engine();
        assert_eq!(e.row_count("Customer").unwrap(), 10);
        assert_eq!(e.row_count("Orders").unwrap(), 30);
        assert_eq!(e.row_count("Country").unwrap(), 1);
        assert!(e.database_size_bytes() > 0);
    }

    #[test]
    fn single_table_select_with_filter() {
        let e = engine();
        let stmt = parse_statement("SELECT * FROM Customer WHERE c_id = ?").unwrap();
        let rows = e.execute(&stmt, &[Value::Int(3)]).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("c_uname").unwrap(), &Value::str("user3"));
    }

    #[test]
    fn partition_aligned_join_is_supported() {
        let e = engine();
        let stmt = parse_statement(
            "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_c_id AND c.c_id = ?",
        )
        .unwrap();
        let rows = e.execute(&stmt, &[Value::Int(2)]).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn replicated_tables_join_freely() {
        let e = engine();
        let stmt = parse_statement(
            "SELECT * FROM Customer as c, Country as co WHERE c.c_co_id = co.co_id",
        )
        .unwrap();
        let rows = e.execute(&stmt, &[]).unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn non_partition_key_join_is_rejected() {
        let e = engine();
        // Joining Orders to Customer on a non-partitioning column (o_id) is
        // not expressible in VoltDB.
        let stmt = parse_statement(
            "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_id",
        )
        .unwrap();
        let err = e.execute(&stmt, &[]).unwrap_err();
        assert!(matches!(err, NewSqlError::UnsupportedJoin { .. }));
    }

    #[test]
    fn self_join_support_depends_on_partitioning_column() {
        let e = engine();
        // Both sides join on the partitioning column (o_c_id): expressible as
        // a single-partition statement, so it is supported.
        let aligned = parse_statement(
            "SELECT * FROM Orders as a, Orders as b WHERE a.o_c_id = b.o_c_id",
        )
        .unwrap();
        assert!(e.execute(&aligned, &[]).is_ok());
        // Joining on a non-partitioning column is not expressible.
        let misaligned = parse_statement(
            "SELECT * FROM Orders as a, Orders as b WHERE a.o_id = b.o_c_id",
        )
        .unwrap();
        assert!(matches!(
            e.execute(&misaligned, &[]),
            Err(NewSqlError::UnsupportedJoin { .. })
        ));
    }

    #[test]
    fn writes_and_aggregates_work() {
        let e = engine();
        e.execute(
            &parse_statement("INSERT INTO Customer (c_id, c_uname, c_co_id) VALUES (?, ?, ?)").unwrap(),
            &[Value::Int(11), Value::str("user11"), Value::Int(1)],
        )
        .unwrap();
        assert_eq!(e.row_count("Customer").unwrap(), 11);
        e.execute(
            &parse_statement("UPDATE Customer SET c_uname = ? WHERE c_id = ?").unwrap(),
            &[Value::str("renamed"), Value::Int(11)],
        )
        .unwrap();
        let rows = e
            .execute(&parse_statement("SELECT * FROM Customer WHERE c_id = 11").unwrap(), &[])
            .unwrap();
        assert_eq!(rows[0].get("c_uname").unwrap(), &Value::str("renamed"));
        e.execute(
            &parse_statement("DELETE FROM Customer WHERE c_id = ?").unwrap(),
            &[Value::Int(11)],
        )
        .unwrap();
        assert_eq!(e.row_count("Customer").unwrap(), 10);

        let agg = e
            .execute(
                &parse_statement(
                    "SELECT o.o_c_id, COUNT(*) AS n, SUM(o.o_total) AS t FROM Orders o \
                     GROUP BY o.o_c_id ORDER BY t DESC LIMIT 2",
                )
                .unwrap(),
                &[],
            )
            .unwrap();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].get("n").unwrap(), &Value::Int(3));
    }

    #[test]
    fn newsql_statements_are_cheap_on_the_simulated_clock() {
        let e = engine();
        let clock_before = {
            let stmt = parse_statement("SELECT * FROM Customer WHERE c_id = 1").unwrap();
            let start = e.clock.now();
            e.execute(&stmt, &[]).unwrap();
            e.clock.now() - start
        };
        // Well under a single HBase RPC round trip.
        assert!(clock_before < CostModel::default().get_cost());
    }

    #[test]
    fn incomplete_write_keys_are_rejected() {
        let e = engine();
        let stmt = parse_statement("UPDATE Customer SET c_uname = ? WHERE c_uname = ?").unwrap();
        assert!(matches!(
            e.execute(&stmt, &[Value::str("a"), Value::str("b")]),
            Err(NewSqlError::IncompleteKey { .. })
        ));
    }
}
