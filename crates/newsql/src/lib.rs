//! A VoltDB-class NewSQL engine: partitioned, in-memory, single-threaded per
//! partition, with joins restricted to the partitioning columns.
//!
//! The paper compares Synergy against VoltDB (§IX-D2): a NewSQL database
//! that scales out linearly and executes partition-local work entirely in
//! memory without per-operation RPCs — making it the fastest system in
//! Fig. 12/14 — but whose tables can only be joined on equality of their
//! partitioning columns, so fewer than half of the TPC-W join queries are
//! supported under any single partitioning scheme (Q3, Q7, Q9 and Q10 are
//! unsupported in the paper's evaluation).
//!
//! This crate reproduces both properties:
//!
//! * [`NewSqlEngine`] stores each table either *partitioned* on one column
//!   (rows live on `hash(partition key) % partitions`) or *replicated* on
//!   every partition;
//! * statements touching a single partition charge only the in-memory
//!   dispatch/row costs of the cost model; writes to replicated tables pay a
//!   broadcast;
//! * join queries are validated against the partitioning scheme first: every
//!   pair of partitioned tables must be joined on their partitioning
//!   columns, otherwise [`NewSqlError::UnsupportedJoin`] is returned.

mod engine;

pub use engine::{NewSqlEngine, NewSqlError, PartitionScheme, TableDistribution};
