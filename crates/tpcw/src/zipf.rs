//! A seeded, deterministic zipfian rank generator.
//!
//! The partial-materialization evaluation (`fig_partial`) drives reads with
//! zipfian key skew: rank 1 is the hottest key and P(rank = k) ∝ 1/k^s.
//! Sampling inverts the precomputed CDF with a binary search, so a draw is
//! O(log n) and the whole stream is a pure function of `(n, s, seed)` —
//! the same splitmix-seeded [`StdRng`] discipline as
//! [`nosql_store::FaultPlan`], so figures are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A zipfian distribution over ranks `1..=n` with skew `s`, sampled from a
/// seeded deterministic generator.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Normalized CDF: `cdf[k-1]` = P(rank ≤ k).
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    /// A zipfian generator over `1..=n` with exponent `s` (`s = 0` is
    /// uniform; larger `s` concentrates mass on low ranks) and the given
    /// seed.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: u64, s: f64, seed: u64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty rank universe");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The size of the rank universe.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws the next rank in `1..=n` (1 = hottest).
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frequency of one rank over `draws` samples.
    fn frequency_of(zipf: &mut Zipf, rank: u64, draws: usize) -> f64 {
        let mut hits = 0usize;
        for _ in 0..draws {
            if zipf.sample() == rank {
                hits += 1;
            }
        }
        hits as f64 / draws as f64
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Zipf::new(1000, 1.1, 42);
        let mut b = Zipf::new(1000, 1.1, 42);
        let stream_a: Vec<u64> = (0..64).map(|_| a.sample()).collect();
        let stream_b: Vec<u64> = (0..64).map(|_| b.sample()).collect();
        assert_eq!(stream_a, stream_b);
        let mut c = Zipf::new(1000, 1.1, 43);
        let stream_c: Vec<u64> = (0..64).map(|_| c.sample()).collect();
        assert_ne!(stream_a, stream_c, "different seed, different stream");
    }

    #[test]
    fn moments_match_the_distribution() {
        // Pin the distribution's first moment and head mass against the
        // analytic values for n = 1000, s = 1.1:
        //   H = Σ 1/k^1.1 ≈ 7.050, so P(rank = 1) = 1/H ≈ 0.1418 and
        //   E[rank] = Σ k·(1/k^1.1)/H = Σ k^-0.1 / H ≈ 501.3/7.050 ≈ 71.1.
        let n = 1000u64;
        let s = 1.1f64;
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let expected_top = 1.0 / h;
        let expected_mean = (1..=n).map(|k| (k as f64).powf(1.0 - s)).sum::<f64>() / h;

        let draws = 200_000;
        let mut zipf = Zipf::new(n, s, 7);
        let top = frequency_of(&mut zipf.clone(), 1, draws);
        assert!(
            (top - expected_top).abs() < 0.01,
            "P(rank=1) = {top:.4}, expected ≈ {expected_top:.4}"
        );
        let mean = (0..draws).map(|_| zipf.sample() as f64).sum::<f64>() / draws as f64;
        assert!(
            (mean - expected_mean).abs() / expected_mean < 0.05,
            "E[rank] = {mean:.1}, expected ≈ {expected_mean:.1}"
        );
    }

    #[test]
    fn skew_concentrates_mass() {
        let draws = 50_000;
        let flat = frequency_of(&mut Zipf::new(100, 0.0, 9), 1, draws);
        let mild = frequency_of(&mut Zipf::new(100, 0.8, 9), 1, draws);
        let hot = frequency_of(&mut Zipf::new(100, 1.4, 9), 1, draws);
        assert!((flat - 0.01).abs() < 0.005, "s=0 is uniform, got {flat}");
        assert!(mild > 3.0 * flat, "s=0.8 concentrates: {mild} vs {flat}");
        assert!(hot > 2.0 * mild, "s=1.4 concentrates more: {hot} vs {mild}");
    }
}
