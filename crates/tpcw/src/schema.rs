//! The TPC-W relational schema (the subset of attributes the workload
//! touches), its base-table indexes and column-type hints.

use query::ColumnType;
use relational::{Index, Relation, Schema};

/// Builds the TPC-W schema used throughout the evaluation.
pub fn tpcw_schema() -> Schema {
    let country = Relation::new("Country")
        .attributes(["co_id", "co_name", "co_currency", "co_exchange"])
        .primary_key(["co_id"])
        .build();

    let address = Relation::new("Address")
        .attributes([
            "addr_id",
            "addr_street1",
            "addr_city",
            "addr_state",
            "addr_zip",
            "addr_co_id",
        ])
        .primary_key(["addr_id"])
        .foreign_key("addr_co_id", "Country", "co_id")
        .build();

    let customer = Relation::new("Customer")
        .attributes([
            "c_id",
            "c_uname",
            "c_fname",
            "c_lname",
            "c_addr_id",
            "c_phone",
            "c_email",
            "c_since",
            "c_last_login",
            "c_discount",
            "c_balance",
            "c_ytd_pmt",
            "c_data",
        ])
        .primary_key(["c_id"])
        .foreign_key("c_addr_id", "Address", "addr_id")
        .build();

    let author = Relation::new("Author")
        .attributes(["a_id", "a_fname", "a_lname", "a_dob", "a_bio"])
        .primary_key(["a_id"])
        .build();

    let item = Relation::new("Item")
        .attributes([
            "i_id",
            "i_title",
            "i_a_id",
            "i_pub_date",
            "i_publisher",
            "i_subject",
            "i_desc",
            "i_related1",
            "i_srp",
            "i_cost",
            "i_avail",
            "i_stock",
            "i_isbn",
        ])
        .primary_key(["i_id"])
        .foreign_key("i_a_id", "Author", "a_id")
        .build();

    let orders = Relation::new("Orders")
        .attributes([
            "o_id",
            "o_c_id",
            "o_date",
            "o_sub_total",
            "o_tax",
            "o_total",
            "o_ship_type",
            "o_ship_date",
            "o_bill_addr_id",
            "o_ship_addr_id",
            "o_status",
        ])
        .primary_key(["o_id"])
        .foreign_key("o_c_id", "Customer", "c_id")
        .foreign_key("o_bill_addr_id", "Address", "addr_id")
        .foreign_key("o_ship_addr_id", "Address", "addr_id")
        .build();

    let order_line = Relation::new("Order_line")
        .attributes([
            "ol_o_id",
            "ol_id",
            "ol_i_id",
            "ol_qty",
            "ol_discount",
            "ol_comments",
        ])
        .primary_key(["ol_o_id", "ol_id"])
        .foreign_key("ol_o_id", "Orders", "o_id")
        .foreign_key("ol_i_id", "Item", "i_id")
        .build();

    let cc_xacts = Relation::new("CC_Xacts")
        .attributes([
            "cx_o_id",
            "cx_type",
            "cx_num",
            "cx_name",
            "cx_expire",
            "cx_xact_amt",
            "cx_xact_date",
            "cx_co_id",
        ])
        .primary_key(["cx_o_id"])
        .foreign_key("cx_o_id", "Orders", "o_id")
        .foreign_key("cx_co_id", "Country", "co_id")
        .build();

    let shopping_cart = Relation::new("Shopping_cart")
        .attributes(["sc_id", "sc_time"])
        .primary_key(["sc_id"])
        .build();

    let shopping_cart_line = Relation::new("Shopping_cart_line")
        .attributes(["scl_sc_id", "scl_i_id", "scl_qty"])
        .primary_key(["scl_sc_id", "scl_i_id"])
        .foreign_key("scl_sc_id", "Shopping_cart", "sc_id")
        .foreign_key("scl_i_id", "Item", "i_id")
        .build();

    Schema::new()
        .with_relation(country)
        .with_relation(address)
        .with_relation(customer)
        .with_relation(author)
        .with_relation(item)
        .with_relation(orders)
        .with_relation(order_line)
        .with_relation(cc_xacts)
        .with_relation(shopping_cart)
        .with_relation(shopping_cart_line)
        // Base-table indexes the workload relies on (the paper assumes the
        // input schema carries the necessary base indexes, §VI-C).
        .with_index(Index::new(
            "customer_by_uname",
            "Customer",
            ["c_uname"],
            ["c_uname", "c_id"],
        ))
        .with_index(Index::new(
            "orders_by_customer",
            "Orders",
            ["o_c_id"],
            ["o_c_id", "o_id", "o_date", "o_total"],
        ))
        .with_index(Index::new(
            "item_by_subject",
            "Item",
            ["i_subject"],
            ["i_subject", "i_id", "i_title", "i_pub_date"],
        ))
        .with_index(Index::new(
            "item_by_author",
            "Item",
            ["i_a_id"],
            ["i_a_id", "i_id", "i_title"],
        ))
        .with_index(Index::new(
            "order_line_by_item",
            "Order_line",
            ["ol_i_id"],
            ["ol_i_id", "ol_o_id", "ol_id", "ol_qty"],
        ))
        .with_index(Index::new(
            "scl_by_cart",
            "Shopping_cart_line",
            ["scl_sc_id"],
            ["scl_sc_id", "scl_i_id", "scl_qty"],
        ))
}

/// The roots set the paper uses for TPC-W:
/// `Q_TPC-W = {Author, Customer, Country}` (§IX-D2).
pub fn tpcw_roots() -> Vec<String> {
    vec![
        "Author".to_string(),
        "Customer".to_string(),
        "Country".to_string(),
    ]
}

/// Column-type hints for the baseline transformation: numeric identifiers,
/// quantities and monetary amounts; everything else is a string.
pub fn tpcw_types(_relation: &str, column: &str) -> Option<ColumnType> {
    match column {
        "co_id" | "addr_id" | "addr_co_id" | "c_id" | "c_addr_id" | "a_id" | "i_id" | "i_a_id"
        | "i_related1" | "i_avail" | "i_stock" | "o_id" | "o_c_id" | "o_bill_addr_id"
        | "o_ship_addr_id" | "ol_o_id" | "ol_id" | "ol_i_id" | "ol_qty" | "cx_o_id"
        | "cx_co_id" | "sc_id" | "scl_sc_id" | "scl_i_id" | "scl_qty" | "c_since"
        | "c_last_login" | "sc_time" => Some(ColumnType::Int),
        "c_discount" | "c_balance" | "c_ytd_pmt" | "i_srp" | "i_cost" | "o_sub_total" | "o_tax"
        | "o_total" | "ol_discount" | "cx_xact_amt" | "co_exchange" => Some(ColumnType::Float),
        _ => Some(ColumnType::Str),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::SchemaGraph;

    #[test]
    fn schema_is_referentially_consistent() {
        let schema = tpcw_schema();
        assert!(schema.validate().is_empty(), "{:?}", schema.validate());
        assert_eq!(schema.relations.len(), 10);
        assert_eq!(schema.indexes.len(), 6);
    }

    #[test]
    fn schema_graph_shape() {
        let schema = tpcw_schema();
        let graph = SchemaGraph::from_schema(&schema);
        assert!(graph.is_acyclic());
        // Orders references Address twice (billing and shipping).
        assert_eq!(graph.edges_between("Address", "Orders").len(), 2);
        assert_eq!(graph.out_edges("Customer").len(), 1);
        assert_eq!(graph.in_edges("Order_line").len(), 2);
    }

    #[test]
    fn roots_and_types() {
        assert_eq!(tpcw_roots(), vec!["Author", "Customer", "Country"]);
        assert_eq!(tpcw_types("Item", "i_id"), Some(ColumnType::Int));
        assert_eq!(tpcw_types("Item", "i_cost"), Some(ColumnType::Float));
        assert_eq!(tpcw_types("Item", "i_title"), Some(ColumnType::Str));
    }
}
