//! The TPC-W write statements W1–W13 (paper Figure 16) with parameter
//! generators.
//!
//! As in the paper, the multi-row `DELETE FROM Shopping_cart_line WHERE
//! scl_sc_id = ?` statement is excluded from the workload because it affects
//! multiple base-table rows (§IX-D1); the remaining writes all specify their
//! full key.

use crate::datagen::TpcwScale;
use relational::Value;
use sql::{parse_statement, Statement};

/// One benchmark write statement.
#[derive(Debug, Clone)]
pub struct WriteStatement {
    /// Identifier used in the paper's Figure 14 ("W1" … "W13").
    pub id: &'static str,
    /// What the statement does (Figure 16 wording).
    pub description: &'static str,
    /// SQL text with `?` parameters.
    pub sql: &'static str,
}

impl WriteStatement {
    /// Parses the SQL into a statement.
    pub fn statement(&self) -> Statement {
        parse_statement(self.sql).unwrap_or_else(|e| panic!("{}: {e}", self.id))
    }

    /// Deterministic parameters for repetition `rep` at scale `scale`.
    ///
    /// Insert statements generate fresh keys well above the loaded key range
    /// so repetitions never collide with loaded rows; update/delete
    /// statements target existing rows.
    pub fn params(&self, scale: TpcwScale, rep: u64) -> Vec<Value> {
        let customers = scale.customers as i64;
        let items = scale.items() as i64;
        let orders = scale.orders() as i64;
        let carts = scale.shopping_carts() as i64;
        let r = rep as i64;
        let fresh = |base: i64| base + 1_000_000 + r;
        let existing = |n: i64| (r * 31 % n.max(1)) + 1;
        match self.id {
            // W1: Insert Orders.
            "W1" => vec![
                Value::Int(fresh(orders)),
                Value::Int(existing(customers)),
                Value::str("2017-07-01"),
                Value::Float(90.0),
                Value::Float(10.0),
                Value::Float(100.0),
                Value::str("AIR"),
                Value::str("2017-07-03"),
                Value::Int(existing(customers)),
                Value::Int(existing(customers)),
                Value::str("PENDING"),
            ],
            // W2: Insert CC_Xacts.
            "W2" => vec![
                Value::Int(fresh(orders)),
                Value::str("VISA"),
                Value::str("4111-000000000000"),
                Value::str("CARDHOLDER"),
                Value::str("2019-12"),
                Value::Float(100.0),
                Value::str("2017-07-01"),
                Value::Int(existing(92)),
            ],
            // W3: Insert Order_line.
            "W3" => vec![
                Value::Int(existing(orders)),
                Value::Int(fresh(10)),
                Value::Int(existing(items)),
                Value::Int(2),
                Value::Float(0.05),
                Value::str("benchmark order line"),
            ],
            // W4: Insert Customer.
            "W4" => vec![
                Value::Int(fresh(customers)),
                Value::str(format!("NEWUSER{r:08}")),
                Value::str("New"),
                Value::str("Customer"),
                Value::Int(existing(scale.addresses() as i64)),
                Value::str("555-0000000"),
                Value::str("new@example.com"),
                Value::Int(20170101),
                Value::Int(20170601),
                Value::Float(0.1),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::str("new customer data"),
            ],
            // W5: Insert Address.
            "W5" => vec![
                Value::Int(fresh(scale.addresses() as i64)),
                Value::str("1 New Street"),
                Value::str("NEWCITY"),
                Value::str("TN"),
                Value::str("37201"),
                Value::Int(existing(92)),
            ],
            // W6: Insert Shopping_cart.
            "W6" => vec![Value::Int(fresh(carts)), Value::Int(20170701)],
            // W7: Insert Shopping_cart_line.
            "W7" => vec![
                Value::Int(existing(carts)),
                Value::Int(fresh(items)),
                Value::Int(1),
            ],
            // W8: Delete Shopping_cart_line (fully keyed).
            "W8" => vec![Value::Int(existing(carts)), Value::Int(existing(items))],
            // W9: Update Item (price change).
            "W9" => vec![
                Value::Float(19.99),
                Value::Float(12.5),
                Value::Int(existing(items)),
            ],
            // W10: Update Item (related item / image refresh).
            "W10" => vec![
                Value::Int(existing(items)),
                Value::str("2017-07-01"),
                Value::Int(existing(items)),
            ],
            // W11: Update Shopping_cart (refresh timestamp).
            "W11" => vec![Value::Int(20170702), Value::Int(existing(carts))],
            // W12: Update Shopping_cart_line (quantity).
            "W12" => vec![
                Value::Int(3),
                Value::Int(existing(carts)),
                Value::Int(existing(items)),
            ],
            // W13: Update Customer (balance / ytd payment / last login).
            "W13" => vec![
                Value::Float(50.0),
                Value::Float(150.0),
                Value::Int(20170702),
                Value::Int(existing(customers)),
            ],
            other => panic!("unknown write id {other}"),
        }
    }
}

/// The thirteen write statements of the paper's Figure 16.
pub fn write_statements() -> Vec<WriteStatement> {
    vec![
        WriteStatement {
            id: "W1",
            description: "Insert Orders",
            sql: "INSERT INTO Orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, \
                  o_ship_type, o_ship_date, o_bill_addr_id, o_ship_addr_id, o_status) \
                  VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        },
        WriteStatement {
            id: "W2",
            description: "Insert CC_Xacts",
            sql: "INSERT INTO CC_Xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire, \
                  cx_xact_amt, cx_xact_date, cx_co_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        },
        WriteStatement {
            id: "W3",
            description: "Insert Order_line",
            sql: "INSERT INTO Order_line (ol_o_id, ol_id, ol_i_id, ol_qty, ol_discount, \
                  ol_comments) VALUES (?, ?, ?, ?, ?, ?)",
        },
        WriteStatement {
            id: "W4",
            description: "Insert Customer",
            sql: "INSERT INTO Customer (c_id, c_uname, c_fname, c_lname, c_addr_id, c_phone, \
                  c_email, c_since, c_last_login, c_discount, c_balance, c_ytd_pmt, c_data) \
                  VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        },
        WriteStatement {
            id: "W5",
            description: "Insert Address",
            sql: "INSERT INTO Address (addr_id, addr_street1, addr_city, addr_state, addr_zip, \
                  addr_co_id) VALUES (?, ?, ?, ?, ?, ?)",
        },
        WriteStatement {
            id: "W6",
            description: "Insert Shopping_cart",
            sql: "INSERT INTO Shopping_cart (sc_id, sc_time) VALUES (?, ?)",
        },
        WriteStatement {
            id: "W7",
            description: "Insert Shopping_cart_line",
            sql: "INSERT INTO Shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) VALUES (?, ?, ?)",
        },
        WriteStatement {
            id: "W8",
            description: "Delete Shopping_cart_line",
            sql: "DELETE FROM Shopping_cart_line WHERE scl_sc_id = ? AND scl_i_id = ?",
        },
        WriteStatement {
            id: "W9",
            description: "Update Item (price)",
            sql: "UPDATE Item SET i_srp = ?, i_cost = ? WHERE i_id = ?",
        },
        WriteStatement {
            id: "W10",
            description: "Update Item (related item and publication date)",
            sql: "UPDATE Item SET i_related1 = ?, i_pub_date = ? WHERE i_id = ?",
        },
        WriteStatement {
            id: "W11",
            description: "Update Shopping_cart",
            sql: "UPDATE Shopping_cart SET sc_time = ? WHERE sc_id = ?",
        },
        WriteStatement {
            id: "W12",
            description: "Update Shopping_cart_line",
            sql: "UPDATE Shopping_cart_line SET scl_qty = ? WHERE scl_sc_id = ? AND scl_i_id = ?",
        },
        WriteStatement {
            id: "W13",
            description: "Update Customer",
            sql: "UPDATE Customer SET c_balance = ?, c_ytd_pmt = ?, c_last_login = ? WHERE c_id = ?",
        },
    ]
}

/// The write statements as parsed statements.
pub fn write_statement_asts() -> Vec<Statement> {
    write_statements().iter().map(WriteStatement::statement).collect()
}

/// The full workload (reads then writes), used to drive view selection.
pub fn full_workload() -> Vec<Statement> {
    let mut workload = crate::queries::join_query_statements();
    workload.extend(write_statement_asts());
    workload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_writes_parse_and_are_writes() {
        let writes = write_statements();
        assert_eq!(writes.len(), 13);
        for w in &writes {
            assert!(w.statement().is_write(), "{} must be a write", w.id);
        }
    }

    #[test]
    fn parameter_arity_matches_placeholders() {
        let scale = TpcwScale::new(100);
        for w in write_statements() {
            let placeholders = w.sql.matches('?').count();
            assert_eq!(w.params(scale, 2).len(), placeholders, "{}", w.id);
        }
    }

    #[test]
    fn writes_specify_full_keys() {
        use query::baseline::baseline_workload;
        let schema = crate::schema::tpcw_schema();
        let (kept, excluded) = baseline_workload(&schema, &write_statement_asts());
        assert_eq!(kept.len(), 13, "every W statement is single-row");
        assert!(excluded.is_empty());
    }

    #[test]
    fn full_workload_combines_reads_and_writes() {
        let workload = full_workload();
        assert_eq!(workload.len(), 24);
        assert_eq!(workload.iter().filter(|s| s.is_read()).count(), 11);
    }
}
