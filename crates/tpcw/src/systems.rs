//! Harnesses for the five evaluated systems (paper §IX-D2 and Figure 13).
//!
//! | System   | Materialized-view selection      | Concurrency control            |
//! |----------|----------------------------------|--------------------------------|
//! | VoltDB   | none                             | single-threaded partitions     |
//! | Synergy  | schema-aware, workload-driven    | hierarchical single lock       |
//! | MVCC-A   | Synergy's views                  | MVCC (Tephra-like)             |
//! | MVCC-UA  | schema-oblivious advisor views   | MVCC (Tephra-like)             |
//! | Baseline | none                             | MVCC (Tephra-like)             |
//!
//! Every system loads the same [`TpcwDataset`] and measures each statement's
//! response time on its own simulated clock, mirroring how the paper
//! measures request response time at the client.

use crate::datagen::TpcwDataset;
use crate::schema::{tpcw_roots, tpcw_schema, tpcw_types};
use crate::writes::full_workload;
use mvcc::TransactionManager;
use newsql::{NewSqlEngine, PartitionScheme, TableDistribution};
use nosql_store::{Cluster, ClusterConfig};
use relational::{Schema, SchemaGraph, Value};
use simclock::{CostModel, SimClock, SimDuration};
use sql::Statement;
use synergy::advisor::{advise_views, TableStatistics};
use synergy::{CandidateViews, RootedTree, SynergyConfig, SynergySystem};

/// The five evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// VoltDB-class NewSQL engine.
    VoltDb,
    /// The Synergy system (this paper's contribution).
    Synergy,
    /// Synergy's views with MVCC concurrency control instead of locks.
    MvccA,
    /// Advisor (schema-oblivious) views with MVCC concurrency control.
    MvccUa,
    /// Base tables only, MVCC concurrency control.
    Baseline,
}

impl SystemKind {
    /// All five systems, in the order the paper's figures list them.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::VoltDb,
            SystemKind::Synergy,
            SystemKind::MvccA,
            SystemKind::MvccUa,
            SystemKind::Baseline,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::VoltDb => "VoltDB",
            SystemKind::Synergy => "Synergy",
            SystemKind::MvccA => "MVCC-A",
            SystemKind::MvccUa => "MVCC-UA",
            SystemKind::Baseline => "Baseline",
        }
    }

    /// The view-selection mechanism row of the paper's Figure 13.
    pub fn view_mechanism(&self) -> &'static str {
        match self {
            SystemKind::VoltDb | SystemKind::Baseline => "None",
            SystemKind::Synergy | SystemKind::MvccA => "Schema relationships aware",
            SystemKind::MvccUa => "Schema relationships un-aware",
        }
    }

    /// The concurrency-control mechanism row of the paper's Figure 13.
    pub fn concurrency_mechanism(&self) -> &'static str {
        match self {
            SystemKind::VoltDb => "Single threaded partition processing",
            SystemKind::Synergy => "Hierarchical locking",
            SystemKind::MvccA | SystemKind::MvccUa | SystemKind::Baseline => "MVCC",
        }
    }
}

/// The outcome of executing one statement on one system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Number of result rows (0 for writes).
    pub rows: usize,
    /// Simulated response time.
    pub elapsed: SimDuration,
}

/// A system stood up over the TPC-W dataset, ready to execute statements.
pub trait EvaluatedSystem: Send + Sync {
    /// Which of the five systems this is.
    fn kind(&self) -> SystemKind;

    /// Display name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Executes one statement and reports its simulated response time.
    /// `Err` means the system cannot execute the statement (e.g. a join not
    /// supported by VoltDB's partitioning).
    fn execute(&self, statement: &Statement, params: &[Value]) -> Result<ExecOutcome, String>;

    /// Total stored bytes (the paper's Table III).
    fn database_size_bytes(&self) -> u64;
}

/// Builds one of the five systems over a dataset.
pub fn build_system(kind: SystemKind, dataset: &TpcwDataset) -> Box<dyn EvaluatedSystem> {
    match kind {
        SystemKind::VoltDb => Box::new(VoltDbSystem::build(dataset)),
        other => Box::new(HBaseSystem::build(other, dataset)),
    }
}

// ---------------------------------------------------------------------
// HBase-backed systems (Synergy, MVCC-A, MVCC-UA, Baseline)
// ---------------------------------------------------------------------

/// Synergy, MVCC-A, MVCC-UA and Baseline: all run over the NoSQL cluster,
/// differing only in which views exist and which concurrency control wraps
/// each statement.
pub struct HBaseSystem {
    kind: SystemKind,
    system: SynergySystem,
    mvcc: Option<TransactionManager>,
}

impl HBaseSystem {
    /// Builds and populates the system.
    pub fn build(kind: SystemKind, dataset: &TpcwDataset) -> HBaseSystem {
        assert_ne!(kind, SystemKind::VoltDb);
        let schema = tpcw_schema();
        let workload = full_workload();
        let cluster = Cluster::new(ClusterConfig::default());

        let config = match kind {
            SystemKind::Synergy => {
                SynergyConfig::new(schema.clone(), workload, tpcw_roots(), &tpcw_types)
            }
            SystemKind::MvccA => {
                SynergyConfig::new(schema.clone(), workload, tpcw_roots(), &tpcw_types)
                    .without_hierarchical_locking()
            }
            SystemKind::MvccUa => {
                let candidates = advisor_candidates(&schema, &full_workload(), dataset);
                SynergyConfig::new(schema.clone(), workload, Vec::new(), &tpcw_types)
                    .with_candidate_override(candidates)
                    .without_hierarchical_locking()
            }
            SystemKind::Baseline => {
                SynergyConfig::new(schema.clone(), workload, Vec::new(), &tpcw_types)
                    .with_candidate_override(empty_candidates(&schema))
                    .without_hierarchical_locking()
            }
            SystemKind::VoltDb => unreachable!(),
        };

        let system = SynergySystem::build(cluster, config).expect("system builds");
        for table in TpcwDataset::load_order() {
            system
                .bulk_load(table, dataset.rows(table))
                .expect("dataset loads");
        }
        system.materialize_views().expect("views materialize");
        system.cluster().major_compact_all();

        let mvcc = match kind {
            SystemKind::Synergy => None,
            _ => Some(TransactionManager::new(system.cluster().clone())),
        };
        HBaseSystem { kind, system, mvcc }
    }

    /// The underlying Synergy machinery (views, catalog, cluster).
    pub fn inner(&self) -> &SynergySystem {
        &self.system
    }
}

impl EvaluatedSystem for HBaseSystem {
    fn kind(&self) -> SystemKind {
        self.kind
    }

    fn execute(&self, statement: &Statement, params: &[Value]) -> Result<ExecOutcome, String> {
        let clock = self.system.cluster().clock().clone();
        let start = clock.now();
        let before = self.system.cluster().metrics().ops;
        let result = match &self.mvcc {
            None => self
                .system
                .execute(statement, params)
                .map_err(|e| e.to_string())?,
            Some(mvcc) => {
                // Every statement is its own MVCC transaction (Phoenix+Tephra).
                let mut tx = mvcc.begin();
                let result = self
                    .system
                    .execute(statement, params)
                    .map_err(|e| e.to_string())?;
                let delta = self.system.cluster().metrics().ops.delta_since(&before);
                mvcc.charge_version_filtering(delta.scanned_rows + delta.gets);
                if statement.is_write() {
                    let key = params
                        .first()
                        .map(|v| v.encode())
                        .unwrap_or_else(|| "?".to_string());
                    tx.record_write(statement.write_target().unwrap_or_default(), key);
                    mvcc.commit(tx).map_err(|e| e.to_string())?;
                } else {
                    // Read-only transactions skip conflict detection and the
                    // commit-record persistence: they only pay the begin
                    // round trip and per-cell version filtering.
                    mvcc.abort(tx);
                }
                result
            }
        };
        Ok(ExecOutcome {
            rows: result.len(),
            elapsed: clock.now() - start,
        })
    }

    fn database_size_bytes(&self) -> u64 {
        self.system.database_size_bytes()
    }
}

/// Candidate-view override for the Baseline system: no views at all.
fn empty_candidates(schema: &Schema) -> CandidateViews {
    CandidateViews {
        trees: Vec::new(),
        dag: SchemaGraph::from_schema(schema),
        unassigned: schema.relation_names(),
    }
}

/// Candidate-view override for MVCC-UA: the schema-oblivious advisor's
/// views, converted into degenerate rooted trees (one chain per view) so the
/// same selection/rewriting/maintenance machinery can host them.
///
/// Advisor views whose table set does not form a key/foreign-key chain
/// cannot be represented as a single NoSQL table keyed by one relation's
/// primary key and are skipped — the counterpart of the indexed-view
/// restrictions SQL Server's tuning advisor works under.
fn advisor_candidates(
    schema: &Schema,
    workload: &[Statement],
    dataset: &TpcwDataset,
) -> CandidateViews {
    let mut stats = TableStatistics::default();
    let mut total_bytes = 0u64;
    for (table, rows) in &dataset.tables {
        let avg = rows
            .iter()
            .take(64)
            .map(|r| r.byte_size() as u64)
            .sum::<u64>()
            / rows.len().clamp(1, 64) as u64;
        stats.set(table.clone(), rows.len() as u64, avg.max(1));
        total_bytes += rows.len() as u64 * avg.max(1);
    }
    // The advisor is run with a storage budget of 10% of the base database,
    // which reproduces the paper's outcome of MVCC-UA materializing only a
    // small number of views (its database is ~4% larger than Baseline in
    // Table III).
    let budget = total_bytes / 10;
    let advised = advise_views(workload, &stats, budget);

    let graph = SchemaGraph::from_schema(schema);
    let mut trees = Vec::new();
    for view in advised {
        if let Some(edges) = chain_edges(&graph, &view.tables) {
            trees.push(RootedTree {
                root: edges[0].from.clone(),
                edges,
            });
        }
    }
    CandidateViews {
        trees,
        dag: graph,
        unassigned: Vec::new(),
    }
}

/// Orders `tables` into a key/foreign-key chain if one exists, returning the
/// connecting edges.
fn chain_edges(
    graph: &SchemaGraph,
    tables: &[String],
) -> Option<Vec<relational::GraphEdge>> {
    // Topologically order the subset, then require an edge between every
    // consecutive pair.
    let sub_edges: Vec<relational::GraphEdge> = graph
        .edges()
        .iter()
        .filter(|e| tables.contains(&e.from) && tables.contains(&e.to))
        .cloned()
        .collect();
    let sub = SchemaGraph::from_parts(tables.to_vec(), sub_edges);
    let order = sub.topological_order()?;
    let mut edges = Vec::new();
    for pair in order.windows(2) {
        let edge = sub.edges_between(&pair[0], &pair[1]).first().cloned().cloned()?;
        edges.push(edge);
    }
    if edges.len() + 1 == tables.len() {
        Some(edges)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// VoltDB-class system
// ---------------------------------------------------------------------

/// The VoltDB comparison system: three partitioning schemes (the paper uses
/// three because no single scheme supports even half the TPC-W joins), each
/// backed by its own engine and clock.  Reads run on the first scheme that
/// supports them; writes run everywhere but are measured on the primary
/// scheme.
pub struct VoltDbSystem {
    engines: Vec<(NewSqlEngine, SimClock)>,
}

impl VoltDbSystem {
    /// The three partitioning schemes.
    pub fn schemes() -> Vec<PartitionScheme> {
        vec![
            PartitionScheme::new("by_customer")
                .partitioned("Customer", "c_id")
                .partitioned("Orders", "o_c_id")
                .partitioned("Order_line", "ol_o_id")
                .partitioned("CC_Xacts", "cx_o_id")
                .partitioned("Item", "i_id")
                .partitioned("Address", "addr_id")
                .partitioned("Author", "a_id")
                .partitioned("Shopping_cart", "sc_id")
                .partitioned("Shopping_cart_line", "scl_sc_id")
                .replicated("Country"),
            PartitionScheme::new("by_item")
                .partitioned("Item", "i_id")
                .partitioned("Order_line", "ol_i_id")
                .partitioned("Shopping_cart_line", "scl_i_id")
                .partitioned("Customer", "c_id")
                .partitioned("Orders", "o_id")
                .partitioned("Address", "addr_id")
                .partitioned("Author", "a_id")
                .partitioned("CC_Xacts", "cx_o_id")
                .partitioned("Shopping_cart", "sc_id")
                .replicated("Country"),
            PartitionScheme::new("by_author")
                .partitioned("Author", "a_id")
                .partitioned("Item", "i_a_id")
                .partitioned("Orders", "o_id")
                .partitioned("Order_line", "ol_o_id")
                .partitioned("Customer", "c_id")
                .partitioned("Address", "addr_id")
                .partitioned("CC_Xacts", "cx_o_id")
                .partitioned("Shopping_cart", "sc_id")
                .partitioned("Shopping_cart_line", "scl_sc_id")
                .replicated("Country"),
        ]
    }

    /// Builds and populates the three engines (five partitions each, like the
    /// paper's five-node VoltDB cluster).
    pub fn build(dataset: &TpcwDataset) -> VoltDbSystem {
        let schema = tpcw_schema();
        let mut engines = Vec::new();
        for scheme in Self::schemes() {
            let clock = SimClock::new();
            let engine = NewSqlEngine::new(5, clock.clone(), CostModel::default(), &scheme);
            for relation in &schema.relations {
                let distribution = scheme
                    .tables
                    .get(&relation.name)
                    .cloned()
                    .unwrap_or(TableDistribution::Replicated);
                engine.create_table(&relation.name, relation.primary_key.clone(), distribution);
            }
            for table in TpcwDataset::load_order() {
                engine
                    .load_rows(table, dataset.rows(table))
                    .expect("dataset loads into VoltDB engine");
            }
            engines.push((engine, clock));
        }
        VoltDbSystem { engines }
    }
}

impl EvaluatedSystem for VoltDbSystem {
    fn kind(&self) -> SystemKind {
        SystemKind::VoltDb
    }

    fn execute(&self, statement: &Statement, params: &[Value]) -> Result<ExecOutcome, String> {
        match statement {
            Statement::Select(select) => {
                for (engine, clock) in &self.engines {
                    if engine.check_join_supported(select).is_ok() {
                        let start = clock.now();
                        let rows = engine.execute(statement, params).map_err(|e| e.to_string())?;
                        return Ok(ExecOutcome {
                            rows: rows.len(),
                            elapsed: clock.now() - start,
                        });
                    }
                }
                Err("join not supported under any partitioning scheme".to_string())
            }
            _ => {
                // Writes keep every scheme consistent; response time is the
                // primary scheme's.
                let (_, primary_clock) = &self.engines[0];
                let start = primary_clock.now();
                let mut outcome = None;
                for (engine, _) in &self.engines {
                    let rows = engine.execute(statement, params).map_err(|e| e.to_string())?;
                    outcome.get_or_insert(rows.len());
                }
                Ok(ExecOutcome {
                    rows: 0,
                    elapsed: primary_clock.now() - start,
                })
            }
        }
    }

    fn database_size_bytes(&self) -> u64 {
        self.engines[0].0.database_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::TpcwScale;
    use crate::queries::join_queries;
    use crate::writes::write_statements;

    fn small_dataset() -> TpcwDataset {
        TpcwDataset::generate(TpcwScale::new(40))
    }

    #[test]
    fn synergy_selects_views_for_the_tpcw_workload() {
        let dataset = small_dataset();
        let system = HBaseSystem::build(SystemKind::Synergy, &dataset);
        let views: Vec<String> = system
            .inner()
            .selection()
            .views
            .iter()
            .map(|v| v.display_name())
            .collect();
        assert!(!views.is_empty(), "Synergy must select views, got {views:?}");
        // The Customer-Orders join (Q2) and Author-Item join (Q4/Q5/Q6) are
        // prime candidates and must be materialized.
        assert!(views.iter().any(|v| v.contains("Customer") && v.contains("Orders")));
        assert!(views.iter().any(|v| v.contains("Author") && v.contains("Item")));
    }

    #[test]
    fn baseline_has_no_views_and_mvcc_ua_has_few() {
        let dataset = small_dataset();
        let baseline = HBaseSystem::build(SystemKind::Baseline, &dataset);
        assert!(baseline.inner().selection().views.is_empty());
        let ua = HBaseSystem::build(SystemKind::MvccUa, &dataset);
        let synergy = HBaseSystem::build(SystemKind::Synergy, &dataset);
        assert!(
            ua.inner().selection().views.len() < synergy.inner().selection().views.len(),
            "the schema-oblivious advisor must select fewer views than Synergy"
        );
    }

    #[test]
    fn voltdb_rejects_exactly_the_paper_unsupported_queries() {
        let dataset = small_dataset();
        let voltdb = VoltDbSystem::build(&dataset);
        let scale = TpcwScale::new(dataset.customers);
        for query in join_queries() {
            let outcome = voltdb.execute(&query.statement(), &query.params(scale, 1));
            assert_eq!(
                outcome.is_ok(),
                query.supported_on_voltdb,
                "{} support mismatch: {outcome:?}",
                query.id
            );
        }
    }

    #[test]
    fn every_join_query_runs_on_every_hbase_system() {
        let dataset = small_dataset();
        let scale = TpcwScale::new(dataset.customers);
        for kind in [SystemKind::Synergy, SystemKind::Baseline] {
            let system = build_system(kind, &dataset);
            for query in join_queries() {
                let outcome = system
                    .execute(&query.statement(), &query.params(scale, 1))
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", query.id, system.name()));
                assert!(outcome.elapsed > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn every_write_statement_runs_on_every_system() {
        let dataset = small_dataset();
        let scale = TpcwScale::new(dataset.customers);
        for kind in SystemKind::all() {
            let system = build_system(kind, &dataset);
            for write in write_statements() {
                system
                    .execute(&write.statement(), &write.params(scale, 0))
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", write.id, system.name()));
            }
        }
    }

    #[test]
    fn synergy_joins_are_faster_and_writes_cheaper_than_baseline() {
        let dataset = small_dataset();
        let scale = TpcwScale::new(dataset.customers);
        let synergy = build_system(SystemKind::Synergy, &dataset);
        let baseline = build_system(SystemKind::Baseline, &dataset);

        // Q2 (customer's latest order) exercises a materialized view.
        let q2 = &join_queries()[1];
        let s = synergy.execute(&q2.statement(), &q2.params(scale, 1)).unwrap();
        let b = baseline.execute(&q2.statement(), &q2.params(scale, 1)).unwrap();
        assert!(
            s.elapsed < b.elapsed,
            "Synergy {} vs Baseline {}",
            s.elapsed,
            b.elapsed
        );

        // W13 (update customer): Synergy pays lock + view maintenance, the
        // Baseline pays the MVCC overhead — MVCC dominates.
        let w13 = &write_statements()[12];
        let s = synergy.execute(&w13.statement(), &w13.params(scale, 1)).unwrap();
        let b = baseline.execute(&w13.statement(), &w13.params(scale, 1)).unwrap();
        assert!(
            s.elapsed < b.elapsed,
            "Synergy {} vs Baseline {}",
            s.elapsed,
            b.elapsed
        );
    }

    #[test]
    fn database_sizes_follow_table_iii_ordering() {
        let dataset = small_dataset();
        let synergy = build_system(SystemKind::Synergy, &dataset);
        let baseline = build_system(SystemKind::Baseline, &dataset);
        let voltdb = build_system(SystemKind::VoltDb, &dataset);
        let ua = build_system(SystemKind::MvccUa, &dataset);
        assert!(synergy.database_size_bytes() > baseline.database_size_bytes());
        assert!(baseline.database_size_bytes() > voltdb.database_size_bytes());
        assert!(ua.database_size_bytes() >= baseline.database_size_bytes());
        assert!(synergy.database_size_bytes() > ua.database_size_bytes());
    }

    #[test]
    fn figure_13_mechanism_matrix() {
        assert_eq!(SystemKind::Synergy.concurrency_mechanism(), "Hierarchical locking");
        assert_eq!(SystemKind::MvccUa.view_mechanism(), "Schema relationships un-aware");
        assert_eq!(SystemKind::VoltDb.view_mechanism(), "None");
        assert_eq!(SystemKind::Baseline.concurrency_mechanism(), "MVCC");
        assert_eq!(SystemKind::all().len(), 5);
    }
}
