//! The TPC-W join queries Q1–Q11 (paper Figure 15) with parameter
//! generators.
//!
//! Each entry reproduces the table set, filters, grouping, ordering and
//! limit the paper lists; queries Q3, Q7, Q9 and Q10 are the ones the paper
//! marks as unsupported on VoltDB.

use crate::datagen::{customer_uname, TpcwScale, SUBJECTS};
use relational::Value;
use sql::{parse_statement, Statement};

/// One benchmark join query.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Identifier used in the paper's Figure 12 ("Q1" … "Q11").
    pub id: &'static str,
    /// Short description of what the servlet does.
    pub description: &'static str,
    /// The SQL text (with `?` parameters).
    pub sql: &'static str,
    /// Whether the paper reports this query as supported on VoltDB.
    pub supported_on_voltdb: bool,
}

impl JoinQuery {
    /// Parses the SQL into a statement.
    pub fn statement(&self) -> Statement {
        parse_statement(self.sql).unwrap_or_else(|e| panic!("{}: {e}", self.id))
    }

    /// Deterministic parameter values for repetition `rep` at scale `scale`.
    pub fn params(&self, scale: TpcwScale, rep: u64) -> Vec<Value> {
        let customers = scale.customers as i64;
        let items = scale.items() as i64;
        let orders = scale.orders() as i64;
        let pick = |n: i64| ((rep as i64 * 7919) % n.max(1)) + 1;
        match self.id {
            "Q1" => vec![Value::Int(pick(orders))],
            "Q2" => vec![Value::str(customer_uname(pick(customers)))],
            "Q3" => vec![Value::str(customer_uname(pick(customers)))],
            "Q4" | "Q5" => vec![Value::str(SUBJECTS[(rep as usize) % SUBJECTS.len()])],
            "Q6" => vec![Value::Int(pick(items))],
            "Q7" => vec![Value::Int(pick(orders))],
            "Q8" => vec![Value::Int(pick(scale.shopping_carts() as i64))],
            "Q9" => vec![Value::Int(pick(items))],
            "Q10" => vec![Value::str(SUBJECTS[(rep as usize) % SUBJECTS.len()])],
            "Q11" => vec![Value::Int(pick(items))],
            other => panic!("unknown query id {other}"),
        }
    }
}

/// The eleven join queries of the paper's Figure 15.
pub fn join_queries() -> Vec<JoinQuery> {
    vec![
        JoinQuery {
            id: "Q1",
            description: "Items and order lines of one order (order display)",
            sql: "SELECT * FROM Item AS i, Order_line AS ol \
                  WHERE i.i_id = ol.ol_i_id AND ol.ol_o_id = ?",
            supported_on_voltdb: true,
        },
        JoinQuery {
            id: "Q2",
            description: "Most recent order of a customer by user name",
            sql: "SELECT * FROM Customer AS c, Orders AS o \
                  WHERE c.c_id = o.o_c_id AND c.c_uname = ? \
                  ORDER BY o.o_date DESC, o.o_id DESC LIMIT 1",
            supported_on_voltdb: true,
        },
        JoinQuery {
            id: "Q3",
            description: "Customer with home address and country",
            sql: "SELECT * FROM Customer AS c, Address AS a, Country AS co \
                  WHERE c.c_addr_id = a.addr_id AND a.addr_co_id = co.co_id AND c.c_uname = ?",
            supported_on_voltdb: false,
        },
        JoinQuery {
            id: "Q4",
            description: "New products in a subject (ordered by title)",
            sql: "SELECT a.a_fname, a.a_lname, i.i_id, i.i_title \
                  FROM Author AS a, Item AS i \
                  WHERE a.a_id = i.i_a_id AND i.i_subject = ? \
                  ORDER BY i.i_title LIMIT 50",
            supported_on_voltdb: true,
        },
        JoinQuery {
            id: "Q5",
            description: "New products in a subject (ordered by publication date)",
            sql: "SELECT a.a_fname, a.a_lname, i.i_id, i.i_title, i.i_pub_date \
                  FROM Author AS a, Item AS i \
                  WHERE a.a_id = i.i_a_id AND i.i_subject = ? \
                  ORDER BY i.i_pub_date DESC, i.i_title LIMIT 50",
            supported_on_voltdb: true,
        },
        JoinQuery {
            id: "Q6",
            description: "Product detail with author",
            sql: "SELECT * FROM Author AS a, Item AS i \
                  WHERE a.a_id = i.i_a_id AND i.i_id = ?",
            supported_on_voltdb: true,
        },
        JoinQuery {
            id: "Q7",
            description: "Order display with customer, both addresses and countries",
            sql: "SELECT * FROM Orders AS o, Customer AS c, Address AS ship_addr, \
                  Address AS bill_addr, Country AS ship_co, Country AS bill_co \
                  WHERE o.o_c_id = c.c_id AND o.o_ship_addr_id = ship_addr.addr_id \
                  AND o.o_bill_addr_id = bill_addr.addr_id \
                  AND ship_addr.addr_co_id = ship_co.co_id \
                  AND bill_addr.addr_co_id = bill_co.co_id AND o.o_id = ?",
            supported_on_voltdb: false,
        },
        JoinQuery {
            id: "Q8",
            description: "Items in a shopping cart",
            sql: "SELECT * FROM Item AS i, Shopping_cart_line AS scl \
                  WHERE i.i_id = scl.scl_i_id AND scl.scl_sc_id = ?",
            supported_on_voltdb: true,
        },
        JoinQuery {
            id: "Q9",
            description: "Related item (admin confirm)",
            sql: "SELECT * FROM Item AS i, Item AS j \
                  WHERE j.i_id = i.i_related1 AND i.i_id = ?",
            supported_on_voltdb: false,
        },
        JoinQuery {
            id: "Q10",
            description: "Best sellers in a subject",
            sql: "SELECT i.i_id, i.i_title, a.a_fname, a.a_lname, SUM(ol.ol_qty) AS sold \
                  FROM Author AS a, Item AS i, Order_line AS ol, Orders AS o \
                  WHERE a.a_id = i.i_a_id AND i.i_id = ol.ol_i_id AND ol.ol_o_id = o.o_id \
                  AND i.i_subject = ? \
                  GROUP BY i.i_id ORDER BY sold DESC LIMIT 50",
            supported_on_voltdb: false,
        },
        JoinQuery {
            id: "Q11",
            description: "Customers who bought this item also bought",
            sql: "SELECT ol2.ol_i_id, SUM(ol2.ol_qty) AS bought \
                  FROM Order_line AS ol, Order_line AS ol2, Orders AS o \
                  WHERE ol.ol_o_id = o.o_id AND ol2.ol_o_id = o.o_id \
                  AND ol.ol_i_id = ? AND ol2.ol_i_id <> ol.ol_i_id \
                  GROUP BY ol2.ol_i_id ORDER BY bought DESC LIMIT 5",
            supported_on_voltdb: true,
        },
    ]
}

/// The read statements of the workload as parsed statements (used to drive
/// view selection).
pub fn join_query_statements() -> Vec<Statement> {
    join_queries().iter().map(JoinQuery::statement).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_queries_parse() {
        let queries = join_queries();
        assert_eq!(queries.len(), 11);
        for q in &queries {
            let stmt = q.statement();
            let select = stmt.as_select().unwrap();
            assert!(select.is_join_query(), "{} must join tables", q.id);
        }
    }

    #[test]
    fn unsupported_voltdb_set_matches_the_paper() {
        let unsupported: Vec<&str> = join_queries()
            .iter()
            .filter(|q| !q.supported_on_voltdb)
            .map(|q| q.id)
            .collect();
        assert_eq!(unsupported, vec!["Q3", "Q7", "Q9", "Q10"]);
    }

    #[test]
    fn parameter_arity_matches_placeholders() {
        let scale = TpcwScale::new(100);
        for q in join_queries() {
            let placeholders = q.sql.matches('?').count();
            assert_eq!(
                q.params(scale, 3).len(),
                placeholders,
                "{} parameter count",
                q.id
            );
        }
    }

    #[test]
    fn parameters_are_deterministic_and_in_range() {
        let scale = TpcwScale::new(100);
        for q in join_queries() {
            assert_eq!(q.params(scale, 5), q.params(scale, 5));
            for p in q.params(scale, 9) {
                if let Some(v) = p.as_int() {
                    assert!(v >= 1);
                }
            }
        }
    }
}
