//! Deterministic, scale-parameterised TPC-W data generation.
//!
//! The paper controls database size with the number of customers
//! (`NUM_CUST`), sets `NUM_ITEMS = 10 × NUM_CUST`, and changes the
//! Customer:Orders cardinality to 1:10 (§IX-D1).  The generator reproduces
//! those ratios at any scale and is fully deterministic for a given seed, so
//! every evaluated system is loaded with exactly the same rows.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use relational::Row;
use std::collections::BTreeMap;

/// The subjects items are drawn from (used by Q4/Q5/Q10 filters).
pub const SUBJECTS: [&str; 8] = [
    "ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING", "HISTORY", "SCIENCE",
];

/// Scale parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcwScale {
    /// Number of customers (`NUM_CUST`).
    pub customers: u64,
    /// RNG seed (same seed ⇒ identical dataset).
    pub seed: u64,
}

impl TpcwScale {
    /// A scale with the paper's ratios and a fixed seed.
    pub fn new(customers: u64) -> Self {
        TpcwScale {
            customers: customers.max(10),
            seed: 0x5EED_CAFE,
        }
    }

    /// `NUM_ITEMS = 10 × NUM_CUST`.
    pub fn items(&self) -> u64 {
        self.customers * 10
    }

    /// One author per four items (TPC-W's 0.25 ratio).
    pub fn authors(&self) -> u64 {
        (self.items() / 4).max(10)
    }

    /// Customer:Orders cardinality 1:10 (the paper's modified ratio).
    pub fn orders(&self) -> u64 {
        self.customers * 10
    }

    /// Average of three order lines per order.
    pub fn order_lines(&self) -> u64 {
        self.orders() * 3
    }

    /// One address per customer plus a pool for shipping addresses.
    pub fn addresses(&self) -> u64 {
        self.customers * 2
    }

    /// Active shopping carts (one per ten customers).
    pub fn shopping_carts(&self) -> u64 {
        (self.customers / 10).max(5)
    }
}

/// A fully generated dataset: rows per relation, in insertion order.
#[derive(Debug, Clone, Default)]
pub struct TpcwDataset {
    /// Rows keyed by relation name.
    pub tables: BTreeMap<String, Vec<Row>>,
    /// The scale the dataset was generated at.
    pub customers: u64,
}

impl TpcwDataset {
    /// Generates the dataset for `scale`.
    pub fn generate(scale: TpcwScale) -> TpcwDataset {
        let mut rng = StdRng::seed_from_u64(scale.seed);
        let mut tables: BTreeMap<String, Vec<Row>> = BTreeMap::new();

        // Countries (the TPC-W standard 92 countries, abbreviated names).
        let countries: Vec<Row> = (1..=92i64)
            .map(|co_id| {
                Row::new()
                    .with("co_id", co_id)
                    .with("co_name", format!("COUNTRY{co_id}"))
                    .with("co_currency", "USD")
                    .with("co_exchange", 1.0 + (co_id as f64) / 100.0)
            })
            .collect();
        tables.insert("Country".into(), countries);

        // Addresses.
        let addresses: Vec<Row> = (1..=scale.addresses() as i64)
            .map(|addr_id| {
                Row::new()
                    .with("addr_id", addr_id)
                    .with("addr_street1", format!("{addr_id} Main Street"))
                    .with("addr_city", format!("CITY{}", addr_id % 500))
                    .with("addr_state", format!("ST{}", addr_id % 50))
                    .with("addr_zip", format!("{:05}", addr_id % 99999))
                    .with("addr_co_id", (addr_id % 92) + 1)
            })
            .collect();
        tables.insert("Address".into(), addresses);

        // Customers.
        let customers: Vec<Row> = (1..=scale.customers as i64)
            .map(|c_id| {
                Row::new()
                    .with("c_id", c_id)
                    .with("c_uname", customer_uname(c_id))
                    .with("c_fname", format!("First{c_id}"))
                    .with("c_lname", format!("Last{}", c_id % 1000))
                    .with("c_addr_id", c_id)
                    .with("c_phone", format!("555-{:07}", c_id))
                    .with("c_email", format!("user{c_id}@example.com"))
                    .with("c_since", 20000101 + (c_id % 365))
                    .with("c_last_login", 20170101 + (c_id % 365))
                    .with("c_discount", (c_id % 50) as f64 / 100.0)
                    .with("c_balance", 0.0)
                    .with("c_ytd_pmt", (c_id % 1000) as f64)
                    .with("c_data", format!("customer-data-{c_id}"))
            })
            .collect();
        tables.insert("Customer".into(), customers);

        // Authors.
        let authors: Vec<Row> = (1..=scale.authors() as i64)
            .map(|a_id| {
                Row::new()
                    .with("a_id", a_id)
                    .with("a_fname", format!("AuthorFirst{a_id}"))
                    .with("a_lname", format!("AuthorLast{}", a_id % 2000))
                    .with("a_dob", format!("19{:02}-01-01", a_id % 99))
                    .with("a_bio", format!("biography of author {a_id}"))
            })
            .collect();
        tables.insert("Author".into(), authors);

        // Items.
        let num_items = scale.items() as i64;
        let num_authors = scale.authors() as i64;
        let items: Vec<Row> = (1..=num_items)
            .map(|i_id| {
                Row::new()
                    .with("i_id", i_id)
                    .with("i_title", format!("Title {i_id}"))
                    .with("i_a_id", (i_id % num_authors) + 1)
                    .with("i_pub_date", format!("20{:02}-{:02}-01", i_id % 20, (i_id % 12) + 1))
                    .with("i_publisher", format!("Publisher{}", i_id % 100))
                    .with("i_subject", SUBJECTS[(i_id as usize) % SUBJECTS.len()])
                    .with("i_desc", format!("description of item {i_id}"))
                    .with("i_related1", (i_id % num_items) + 1)
                    .with("i_srp", 10.0 + (i_id % 90) as f64)
                    .with("i_cost", 5.0 + (i_id % 90) as f64)
                    .with("i_avail", 1)
                    .with("i_stock", 10 + (i_id % 30))
                    .with("i_isbn", format!("ISBN{i_id:010}"))
            })
            .collect();
        tables.insert("Item".into(), items);

        // Orders, order lines and credit-card transactions.
        let num_customers = scale.customers as i64;
        let num_addresses = scale.addresses() as i64;
        let mut orders = Vec::with_capacity(scale.orders() as usize);
        let mut order_lines = Vec::with_capacity(scale.order_lines() as usize);
        let mut cc_xacts = Vec::with_capacity(scale.orders() as usize);
        for o_id in 1..=scale.orders() as i64 {
            // Cardinality 1:10, deterministic round robin over customers.
            let o_c_id = ((o_id - 1) % num_customers) + 1;
            let total = 20.0 + rng.random_range(0.0..400.0);
            orders.push(
                Row::new()
                    .with("o_id", o_id)
                    .with("o_c_id", o_c_id)
                    .with("o_date", format!("2017-{:02}-{:02}", (o_id % 12) + 1, (o_id % 28) + 1))
                    .with("o_sub_total", total * 0.9)
                    .with("o_tax", total * 0.1)
                    .with("o_total", total)
                    .with("o_ship_type", "AIR")
                    .with("o_ship_date", format!("2017-{:02}-{:02}", (o_id % 12) + 1, (o_id % 28) + 2))
                    .with("o_bill_addr_id", o_c_id)
                    .with("o_ship_addr_id", (o_id % num_addresses) + 1)
                    .with("o_status", "SHIPPED"),
            );
            let lines = 2 + (o_id % 3); // 2..4 lines, average 3
            for ol_id in 1..=lines {
                order_lines.push(
                    Row::new()
                        .with("ol_o_id", o_id)
                        .with("ol_id", ol_id)
                        .with("ol_i_id", rng.random_range(1..=num_items))
                        .with("ol_qty", rng.random_range(1..=5i64))
                        .with("ol_discount", (o_id % 10) as f64 / 100.0)
                        .with("ol_comments", format!("line {ol_id} of order {o_id}")),
                );
            }
            cc_xacts.push(
                Row::new()
                    .with("cx_o_id", o_id)
                    .with("cx_type", "VISA")
                    .with("cx_num", format!("4111-{o_id:012}"))
                    .with("cx_name", format!("CARDHOLDER {o_c_id}"))
                    .with("cx_expire", "2019-12")
                    .with("cx_xact_amt", total)
                    .with("cx_xact_date", "2017-06-01")
                    .with("cx_co_id", (o_id % 92) + 1),
            );
        }
        tables.insert("Orders".into(), orders);
        tables.insert("Order_line".into(), order_lines);
        tables.insert("CC_Xacts".into(), cc_xacts);

        // Shopping carts and lines.
        let carts: Vec<Row> = (1..=scale.shopping_carts() as i64)
            .map(|sc_id| Row::new().with("sc_id", sc_id).with("sc_time", 20170601 + sc_id))
            .collect();
        let mut cart_lines = Vec::new();
        for sc_id in 1..=scale.shopping_carts() as i64 {
            for line in 0..((sc_id % 3) + 1) {
                cart_lines.push(
                    Row::new()
                        .with("scl_sc_id", sc_id)
                        .with("scl_i_id", ((sc_id * 7 + line) % num_items) + 1)
                        .with("scl_qty", (line % 4) + 1),
                );
            }
        }
        tables.insert("Shopping_cart".into(), carts);
        tables.insert("Shopping_cart_line".into(), cart_lines);

        TpcwDataset {
            tables,
            customers: scale.customers,
        }
    }

    /// Rows of one relation.
    pub fn rows(&self, relation: &str) -> &[Row] {
        self.tables
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of generated rows.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Vec::len).sum()
    }

    /// Relation names in the dependency order they must be loaded in.
    pub fn load_order() -> [&'static str; 10] {
        [
            "Country",
            "Address",
            "Customer",
            "Author",
            "Item",
            "Orders",
            "Order_line",
            "CC_Xacts",
            "Shopping_cart",
            "Shopping_cart_line",
        ]
    }
}

/// The deterministic user name of customer `c_id` (used by Q2/Q3 parameter
/// generation).
pub fn customer_uname(c_id: i64) -> String {
    format!("UNAME{c_id:08}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_paper() {
        let scale = TpcwScale::new(100);
        assert_eq!(scale.items(), 1_000);
        assert_eq!(scale.orders(), 1_000);
        assert_eq!(scale.order_lines(), 3_000);
        let data = TpcwDataset::generate(scale);
        assert_eq!(data.rows("Customer").len(), 100);
        assert_eq!(data.rows("Item").len(), 1_000);
        assert_eq!(data.rows("Orders").len(), 1_000);
        assert_eq!(data.rows("Country").len(), 92);
        // Every customer has exactly 10 orders.
        let first_customer_orders = data
            .rows("Orders")
            .iter()
            .filter(|o| o.get("o_c_id").unwrap().as_int() == Some(1))
            .count();
        assert_eq!(first_customer_orders, 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpcwDataset::generate(TpcwScale::new(50));
        let b = TpcwDataset::generate(TpcwScale::new(50));
        assert_eq!(a.total_rows(), b.total_rows());
        assert_eq!(a.rows("Order_line"), b.rows("Order_line"));
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let data = TpcwDataset::generate(TpcwScale::new(40));
        let num_items = data.rows("Item").len() as i64;
        let num_customers = data.rows("Customer").len() as i64;
        for ol in data.rows("Order_line") {
            let i = ol.get("ol_i_id").unwrap().as_int().unwrap();
            assert!(i >= 1 && i <= num_items);
        }
        for o in data.rows("Orders") {
            let c = o.get("o_c_id").unwrap().as_int().unwrap();
            assert!(c >= 1 && c <= num_customers);
        }
        for i in data.rows("Item") {
            let a = i.get("i_a_id").unwrap().as_int().unwrap();
            assert!(a >= 1 && a <= data.rows("Author").len() as i64);
        }
    }

    #[test]
    fn load_order_covers_every_table() {
        let data = TpcwDataset::generate(TpcwScale::new(20));
        for table in TpcwDataset::load_order() {
            assert!(!data.rows(table).is_empty(), "{table} must have rows");
        }
        assert_eq!(data.tables.len(), 10);
    }
}
