//! The TPC-W micro-benchmark of paper §IX-B: view scan vs. join algorithm.
//!
//! The schema is the three-relation subset Customer → Orders → Order_line
//! with a 1:10 cardinality between consecutive relations.  The workload is
//! two foreign-key equi-joins: Q1 = Customer⋈Orders and Q2 =
//! Customer⋈Orders⋈Order_line, each evaluated both with the HBase join
//! algorithm (base tables) and as a scan of the corresponding materialized
//! view — reproducing the paper's Figure 10.

use nosql_store::{Cluster, ClusterConfig};
use query::{ColumnType, PlanCacheStats, QueryResult};
use relational::{Relation, Row, Schema, Value};
use simclock::SimDuration;
use sql::{parse_statement, Statement};
use std::time::{Duration, Instant};
use synergy::{Materialization, SynergyConfig, SynergySystem, TxnError};

/// The micro-benchmark schema (Customer, Orders, Order_line).
pub fn micro_schema() -> Schema {
    let customer = Relation::new("Customer")
        .attributes(["c_id", "c_uname", "c_fname", "c_lname", "c_discount"])
        .primary_key(["c_id"])
        .build();
    let orders = Relation::new("Orders")
        .attributes(["o_id", "o_c_id", "o_date", "o_total"])
        .primary_key(["o_id"])
        .foreign_key("o_c_id", "Customer", "c_id")
        .build();
    let order_line = Relation::new("Order_line")
        .attributes(["ol_o_id", "ol_id", "ol_i_id", "ol_qty"])
        .primary_key(["ol_o_id", "ol_id"])
        .foreign_key("ol_o_id", "Orders", "o_id")
        .build();
    Schema::new()
        .with_relation(customer)
        .with_relation(orders)
        .with_relation(order_line)
}

/// Column types for the micro-benchmark schema.
pub fn micro_types(_relation: &str, column: &str) -> Option<ColumnType> {
    match column {
        "c_id" | "o_id" | "o_c_id" | "ol_o_id" | "ol_id" | "ol_i_id" | "ol_qty" => {
            Some(ColumnType::Int)
        }
        "c_discount" | "o_total" => Some(ColumnType::Float),
        _ => Some(ColumnType::Str),
    }
}

/// The micro-benchmark workload: Q1 (two-way join) and Q2 (three-way join).
pub fn micro_queries() -> Vec<Statement> {
    vec![
        parse_statement(
            "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id",
        )
        .expect("Q1 parses"),
        parse_statement(
            "SELECT * FROM Customer AS c, Orders AS o, Order_line AS ol \
             WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id",
        )
        .expect("Q2 parses"),
    ]
}

/// The partial-materialization workload: Q1/Q2 plus keyed variants that
/// read one order's slice — Q1K (index 2) fetches a single
/// Customer⋈Orders row by `o_id`, Q2K (index 3) a single order-line group
/// by `ol_o_id`.  The keyed reads are what demand-fills a partial view one
/// key at a time (`fig_partial`).
pub fn partial_queries() -> Vec<Statement> {
    let mut queries = micro_queries();
    queries.push(
        parse_statement(
            "SELECT * FROM Customer AS c, Orders AS o \
             WHERE c.c_id = o.o_c_id AND o.o_id = ?",
        )
        .expect("Q1K parses"),
    );
    queries.push(
        parse_statement(
            "SELECT * FROM Customer AS c, Orders AS o, Order_line AS ol \
             WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id AND ol.ol_o_id = ?",
        )
        .expect("Q2K parses"),
    );
    queries
}

/// One measurement of the micro-benchmark: the same query answered through
/// the materialized view and through the join algorithm.
///
/// Each strategy is timed twice: in **simulated** milliseconds (the cost
/// model the paper's figures are built on) and in **wall-clock** time (how
/// long this process actually spent executing the query), so perf work on
/// the reproduction itself has a measured trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroMeasurement {
    /// "Q1" or "Q2".
    pub query: &'static str,
    /// Number of customers in the database.
    pub customers: u64,
    /// Simulated response time of the view scan.
    pub view_scan: SimDuration,
    /// Simulated response time of the join algorithm over base tables.
    pub join_algorithm: SimDuration,
    /// Wall-clock time of the view scan.
    pub view_scan_wall: std::time::Duration,
    /// Wall-clock time of the join algorithm.
    pub join_wall: std::time::Duration,
    /// Number of result rows (identical for both evaluation strategies).
    pub result_rows: usize,
    /// Peak rows the executor held materialized during the view scan.
    pub view_peak_rows: usize,
    /// Peak rows the executor held materialized during the join.
    pub join_peak_rows: usize,
}

impl MicroMeasurement {
    /// How many times faster the view scan is, in simulated time.
    pub fn speedup(&self) -> f64 {
        self.join_algorithm.as_nanos() as f64 / self.view_scan.as_nanos().max(1) as f64
    }

    /// How many times faster the view scan is, in wall-clock time.
    pub fn wall_speedup(&self) -> f64 {
        self.join_wall.as_nanos() as f64 / self.view_scan_wall.as_nanos().max(1) as f64
    }
}

/// A populated micro-benchmark deployment.
pub struct MicroBench {
    system: SynergySystem,
    customers: u64,
    threads: usize,
    materialized: Materialization,
}

impl MicroBench {
    /// Builds the deployment and populates it with `customers` customers,
    /// 10 orders per customer and 10 order lines per order (cardinality
    /// ratio 1:10 as in §IX-B2), then major-compacts, as the paper does.
    pub fn build(customers: u64) -> Result<MicroBench, TxnError> {
        Self::build_with_threads(customers, 1)
    }

    /// [`MicroBench::build`] with region-parallel execution at `threads`
    /// workers (the `--threads` axis of the benchmark reports; 1 = the
    /// serial pipeline, byte-identical sim figures to previous versions).
    pub fn build_with_threads(customers: u64, threads: usize) -> Result<MicroBench, TxnError> {
        Self::build_with_maintenance(customers, threads, true, 1)
    }

    /// [`MicroBench::build_with_threads`] with explicit view-maintenance
    /// configuration: `delta = false` keeps the legacy scan-based
    /// maintenance path (the `fig_writes` baseline), `write_batch > 1`
    /// enables the coalescing write buffer at that capacity.
    pub fn build_with_maintenance(
        customers: u64,
        threads: usize,
        delta: bool,
        write_batch: usize,
    ) -> Result<MicroBench, TxnError> {
        Self::build_inner(customers, threads, delta, write_batch, micro_queries(), None)
    }

    /// Builds the deployment for the partial-materialization evaluation:
    /// the workload is [`partial_queries`] (Q1/Q2 plus keyed variants) and
    /// `view_budget = Some(bytes)` enables demand-filled, memory-bounded
    /// views (`None` keeps full materialization — the `fig_partial`
    /// baseline over the same workload).
    pub fn build_partial(
        customers: u64,
        threads: usize,
        view_budget: Option<u64>,
    ) -> Result<MicroBench, TxnError> {
        Self::build_inner(customers, threads, true, 1, partial_queries(), view_budget)
    }

    fn build_inner(
        customers: u64,
        threads: usize,
        delta: bool,
        write_batch: usize,
        workload: Vec<Statement>,
        view_budget: Option<u64>,
    ) -> Result<MicroBench, TxnError> {
        let schema = micro_schema();
        let cluster = Cluster::new(ClusterConfig::default());
        let mut config = SynergyConfig::new(
            schema,
            workload,
            vec!["Customer".to_string()],
            &micro_types,
        )
        .with_threads(threads)
        .with_write_batch(write_batch);
        if !delta {
            config = config.with_scan_maintenance();
        }
        if let Some(budget) = view_budget {
            config = config.with_view_budget(budget);
        }
        let system = SynergySystem::build(cluster, config)?;

        let customer_rows: Vec<Row> = (1..=customers as i64)
            .map(|c_id| {
                Row::new()
                    .with("c_id", c_id)
                    .with("c_uname", format!("UNAME{c_id:08}"))
                    .with("c_fname", format!("First{c_id}"))
                    .with("c_lname", format!("Last{c_id}"))
                    .with("c_discount", (c_id % 50) as f64 / 100.0)
            })
            .collect();
        system.bulk_load("Customer", &customer_rows)?;

        let mut order_rows = Vec::with_capacity(customers as usize * 10);
        let mut line_rows = Vec::with_capacity(customers as usize * 100);
        let mut o_id = 0i64;
        for c_id in 1..=customers as i64 {
            for _ in 0..10 {
                o_id += 1;
                order_rows.push(
                    Row::new()
                        .with("o_id", o_id)
                        .with("o_c_id", c_id)
                        .with("o_date", format!("2017-{:02}-01", (o_id % 12) + 1))
                        .with("o_total", 100.0 + (o_id % 100) as f64),
                );
                for ol_id in 1..=10i64 {
                    line_rows.push(
                        Row::new()
                            .with("ol_o_id", o_id)
                            .with("ol_id", ol_id)
                            .with("ol_i_id", (o_id * 10 + ol_id) % 1000 + 1)
                            .with("ol_qty", (ol_id % 5) + 1),
                    );
                }
            }
        }
        system.bulk_load("Orders", &order_rows)?;
        system.bulk_load("Order_line", &line_rows)?;
        let materialized = system.materialize_views()?;
        system.cluster().major_compact_all();
        Ok(MicroBench {
            system,
            customers,
            threads,
            materialized,
        })
    }

    /// The underlying Synergy deployment (exposed for inspection).
    pub fn system(&self) -> &SynergySystem {
        &self.system
    }

    /// The deployment's region-parallel worker count (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// What the offline view-population step wrote (zeros under a view
    /// budget: partial views start empty).
    pub fn materialized(&self) -> Materialization {
        self.materialized
    }

    /// Measures one micro-benchmark query (0 = Q1, 1 = Q2) through the view
    /// and through the join algorithm.
    pub fn measure(&self, query_index: usize) -> Result<MicroMeasurement, TxnError> {
        let queries = micro_queries();
        let statement = &queries[query_index];
        let clock = self.system.cluster().clock().clone();

        // View scan: the rewritten query is a single-table scan of the view.
        let wall_start = std::time::Instant::now(); // lint-allow(determinism): wall-clock companion measurement; figures use SimClock
        let (view_result, view_scan): (Result<QueryResult, TxnError>, SimDuration) =
            clock.measure(|| self.system.execute(statement, &[]));
        let view_scan_wall = wall_start.elapsed();
        let view_result = view_result?;

        // Join algorithm: the original query against base tables only.
        let wall_start = std::time::Instant::now(); // lint-allow(determinism): wall-clock companion measurement; figures use SimClock
        let (join_result, join_algorithm): (Result<QueryResult, _>, SimDuration) =
            clock.measure(|| self.system.executor().execute(statement, &[]));
        let join_wall = wall_start.elapsed();
        let join_result = join_result?;

        assert_eq!(
            view_result.len(),
            join_result.len(),
            "view scan and join must agree on the result"
        );
        Ok(MicroMeasurement {
            query: if query_index == 0 { "Q1" } else { "Q2" },
            customers: self.customers,
            view_scan,
            join_algorithm,
            view_scan_wall,
            join_wall,
            result_rows: view_result.len(),
            view_peak_rows: view_result.peak_rows_resident,
            join_peak_rows: join_result.peak_rows_resident,
        })
    }

    /// The plan trees of one micro-benchmark query (0 = Q1, 1 = Q2)
    /// through both evaluation strategies: the baseline join algorithm
    /// (base tables, no rewrite) and the Synergy read path (where the
    /// view-rewrite planner rule appears as a `Rewrite` node).
    pub fn explain(&self, query_index: usize) -> Result<QueryExplain, TxnError> {
        let queries = micro_queries();
        let statement = &queries[query_index];
        Ok(QueryExplain {
            query: if query_index == 0 { "Q1" } else { "Q2" },
            baseline: self.system.executor().explain_statement(statement)?,
            synergy: self.system.explain(statement)?,
        })
    }

    /// Compares prepared-statement execution against the one-shot path on
    /// a point lookup (`SELECT * FROM Customer WHERE c_id = ?`), the shape
    /// where per-execution work is small enough that parse/bind/plan cost
    /// is visible: the one-shot loop runs every pipeline phase per call,
    /// the prepared loop re-executes one compiled plan with fresh
    /// parameters.  Both run through the Synergy session, so the rewrite
    /// rule is probed (and declines) identically on each one-shot call.
    ///
    /// Wall clocks only — the two paths charge identical simulated cost
    /// (pinned by the `prepared ≡ one-shot` property test in the query
    /// crate), so only real planning overhead differs.
    pub fn measure_prepared(&self, executions: u64) -> Result<PreparedComparison, TxnError> {
        const TEXT: &str = "SELECT * FROM Customer WHERE c_id = ?";
        let session = self.system.session();
        let n = self.customers.max(1) as i64;
        let params = |i: u64| vec![Value::Int((i as i64 % n) + 1)];

        // Warm both paths (interning, first-touch allocations) untimed and
        // check they agree.
        let oneshot_result = session.prepare_uncached(TEXT)?.execute(&params(0))?;
        let prepared = session.prepare(TEXT)?;
        let prepared_result = prepared.execute(&params(0))?;
        assert_eq!(
            oneshot_result, prepared_result,
            "prepared and one-shot execution must agree"
        );

        let start = Instant::now(); // lint-allow(determinism): wall-clock companion measurement; figures use SimClock
        for i in 0..executions {
            session.prepare_uncached(TEXT)?.execute(&params(i))?;
        }
        let oneshot_wall = start.elapsed();

        let start = Instant::now(); // lint-allow(determinism): wall-clock companion measurement; figures use SimClock
        for i in 0..executions {
            prepared.execute(&params(i))?;
        }
        let prepared_wall = start.elapsed();

        Ok(PreparedComparison {
            customers: self.customers,
            executions,
            result_rows: prepared_result.len(),
            oneshot_wall,
            prepared_wall,
            cache_stats: session.plan_cache_stats(),
        })
    }

    /// Measures Q1 with a `LIMIT` through the view-backed read path,
    /// recording how many store rows the scan actually touched
    /// ([`nosql_store::OpCounters::scanned_rows`] delta).  With the
    /// streaming pipeline the limit rides the cursor all the way into the
    /// region walk, so the count is O(limit) — independent of how many
    /// customers are loaded.
    pub fn measure_limit(&self, limit: usize) -> Result<LimitMeasurement, TxnError> {
        let statement = parse_statement(&format!(
            "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id LIMIT {limit}"
        ))
        .expect("limit query parses");
        let clock = self.system.cluster().clock().clone();
        let before = self.system.cluster().metrics().ops;
        let wall_start = std::time::Instant::now(); // lint-allow(determinism): wall-clock companion measurement; figures use SimClock
        let (result, view_scan): (Result<QueryResult, TxnError>, SimDuration) =
            clock.measure(|| self.system.execute(&statement, &[]));
        let view_scan_wall = wall_start.elapsed();
        let result = result?;
        let delta = self.system.cluster().metrics().ops.delta_since(&before);
        Ok(LimitMeasurement {
            customers: self.customers,
            limit,
            result_rows: result.len(),
            store_rows_scanned: delta.scanned_rows,
            peak_rows_resident: result.peak_rows_resident,
            view_scan,
            view_scan_wall,
        })
    }
}

/// The plan trees of one micro-benchmark query through both evaluation
/// strategies (see [`MicroBench::explain`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryExplain {
    /// "Q1" or "Q2".
    pub query: &'static str,
    /// Plan against base tables (the join algorithm).
    pub baseline: String,
    /// Plan through the Synergy session (view rewrite visible).
    pub synergy: String,
}

/// One prepared-vs-one-shot comparison (see [`MicroBench::measure_prepared`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedComparison {
    /// Number of customers in the database.
    pub customers: u64,
    /// Executions per timed loop.
    pub executions: u64,
    /// Result rows per execution (sanity: both paths agree).
    pub result_rows: usize,
    /// Total wall time of the one-shot loop (parse + bind + plan + execute
    /// per call).
    pub oneshot_wall: Duration,
    /// Total wall time of the prepared loop (execute only).
    pub prepared_wall: Duration,
    /// The session's cumulative plan-cache counters at measurement end.
    pub cache_stats: PlanCacheStats,
}

impl PreparedComparison {
    /// Mean one-shot microseconds per execution.
    pub fn oneshot_us_per_exec(&self) -> f64 {
        self.oneshot_wall.as_secs_f64() * 1e6 / self.executions.max(1) as f64
    }

    /// Mean prepared microseconds per execution.
    pub fn prepared_us_per_exec(&self) -> f64 {
        self.prepared_wall.as_secs_f64() * 1e6 / self.executions.max(1) as f64
    }

    /// How many times faster the prepared path is.
    pub fn speedup(&self) -> f64 {
        self.oneshot_us_per_exec() / self.prepared_us_per_exec().max(f64::EPSILON)
    }
}

/// One measurement of the LIMIT-bearing micro-query (Q1 with `LIMIT k`,
/// answered through the materialized view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitMeasurement {
    /// Number of customers in the database.
    pub customers: u64,
    /// The `k` of `LIMIT k`.
    pub limit: usize,
    /// Rows returned (min of `limit` and the view's row count).
    pub result_rows: usize,
    /// Store rows the scan touched — O(limit) under the streaming pipeline.
    pub store_rows_scanned: u64,
    /// Peak rows the executor held materialized.
    pub peak_rows_resident: usize,
    /// Simulated response time.
    pub view_scan: SimDuration,
    /// Wall-clock response time.
    pub view_scan_wall: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_query_store_rows_are_customer_count_independent() {
        let small = MicroBench::build(20).unwrap();
        let large = MicroBench::build(80).unwrap();
        let m_small = small.measure_limit(6).unwrap();
        let m_large = large.measure_limit(6).unwrap();
        assert_eq!(m_small.result_rows, 6);
        assert_eq!(m_large.result_rows, 6);
        assert_eq!(
            m_small.store_rows_scanned, m_large.store_rows_scanned,
            "LIMIT k must touch the same number of store rows at any scale"
        );
        assert_eq!(m_small.store_rows_scanned, 6, "limit is pushed into the store");
        assert!(m_small.peak_rows_resident <= 6 + nosql_store::SCAN_PAGE_ROWS);
    }

    #[test]
    fn micro_views_are_the_paper_views() {
        let bench = MicroBench::build(20).unwrap();
        let names: Vec<String> = bench
            .system()
            .selection()
            .views
            .iter()
            .map(|v| v.display_name())
            .collect();
        assert!(names.contains(&"Customer-Orders".to_string()));
        assert!(names.contains(&"Customer-Orders-Order_line".to_string()));
    }

    #[test]
    fn view_scan_beats_join_for_both_queries() {
        let bench = MicroBench::build(50).unwrap();
        let q1 = bench.measure(0).unwrap();
        let q2 = bench.measure(1).unwrap();
        assert_eq!(q1.result_rows, 500);
        assert_eq!(q2.result_rows, 5_000);
        assert!(q1.speedup() > 1.0, "Q1 speedup {}", q1.speedup());
        assert!(q2.speedup() > 1.0, "Q2 speedup {}", q2.speedup());
        // The deeper join benefits more from materialization (Fig. 10 shape).
        assert!(q2.speedup() > q1.speedup());
    }

    #[test]
    fn results_agree_between_view_and_join() {
        let bench = MicroBench::build(10).unwrap();
        let q1 = bench.measure(0).unwrap();
        assert_eq!(q1.result_rows, 100);
    }

    #[test]
    fn prepared_comparison_agrees_and_reports_cache_counters() {
        let bench = MicroBench::build(20).unwrap();
        let m = bench.measure_prepared(25).unwrap();
        assert_eq!(m.result_rows, 1, "point lookup returns one customer");
        assert_eq!(m.executions, 25);
        // The warm-up prepare compiled the point query (a miss); executing
        // the prepared handle never touches the cache again.
        assert!(m.cache_stats.misses >= 1);
        assert!(
            m.oneshot_wall > Duration::ZERO && m.prepared_wall > Duration::ZERO,
            "both loops must be timed"
        );
    }

    #[test]
    fn explain_shows_rewrite_only_on_the_synergy_path() {
        let bench = MicroBench::build(20).unwrap();
        for query_index in 0..2 {
            let e = bench.explain(query_index).unwrap();
            assert!(e.synergy.contains("Rewrite [synergy-view-rewrite]"), "{}", e.synergy);
            assert!(!e.baseline.contains("Rewrite"), "{}", e.baseline);
            assert!(e.baseline.contains("HashJoin"), "{}", e.baseline);
        }
    }

    #[test]
    fn parallel_deployment_matches_serial_and_cuts_sim_time() {
        let serial = MicroBench::build(50).unwrap();
        let parallel = MicroBench::build_with_threads(50, 4).unwrap();
        assert_eq!(parallel.threads(), 4);
        for query_index in 0..2 {
            let s = serial.measure(query_index).unwrap();
            let p = parallel.measure(query_index).unwrap();
            assert_eq!(s.result_rows, p.result_rows, "same answers at any width");
            // Region-parallel workers merge as max(worker deltas), and the
            // partitioned join probes concurrently, so parallel simulated
            // time can only improve.  At this scale the tables fit in one
            // region (the scan falls back to its serial walk), so the join
            // probe is where the strict win must appear; per-region scan
            // speedups are asserted in nosql-store's par_scan tests, which
            // control the split threshold.
            assert!(
                p.view_scan <= s.view_scan,
                "view scan: parallel {} > serial {}",
                p.view_scan,
                s.view_scan
            );
            assert!(
                p.join_algorithm < s.join_algorithm,
                "join: parallel {} !< serial {}",
                p.join_algorithm,
                s.join_algorithm
            );
        }
    }
}
