//! TPC-W benchmark infrastructure and the five evaluated systems.
//!
//! The paper evaluates Synergy with the TPC-W transactional web benchmark
//! (§IX-D): the SQL statements extracted from the 14 TPC-W servlets form the
//! workload — eleven join queries (the paper's Figure 15, here [`queries`])
//! and thirteen write statements (Figure 16, here [`writes`]) — over a
//! database whose size is controlled by the number of customers
//! (`NUM_ITEMS = 10 × NUM_CUST`, Customer:Orders cardinality 1:10).
//!
//! This crate provides:
//!
//! * [`schema`] — the TPC-W relational schema, its base-table indexes and
//!   column-type hints;
//! * [`datagen`] — a deterministic, scale-parameterised data generator;
//! * [`queries`] / [`writes`] — the join queries Q1–Q11 and write statements
//!   W1–W13 with parameter generators;
//! * [`micro`] — the §IX-B micro-benchmark (Customer/Orders/Order_line,
//!   view scan vs. join algorithm);
//! * [`systems`] — harnesses that stand up each of the five evaluated
//!   systems (VoltDB-class NewSQL, Synergy, MVCC-A, MVCC-UA, Baseline) over
//!   the same dataset and measure per-statement response times on the
//!   simulated clock.

pub mod datagen;
pub mod micro;
pub mod queries;
pub mod schema;
pub mod systems;
pub mod writes;
pub mod zipf;

pub use datagen::{TpcwDataset, TpcwScale};
pub use queries::{join_queries, JoinQuery};
pub use systems::{EvaluatedSystem, ExecOutcome, SystemKind};
pub use writes::{write_statements, WriteStatement};
