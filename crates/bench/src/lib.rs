//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§IX).
//!
//! Each `figNN_*` / `tableN_*` function runs one experiment end to end —
//! building the evaluated systems, loading the scaled TPC-W dataset, running
//! every statement the configured number of repetitions — and returns the
//! rows of the corresponding figure or table.  The `report` binary prints
//! them; the Criterion benches under `benches/` exercise the same harness.
//!
//! All response times are **simulated milliseconds** from the shared cost
//! model (see `DESIGN.md` §7); the paper's absolute numbers came from an EC2
//! cluster, so only the *shape* (orderings, approximate ratios, crossovers)
//! is expected to match.

pub mod json;

use nosql_store::{Cluster, ClusterConfig};
use simclock::{Summary, SimDuration};
use std::collections::BTreeMap;
use synergy::LockManager;
use tpcw::micro::MicroBench;
use tpcw::queries::join_queries;
use tpcw::systems::{build_system, EvaluatedSystem, SystemKind};
use tpcw::writes::write_statements;
use tpcw::{TpcwDataset, TpcwScale};

/// Default number of repetitions per measurement (the paper uses 10).
pub const DEFAULT_REPS: u64 = 10;

/// Default database scale for the TPC-W experiments (number of customers).
/// The paper loads 1 M customers on an 8-node EC2 cluster; the default here
/// keeps the full evaluation runnable in minutes on a laptop while keeping
/// the paper's ratios (items = 10×, orders = 10×, 3 lines per order).
pub const DEFAULT_CUSTOMERS: u64 = 500;

// ---------------------------------------------------------------------
// Figure 10: micro-benchmark (view scan vs join algorithm)
// ---------------------------------------------------------------------

/// One row of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// "Q1" or "Q2".
    pub query: &'static str,
    /// Number of customers.
    pub customers: u64,
    /// Mean simulated response time of the view scan (ms).
    pub view_scan_ms: Summary,
    /// Mean simulated response time of the join algorithm (ms).
    pub join_ms: Summary,
    /// Mean wall-clock time of the view scan (ms).
    pub view_scan_wall_ms: Summary,
    /// Mean wall-clock time of the join algorithm (ms).
    pub join_wall_ms: Summary,
    /// join / view-scan speedup in simulated time.
    pub speedup: f64,
    /// join / view-scan speedup in wall-clock time.
    pub wall_speedup: f64,
    /// Peak rows the executor held materialized during the view scan
    /// (max across repetitions).
    pub view_peak_rows: u64,
    /// Peak rows the executor held materialized during the join.
    pub join_peak_rows: u64,
    /// Plan-cache hits the Synergy session served while this row's view
    /// measurements repeated (first repetition compiles, the rest hit).
    pub plan_cache_hits: u64,
}

/// One row of the Figure 10 prepared-statement companion: a point lookup
/// executed through the one-shot path (all pipeline phases per call) vs a
/// prepared statement (plan compiled once, re-executed with fresh
/// parameters).  Wall-clock only — both paths charge identical simulated
/// cost.
#[derive(Debug, Clone)]
pub struct Fig10PreparedRow {
    /// Number of customers.
    pub customers: u64,
    /// Executions per timed loop.
    pub executions: u64,
    /// Mean one-shot microseconds per execution.
    pub oneshot_us_per_exec: f64,
    /// Mean prepared microseconds per execution.
    pub prepared_us_per_exec: f64,
    /// one-shot / prepared speedup.
    pub prepared_speedup: f64,
    /// Cumulative plan-cache hits of this scale's Synergy session — the
    /// whole deployment's counters, **not** a per-loop delta like
    /// [`Fig10Row::plan_cache_hits`] (the JSON field is named
    /// `session_plan_cache_hits` to keep the two distinguishable).
    pub session_plan_cache_hits: u64,
    /// Cumulative plan-cache misses (compiles) of this scale's session.
    pub session_plan_cache_misses: u64,
}

/// The full Figure 10 output: per-query view-vs-join rows plus the
/// prepared-statement companion rows.
#[derive(Debug, Clone, Default)]
pub struct Fig10Output {
    /// View scan vs join algorithm, per query per scale.
    pub rows: Vec<Fig10Row>,
    /// Prepared vs one-shot, per scale (empty when `prepared_execs` = 0).
    pub prepared: Vec<Fig10PreparedRow>,
}

/// Runs the §IX-B micro-benchmark for every scale in `customer_scales`,
/// with region-parallel execution at `threads` workers (1 = the serial
/// pipeline; sim figures at 1 thread are byte-identical to earlier report
/// versions).
pub fn fig10_micro(customer_scales: &[u64], reps: u64, threads: usize) -> Vec<Fig10Row> {
    fig10_micro_with_prepared(customer_scales, reps, threads, 0).rows
}

/// [`fig10_micro`] plus the prepared-statement companion: after each
/// scale's view/join measurements, the prepared-vs-one-shot point-lookup
/// loops run `prepared_execs` executions each on the same deployment
/// (0 = skip, keeping the companion free for callers that only want the
/// classic figure).
pub fn fig10_micro_with_prepared(
    customer_scales: &[u64],
    reps: u64,
    threads: usize,
    prepared_execs: u64,
) -> Fig10Output {
    let mut out = Fig10Output::default();
    for &customers in customer_scales {
        let bench =
            MicroBench::build_with_threads(customers, threads).expect("micro benchmark builds");
        for query_index in 0..2 {
            let mut view_samples = Vec::new();
            let mut join_samples = Vec::new();
            let mut view_wall_samples = Vec::new();
            let mut join_wall_samples = Vec::new();
            let mut view_peak_rows = 0u64;
            let mut join_peak_rows = 0u64;
            let hits_before = bench.system().plan_cache_stats().hits;
            for _ in 0..reps {
                let m = bench.measure(query_index).expect("measurement succeeds");
                view_samples.push(m.view_scan.as_millis_f64());
                join_samples.push(m.join_algorithm.as_millis_f64());
                view_wall_samples.push(m.view_scan_wall.as_secs_f64() * 1_000.0);
                join_wall_samples.push(m.join_wall.as_secs_f64() * 1_000.0);
                view_peak_rows = view_peak_rows.max(m.view_peak_rows as u64);
                join_peak_rows = join_peak_rows.max(m.join_peak_rows as u64);
            }
            let plan_cache_hits = bench.system().plan_cache_stats().hits - hits_before;
            let view = Summary::of(&view_samples);
            let join = Summary::of(&join_samples);
            let view_wall = Summary::of(&view_wall_samples);
            let join_wall = Summary::of(&join_wall_samples);
            out.rows.push(Fig10Row {
                query: if query_index == 0 { "Q1" } else { "Q2" },
                customers,
                speedup: join.mean / view.mean.max(f64::EPSILON),
                wall_speedup: join_wall.mean / view_wall.mean.max(f64::EPSILON),
                view_scan_ms: view,
                join_ms: join,
                view_scan_wall_ms: view_wall,
                join_wall_ms: join_wall,
                view_peak_rows,
                join_peak_rows,
                plan_cache_hits,
            });
        }
        if prepared_execs > 0 {
            let m = bench
                .measure_prepared(prepared_execs)
                .expect("prepared comparison succeeds");
            out.prepared.push(Fig10PreparedRow {
                customers,
                executions: m.executions,
                oneshot_us_per_exec: m.oneshot_us_per_exec(),
                prepared_us_per_exec: m.prepared_us_per_exec(),
                prepared_speedup: m.speedup(),
                session_plan_cache_hits: m.cache_stats.hits,
                session_plan_cache_misses: m.cache_stats.misses,
            });
        }
    }
    out
}

/// One row of the Figure 10 LIMIT companion: Q1 with `LIMIT k` through the
/// view-backed read path, with the store rows the scan actually touched.
#[derive(Debug, Clone)]
pub struct Fig10LimitRow {
    /// Number of customers.
    pub customers: u64,
    /// The `k` of `LIMIT k`.
    pub limit: usize,
    /// Store rows touched by the scan — O(k), customer-count independent.
    pub store_rows_scanned: u64,
    /// Peak rows the executor held materialized (max across repetitions).
    pub peak_rows_resident: u64,
    /// Mean simulated response time (ms).
    pub view_scan_ms: Summary,
    /// Mean wall-clock response time (ms).
    pub view_scan_wall_ms: Summary,
}

/// Runs the LIMIT-bearing micro-query at every scale: demonstrates that the
/// streaming pipeline makes `LIMIT k` response independent of database size
/// (store rows scanned stays at `k` while the database grows).
pub fn fig10_limit(
    customer_scales: &[u64],
    limit: usize,
    reps: u64,
    threads: usize,
) -> Vec<Fig10LimitRow> {
    let mut rows = Vec::new();
    for &customers in customer_scales {
        let bench =
            MicroBench::build_with_threads(customers, threads).expect("micro benchmark builds");
        let mut sim_samples = Vec::new();
        let mut wall_samples = Vec::new();
        let mut store_rows_scanned = 0u64;
        let mut peak_rows_resident = 0u64;
        for _ in 0..reps {
            let m = bench.measure_limit(limit).expect("limit measurement succeeds");
            sim_samples.push(m.view_scan.as_millis_f64());
            wall_samples.push(m.view_scan_wall.as_secs_f64() * 1_000.0);
            store_rows_scanned = store_rows_scanned.max(m.store_rows_scanned);
            peak_rows_resident = peak_rows_resident.max(m.peak_rows_resident as u64);
        }
        rows.push(Fig10LimitRow {
            customers,
            limit,
            store_rows_scanned,
            peak_rows_resident,
            view_scan_ms: Summary::of(&sim_samples),
            view_scan_wall_ms: Summary::of(&wall_samples),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// fig_par: region-parallel execution sweep (the --threads axis)
// ---------------------------------------------------------------------

/// One row of the region-parallel sweep: Q2 (the deepest micro join) at one
/// thread count, through both evaluation strategies.
#[derive(Debug, Clone)]
pub struct FigParRow {
    /// Worker count for this row.
    pub threads: usize,
    /// Number of customers.
    pub customers: u64,
    /// Mean simulated response time of the view scan (ms).
    pub view_scan_ms: Summary,
    /// Mean simulated response time of the join algorithm (ms).
    pub join_ms: Summary,
    /// Mean wall-clock time of the view scan (ms).
    pub view_scan_wall_ms: Summary,
    /// Mean wall-clock time of the join algorithm (ms).
    pub join_wall_ms: Summary,
    /// join / view-scan speedup in simulated time.
    pub speedup: f64,
    /// join / view-scan speedup in wall-clock time.
    pub wall_speedup: f64,
    /// View-scan sim time at 1 thread / at this thread count (≥ 1 once the
    /// table spans several regions; exactly 1 at `threads = 1`).
    pub view_sim_x_vs_serial: f64,
    /// View-scan wall time at 1 thread / at this thread count.
    pub view_wall_x_vs_serial: f64,
}

/// Sweeps the micro-benchmark's Q2 (Customer ⋈ Orders ⋈ Order_line) across
/// `threads_axis`, measuring both strategies at each width.  The first axis
/// entry is the baseline for the `*_x_vs_serial` ratios (callers pass 1
/// first).  Sim figures are deterministic at every width — per-worker clock
/// deltas merge as `max`, independent of OS scheduling.
pub fn fig_par(customers: u64, threads_axis: &[usize], reps: u64) -> Vec<FigParRow> {
    let mut rows: Vec<FigParRow> = Vec::new();
    let mut base_sim = f64::NAN;
    let mut base_wall = f64::NAN;
    for &threads in threads_axis {
        let bench =
            MicroBench::build_with_threads(customers, threads).expect("micro benchmark builds");
        let mut view_samples = Vec::new();
        let mut join_samples = Vec::new();
        let mut view_wall_samples = Vec::new();
        let mut join_wall_samples = Vec::new();
        for _ in 0..reps {
            let m = bench.measure(1).expect("Q2 measurement succeeds");
            view_samples.push(m.view_scan.as_millis_f64());
            join_samples.push(m.join_algorithm.as_millis_f64());
            view_wall_samples.push(m.view_scan_wall.as_secs_f64() * 1_000.0);
            join_wall_samples.push(m.join_wall.as_secs_f64() * 1_000.0);
        }
        let view = Summary::of(&view_samples);
        let join = Summary::of(&join_samples);
        let view_wall = Summary::of(&view_wall_samples);
        let join_wall = Summary::of(&join_wall_samples);
        if rows.is_empty() {
            base_sim = view.mean;
            base_wall = view_wall.mean;
        }
        rows.push(FigParRow {
            threads,
            customers,
            speedup: join.mean / view.mean.max(f64::EPSILON),
            wall_speedup: join_wall.mean / view_wall.mean.max(f64::EPSILON),
            view_sim_x_vs_serial: base_sim / view.mean.max(f64::EPSILON),
            view_wall_x_vs_serial: base_wall / view_wall.mean.max(f64::EPSILON),
            view_scan_ms: view,
            join_ms: join,
            view_scan_wall_ms: view_wall,
            join_wall_ms: join_wall,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// fig_writes: delta-dataflow view maintenance vs scan-based maintenance
// ---------------------------------------------------------------------

/// One maintenance-mode row of the write-heavy figure: `writes` updates of
/// Customer rows (the W13 shape) through one maintenance strategy.
#[derive(Debug, Clone)]
pub struct FigWritesModeRow {
    /// "delta" (incremental propagation through the view's plan IR) or
    /// "scan" (the legacy find-affected-rows-by-scanning path).
    pub mode: &'static str,
    /// Number of customers.
    pub customers: u64,
    /// Updates executed.
    pub writes: u64,
    /// Mean simulated milliseconds per write (base write + maintenance).
    pub sim_ms_per_write: f64,
    /// Wall-clock write throughput of the loop.
    pub wall_writes_per_sec: f64,
    /// Store rows scanned per write (`OpCounters::scanned_rows` delta) —
    /// the cost driver the delta path attacks.
    pub store_rows_scanned_per_write: f64,
    /// View rows written (rewritten/inserted/removed) per write.
    pub view_rows_touched_per_write: f64,
}

/// One burst row of the coalescing sweep: `burst` consecutive updates of
/// the *same* Customer row through a capacity-256 write batch, flushed once
/// (coalesced) vs flushed after every write (uncoalesced).
#[derive(Debug, Clone)]
pub struct FigWritesBurstRow {
    /// Updates in the burst (all to one key).
    pub burst: u64,
    /// Simulated ms of the single flush after the whole burst.
    pub coalesced_flush_sim_ms: f64,
    /// Total simulated ms of flushing after every write of the burst.
    pub uncoalesced_flush_sim_ms: f64,
    /// Buffer merges the burst produced (burst - 1 when fully coalesced).
    pub coalesced_merges: u64,
    /// Coalesced flush cost relative to the burst-1 flush — the batching
    /// guarantee is that this stays ≤ 2 regardless of burst size.
    pub ratio_vs_single: f64,
}

/// The full write-heavy figure.
#[derive(Debug, Clone, Default)]
pub struct FigWritesOutput {
    /// Delta-vs-scan comparison rows (one per maintenance mode).
    pub rows: Vec<FigWritesModeRow>,
    /// Coalescing burst sweep (delta mode, write batch capacity 256).
    pub bursts: Vec<FigWritesBurstRow>,
    /// scan / delta store-rows-scanned-per-write ratio (the figure's
    /// headline: how many fewer rows the delta path reads per write).
    pub rows_ratio: f64,
}

/// The burst sizes of the coalescing sweep.
pub const FIG_WRITES_BURSTS: [u64; 3] = [1, 16, 256];

/// Runs the write-heavy maintenance figure on the micro-benchmark schema:
/// `writes` W13-shaped Customer updates through delta-dataflow maintenance
/// and through the legacy scan path, then the single-key coalescing burst
/// sweep.  All sim figures are deterministic at `threads = 1`.
pub fn fig_writes(customers: u64, writes: u64, threads: usize) -> FigWritesOutput {
    use relational::Value;
    use sql::parse_statement;

    let update = parse_statement(
        "UPDATE Customer SET c_fname = ?, c_lname = ? WHERE c_id = ?",
    )
    .expect("fig_writes update parses");
    let params = |i: u64, c_id: i64| {
        vec![
            Value::str(format!("First{i}u")),
            Value::str(format!("Last{i}u")),
            Value::Int(c_id),
        ]
    };

    let mut out = FigWritesOutput::default();
    for (mode, delta) in [("delta", true), ("scan", false)] {
        let bench = MicroBench::build_with_maintenance(customers, threads, delta, 1)
            .expect("micro benchmark builds");
        let system = bench.system();
        let clock = system.cluster().clock().clone();
        let ops_before = system.cluster().metrics().ops;
        let touched_before = system.maintenance_stats().view_rows_touched;
        let sim_start = clock.now();
        let wall_start = std::time::Instant::now();
        for i in 0..writes {
            let c_id = (i as i64 % customers.max(1) as i64) + 1;
            system
                .execute(&update, &params(i, c_id))
                .expect("maintenance write succeeds");
        }
        let wall_secs = wall_start.elapsed().as_secs_f64();
        let sim_ms = (clock.now() - sim_start).as_millis_f64();
        let ops = system.cluster().metrics().ops.delta_since(&ops_before);
        let touched = system.maintenance_stats().view_rows_touched - touched_before;
        let per_write = writes.max(1) as f64;
        out.rows.push(FigWritesModeRow {
            mode,
            customers,
            writes,
            sim_ms_per_write: sim_ms / per_write,
            wall_writes_per_sec: per_write / wall_secs.max(f64::EPSILON),
            store_rows_scanned_per_write: ops.scanned_rows as f64 / per_write,
            view_rows_touched_per_write: touched as f64 / per_write,
        });
    }
    let scanned_of = |mode: &str| {
        out.rows
            .iter()
            .find(|r| r.mode == mode)
            .map(|r| r.store_rows_scanned_per_write)
            .unwrap_or(f64::NAN)
    };
    out.rows_ratio = scanned_of("scan") / scanned_of("delta").max(f64::EPSILON);

    // Coalescing sweep: every burst hammers one key through a large write
    // batch.  The buffer merges consecutive updates of the same base key,
    // so the deferred flush does one write's worth of view maintenance no
    // matter how long the burst was.
    let bench = MicroBench::build_with_maintenance(customers, threads, true, 256)
        .expect("buffered micro benchmark builds");
    let system = bench.system();
    let clock = system.cluster().clock().clone();
    let mut single_flush_sim = f64::NAN;
    for burst in FIG_WRITES_BURSTS {
        let merges_before = system.maintenance_stats().coalesced_merges;
        for i in 0..burst {
            system
                .execute(&update, &params(i, 1))
                .expect("buffered write succeeds");
        }
        let (flushed, flush_sim) = clock.measure(|| system.flush_maintenance());
        flushed.expect("flush succeeds");
        let coalesced_flush_sim_ms = flush_sim.as_millis_f64();
        let coalesced_merges = system.maintenance_stats().coalesced_merges - merges_before;

        let mut uncoalesced_flush_sim_ms = 0.0;
        for i in 0..burst {
            system
                .execute(&update, &params(i, 1))
                .expect("buffered write succeeds");
            let (flushed, flush_sim) = clock.measure(|| system.flush_maintenance());
            flushed.expect("flush succeeds");
            uncoalesced_flush_sim_ms += flush_sim.as_millis_f64();
        }

        if burst == FIG_WRITES_BURSTS[0] {
            single_flush_sim = coalesced_flush_sim_ms;
        }
        out.bursts.push(FigWritesBurstRow {
            burst,
            coalesced_flush_sim_ms,
            uncoalesced_flush_sim_ms,
            coalesced_merges,
            ratio_vs_single: coalesced_flush_sim_ms / single_flush_sim.max(f64::EPSILON),
        });
    }
    out
}

// ---------------------------------------------------------------------
// fig_faults: fault injection × retry policy — goodput, latency, recovery
// ---------------------------------------------------------------------

/// Injected-fault probabilities of the goodput sweep: the chance a charged
/// op draws a *failing* fault (split evenly between RPC timeouts and
/// transient server errors; slow-region spikes ride along at the same
/// rate).
pub const FIG_FAULTS_RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// Ops per cell of the fault sweep.
pub const FIG_FAULTS_OPS: u64 = 600;

/// Seed of the sweep's fault and retry RNGs — the determinism contract is
/// that the same seed and fault plan reproduce the same figures exactly.
pub const FIG_FAULTS_SEED: u64 = 0x5EED_FA17;

/// What one run of the store-level fault workload did.
#[derive(Debug, Clone)]
pub struct FaultWorkloadOutcome {
    /// Ops attempted.
    pub ops: u64,
    /// Ops that succeeded (after retries, where enabled).
    pub ok_ops: u64,
    /// Simulated time the workload loop consumed.
    pub sim_elapsed: SimDuration,
    /// 95th-percentile simulated latency of successful ops (ms).
    pub p95_sim_ms: f64,
    /// Injected-fault and retry counters of the run.
    pub stats: nosql_store::FaultStats,
    /// Replication counters of the run (all zero at the default
    /// `replication_factor` of 1).
    pub replication: nosql_store::ReplicationStats,
}

impl FaultWorkloadOutcome {
    /// Successful ops per simulated second.
    pub fn goodput_per_sim_sec(&self) -> f64 {
        self.ok_ops as f64 / self.sim_elapsed.as_millis_f64().max(f64::EPSILON) * 1_000.0
    }
}

/// Runs the deterministic store-level workload — a fixed mix of puts, gets
/// and short scans over a preloaded table — under the given fault plan and
/// retry policy.  The preload goes through `bulk_load` (charged but never
/// faulted), so every cell of the sweep starts from identical state.
pub fn run_fault_workload(
    plan: Option<nosql_store::FaultPlan>,
    retry: Option<nosql_store::RetryPolicy>,
    ops: u64,
) -> FaultWorkloadOutcome {
    // rf = 1 is the byte-identical legacy configuration, so every caller of
    // this function keeps its committed figures.
    run_fault_workload_rf(plan, retry, ops, 1)
}

/// [`run_fault_workload`] at an explicit replication factor (the fault
/// matrix's RF ≥ 2 scenarios; `rf = 1` is exactly the legacy workload).
pub fn run_fault_workload_rf(
    plan: Option<nosql_store::FaultPlan>,
    retry: Option<nosql_store::RetryPolicy>,
    ops: u64,
    rf: usize,
) -> FaultWorkloadOutcome {
    use nosql_store::ops::{Get, Put, Scan};
    use nosql_store::TableSchema;

    let cluster = Cluster::new(ClusterConfig {
        fault_plan: plan,
        retry,
        replication_factor: rf,
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .expect("workload table");
    cluster
        .bulk_load(
            "t",
            (0..128u64).map(|i| Put::new(format!("k{i:04}")).with("cf", "v", vec![b'x'; 64])),
        )
        .expect("preload");
    cluster.checkpoint();

    let clock = cluster.clock().clone();
    let start = clock.now();
    let mut ok_ops = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(ops as usize);
    for i in 0..ops {
        let key = format!("k{:04}", (i * 17) % 128);
        let op_start = clock.now();
        let outcome = match i % 4 {
            0 | 2 => cluster
                .put("t", Put::new(key).with("cf", "v", format!("v{i}").into_bytes()))
                .map(|_| ()),
            1 => cluster.get("t", Get::new(key)).map(|_| ()),
            _ => cluster
                .scan("t", Scan::range(key, format!("k{:04}", (i * 17) % 128 + 8)))
                .map(|_| ()),
        };
        if outcome.is_ok() {
            ok_ops += 1;
            latencies.push((clock.now() - op_start).as_millis_f64());
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let p95_sim_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies[(latencies.len() * 95 / 100).min(latencies.len() - 1)]
    };
    FaultWorkloadOutcome {
        ops,
        ok_ops,
        sim_elapsed: clock.now() - start,
        p95_sim_ms,
        stats: cluster.fault_stats(),
        replication: cluster.replication_stats(),
    }
}

/// One cell of the fault sweep: one fault rate through one retry policy.
#[derive(Debug, Clone)]
pub struct FigFaultsRow {
    /// "none" (fail on the first fault) or "backoff" (the default capped
    /// exponential backoff + jitter policy).
    pub retry: &'static str,
    /// Probability that a charged op draws a failing fault.
    pub fault_rate: f64,
    /// Ops attempted.
    pub ops: u64,
    /// Ops that succeeded.
    pub ok_ops: u64,
    /// Successful ops per simulated second.
    pub goodput_ops_per_sim_sec: f64,
    /// 95th-percentile simulated latency of successful ops (ms).
    pub p95_sim_ms: f64,
    /// Injected failing faults (timeouts + transients + unavailable).
    pub injected_op_faults: u64,
    /// Slow-region latency spikes (op succeeded, paid extra).
    pub slowdowns: u64,
    /// Retry attempts the policy made.
    pub retries: u64,
    /// Ops the retry policy gave up on.
    pub giveups: u64,
    /// This cell's goodput relative to the same policy's no-fault cell.
    pub goodput_vs_no_fault: f64,
}

/// The Synergy crash-recovery demonstration: a mid-transaction crash
/// (interrupted after step 5, the worst case — views updated but still
/// marked dirty) followed by `SynergySystem::recover`.
#[derive(Debug, Clone)]
pub struct FigFaultsRecovery {
    /// The 6-step update transaction was interrupted after this step.
    pub interrupted_step: u8,
    /// Reads served through the baseline plan while views were dirty.
    pub dirty_fallbacks: u64,
    /// Simulated milliseconds the full recovery took (WAL replay + lock
    /// reclamation fencing + dirty-view repair).
    pub recovery_sim_ms: f64,
    /// Synced WAL records replayed over the checkpoint baseline.
    pub replayed_entries: u64,
    /// Orphaned transaction locks reclaimed after their lease expired.
    pub locks_reclaimed: u64,
    /// Dirty view rows recomputed from surviving base rows.
    pub view_rows_rolled_forward: u64,
    /// Acked-and-synced writes missing after recovery — must be 0.
    pub lost_acked_synced_writes: u64,
    /// View rows still carrying a dirty marker after recovery — must be 0.
    pub dirty_view_rows_after_recovery: u64,
}

/// The full fault figure.
#[derive(Debug, Clone)]
pub struct FigFaultsOutput {
    /// Fault rate × retry policy sweep cells.
    pub rows: Vec<FigFaultsRow>,
    /// The mid-transaction crash-recovery demonstration.
    pub recovery: FigFaultsRecovery,
}

/// Runs the fault figure: the store-level goodput sweep across
/// [`FIG_FAULTS_RATES`] × {no-retry, backoff-retry}, then the Synergy
/// mid-transaction crash-recovery demonstration at `customers` scale.
/// Everything is seeded and single-threaded, so the whole figure is
/// deterministic — the same seed reproduces it byte-identically.
pub fn fig_faults(customers: u64, ops: u64) -> FigFaultsOutput {
    use nosql_store::{FaultPlan, RetryPolicy};

    let mut rows = Vec::new();
    for (retry_name, retry) in [
        ("none", Some(RetryPolicy::no_retries())),
        ("backoff", Some(RetryPolicy::default())),
    ] {
        let mut no_fault_goodput = f64::NAN;
        for rate in FIG_FAULTS_RATES {
            let plan = (rate > 0.0).then(|| {
                FaultPlan::new(FIG_FAULTS_SEED)
                    .with_timeouts(rate / 2.0)
                    .with_transients(rate / 2.0)
                    .with_slow_regions(rate, SimDuration::from_millis(10))
            });
            let outcome = run_fault_workload(plan, retry.clone(), ops);
            let goodput = outcome.goodput_per_sim_sec();
            if rate == 0.0 {
                no_fault_goodput = goodput;
            }
            rows.push(FigFaultsRow {
                retry: retry_name,
                fault_rate: rate,
                ops: outcome.ops,
                ok_ops: outcome.ok_ops,
                goodput_ops_per_sim_sec: goodput,
                p95_sim_ms: outcome.p95_sim_ms,
                injected_op_faults: outcome.stats.injected_op_faults(),
                slowdowns: outcome.stats.slowdowns,
                retries: outcome.stats.retries,
                giveups: outcome.stats.giveups,
                goodput_vs_no_fault: goodput / no_fault_goodput.max(f64::EPSILON),
            });
        }
    }
    FigFaultsOutput {
        rows,
        recovery: fig_faults_recovery(customers),
    }
}

/// The crash-recovery demonstration half of the figure: interrupt the
/// 6-step update transaction after step 5 (base and views updated, dirty
/// markers still set, lock still held by the dead client), serve a read
/// through graceful degradation, crash the cluster, recover, and verify
/// that no acked-synced write was lost and no view stayed dirty.
fn fig_faults_recovery(customers: u64) -> FigFaultsRecovery {
    use relational::Value;
    use sql::parse_statement;

    let bench = MicroBench::build(customers).expect("micro benchmark builds");
    let system = bench.system();
    // Bulk loads are volatile until a checkpoint (the memstore-flush
    // durability boundary); everything after it rides the synced WAL.
    system.cluster().checkpoint();

    let update = parse_statement("UPDATE Customer SET c_fname = ?, c_lname = ? WHERE c_id = ?")
        .expect("update parses");
    let probe = &tpcw::micro::micro_queries()[0];

    system.transaction_layer().inject_interrupt_after_step(5);
    system
        .execute(&update, &[Value::str("Faulted"), Value::str("Faulted"), Value::Int(1)])
        .expect_err("interrupted transaction fails");

    // Graceful degradation: the view-rewritten plan keeps hitting dirty
    // markers, so the session falls back to the baseline (view-free) plan.
    let degraded = system.execute(probe, &[]).expect("degraded read succeeds");
    let probe_len = degraded.len();
    let dirty_fallbacks = system.dirty_fallbacks();

    let counts_before: Vec<(String, u64)> = system
        .cluster()
        .list_tables()
        .into_iter()
        .map(|t| {
            let n = system.cluster().row_count(&t).unwrap_or(0);
            (t, n)
        })
        .collect();

    let clock = system.cluster().clock().clone();
    system.cluster().crash();
    let (report, recovery_sim) = clock.measure(|| system.recover());
    let report = report.expect("recovery succeeds");

    // Zero lost acked-synced writes: every table keeps its row count and
    // the interrupted update's base write (acked + synced before the
    // crash) survived replay.
    let mut lost = 0u64;
    for (table, before) in &counts_before {
        let after = system.cluster().row_count(table).unwrap_or(0);
        lost += before.saturating_sub(after);
    }
    let check = parse_statement("SELECT * FROM Customer WHERE c_id = ?").expect("check parses");
    let survived = system
        .execute(&check, &[Value::Int(1)])
        .expect("post-recovery read succeeds");
    if survived.rows.first().and_then(|r| r.get("c_fname"))
        != Some(&Value::str("Faulted"))
    {
        lost += 1;
    }

    // Zero permanently-dirty views, and the healed read path answers the
    // probe without falling back.
    let mut dirty_left = 0u64;
    for view in &system.selection().views {
        let table = view.table_name();
        for row in system
            .cluster()
            .scan(&table, nosql_store::ops::Scan::all())
            .expect("view scan succeeds")
        {
            if row.value(query::FAMILY, query::DIRTY_MARKER) == Some(b"1".as_slice()) {
                dirty_left += 1;
            }
        }
    }
    let healed = system.execute(probe, &[]).expect("healed read succeeds");
    if healed.dirty_fallbacks != 0 || healed.len() != probe_len {
        dirty_left += 1;
    }

    FigFaultsRecovery {
        interrupted_step: 5,
        dirty_fallbacks,
        recovery_sim_ms: recovery_sim.as_millis_f64(),
        replayed_entries: report.cluster.replayed_entries,
        locks_reclaimed: report.locks_reclaimed as u64,
        view_rows_rolled_forward: report.view_rows_rolled_forward as u64,
        lost_acked_synced_writes: lost,
        dirty_view_rows_after_recovery: dirty_left,
    }
}

// ---------------------------------------------------------------------
// fig_availability: replication factor × availability through crash windows
// ---------------------------------------------------------------------

/// Replication factors the availability sweep compares.  RF = 1 is the
/// legacy unreplicated deployment; its figures are byte-identical to every
/// earlier report (the sim-identity gate covers them).
pub const FIG_AVAILABILITY_RFS: [usize; 3] = [1, 2, 3];

/// Ops per replication factor of the availability sweep.
pub const FIG_AVAILABILITY_OPS: u64 = 600;

/// Region servers of the availability deployment — enough that a crash
/// takes out only a slice of the key space.
pub const FIG_AVAILABILITY_SERVERS: usize = 5;

/// Number of scheduled region-server crashes the run rides through.
pub const FIG_AVAILABILITY_CRASHES: usize = 6;

/// Mean time to repair: how long each crashed server stays down (sim ms).
pub const FIG_AVAILABILITY_MTTR_MS: u64 = 50;

/// Seed of the availability sweep's fault RNG (crash times are scheduled,
/// not drawn, but the plan carries a seed like every other).
pub const FIG_AVAILABILITY_SEED: u64 = 0xA7A1_1AB1;

/// The scheduled crash plan: one crash every 400 sim ms, victims rotating
/// round-robin over the servers, each down for the MTTR.
fn fig_availability_plan() -> (nosql_store::FaultPlan, Vec<SimDuration>) {
    let times: Vec<SimDuration> = (1..=FIG_AVAILABILITY_CRASHES)
        .map(|i| SimDuration::from_millis(400 * i as u64))
        .collect();
    let plan = nosql_store::FaultPlan::new(FIG_AVAILABILITY_SEED).with_crashes(
        times.clone(),
        SimDuration::from_millis(FIG_AVAILABILITY_MTTR_MS),
    );
    (plan, times)
}

/// One replication factor's availability measurements.
#[derive(Debug, Clone)]
pub struct FigAvailabilityRow {
    /// The configured replication factor.
    pub replication_factor: usize,
    /// Ops attempted.
    pub ops: u64,
    /// Ops that succeeded (after retries).
    pub ok_ops: u64,
    /// Ops that *started* inside a crash window (`[crash, crash + MTTR)`).
    pub window_ops: u64,
    /// In-window ops that succeeded.
    pub window_ok_ops: u64,
    /// Successful ops per simulated second, over ops started outside every
    /// crash window.
    pub steady_goodput_ops_per_sim_sec: f64,
    /// Successful ops per simulated second, over ops started inside a
    /// crash window.
    pub window_goodput_ops_per_sim_sec: f64,
    /// `window / steady` goodput — the availability headline.  ≈ 1 means
    /// crashes are invisible to clients; ≪ 1 means they stall on the MTTR.
    pub window_over_steady: f64,
    /// p95 simulated latency (ms) of successful steady-state ops.
    pub steady_p95_sim_ms: f64,
    /// p95 simulated latency (ms) of successful in-window ops.
    pub window_p95_sim_ms: f64,
    /// Acked writes whose value was missing or stale after the run settled
    /// — the durability gate (must be 0: with `wal_sync_interval = 1`
    /// every acked write is synced, and synced writes survive failovers).
    pub acked_writes_lost: u64,
    /// Region failovers performed.
    pub failovers: u64,
    /// Catch-up replays performed by rejoining victims.
    pub catchup_replays: u64,
    /// Synced WAL records shipped to followers.
    pub records_shipped: u64,
    /// Ops rejected because a region was unavailable (before retries won).
    pub unavailable_rejections: u64,
    /// Ops that exhausted their retries.
    pub giveups: u64,
    /// Simulated time the measured loop consumed (ms).
    pub sim_elapsed_ms: f64,
}

/// Output of [`fig_availability`].
#[derive(Debug, Clone)]
pub struct FigAvailabilityOutput {
    /// One row per replication factor.
    pub rows: Vec<FigAvailabilityRow>,
    /// Number of scheduled crashes each run rode through.
    pub crashes: usize,
    /// The crash MTTR (sim ms).
    pub mttr_ms: f64,
    /// Region servers of the deployment.
    pub servers: usize,
}

/// Runs the fixed availability workload — the fig_faults op mix with
/// `wal_sync_interval = 1` (every acked write synced) over 5 region
/// servers — through the scheduled crash plan at one replication factor,
/// bucketing every op by whether it started inside a crash window.
pub fn run_availability_workload(rf: usize, ops: u64) -> FigAvailabilityRow {
    use nosql_store::ops::{Get, Put, Scan};
    use nosql_store::{RetryPolicy, TableSchema};

    let (plan, crash_times) = fig_availability_plan();
    let mttr = SimDuration::from_millis(FIG_AVAILABILITY_MTTR_MS);
    let cluster = Cluster::new(ClusterConfig {
        region_servers: FIG_AVAILABILITY_SERVERS,
        wal_sync_interval: 1,
        replication_factor: rf,
        fault_plan: Some(plan),
        retry: Some(RetryPolicy::default()),
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .expect("workload table");
    cluster
        .bulk_load(
            "t",
            (0..128u64).map(|i| Put::new(format!("k{i:04}")).with("cf", "v", vec![b'x'; 64])),
        )
        .expect("preload");
    cluster.checkpoint();

    let clock = cluster.clock().clone();
    // Crash times are absolute simulated instants (durations since the
    // epoch); an op is "in window" if it starts inside any [t, t + MTTR).
    let in_window = |at_nanos: u64| {
        crash_times
            .iter()
            .any(|&t| at_nanos >= t.as_nanos() && at_nanos < (t + mttr).as_nanos())
    };

    let start = clock.now();
    let mut ok_ops = 0u64;
    let mut window_ops = 0u64;
    let mut window_ok = 0u64;
    // Latency samples and elapsed time per bucket, plus the last acked
    // value of every key written, for the post-run durability audit.
    let mut steady_lat: Vec<f64> = Vec::new();
    let mut window_lat: Vec<f64> = Vec::new();
    let mut steady_time = SimDuration::ZERO;
    let mut window_time = SimDuration::ZERO;
    let mut last_acked: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for i in 0..ops {
        let key = format!("k{:04}", (i * 17) % 128);
        let op_start = clock.now();
        let started_in_window = in_window(op_start.as_nanos());
        let value = format!("v{i}").into_bytes();
        let outcome = match i % 4 {
            0 | 2 => cluster
                .put("t", Put::new(key.clone()).with("cf", "v", value.clone()))
                .map(|_| ()),
            1 => cluster.get("t", Get::new(key.clone())).map(|_| ()),
            _ => cluster
                .scan("t", Scan::range(key.clone(), format!("k{:04}", (i * 17) % 128 + 8)))
                .map(|_| ()),
        };
        let elapsed = clock.now() - op_start;
        let ok = outcome.is_ok();
        if ok {
            ok_ops += 1;
            if matches!(i % 4, 0 | 2) {
                last_acked.insert(key, value);
            }
        }
        if started_in_window {
            window_ops += 1;
            window_time += elapsed;
            if ok {
                window_ok += 1;
                window_lat.push(elapsed.as_millis_f64());
            }
        } else {
            steady_time += elapsed;
            if ok {
                steady_lat.push(elapsed.as_millis_f64());
            }
        }
    }
    let sim_elapsed = clock.now() - start;

    // Settle: wait out the last crash window so every victim has rejoined,
    // then audit that every acked write is still readable.  (The audit's
    // gets are uncharged for the goodput figures above.)
    let last_window_end = crash_times
        .last()
        .map(|&t| t + mttr)
        .unwrap_or(SimDuration::ZERO);
    let now_nanos = clock.now().as_nanos();
    if now_nanos < last_window_end.as_nanos() {
        clock.charge(SimDuration::from_nanos(
            last_window_end.as_nanos() - now_nanos + 1,
        ));
    }
    let mut lost = 0u64;
    for (key, value) in &last_acked {
        let survived = cluster
            .get("t", Get::new(key.clone()))
            .ok()
            .flatten()
            .and_then(|row| row.value("cf", "v").map(|v| v == &value[..]))
            .unwrap_or(false);
        if !survived {
            lost += 1;
        }
    }

    let p95 = |lat: &mut Vec<f64>| -> f64 {
        lat.sort_by(|a, b| a.total_cmp(b));
        if lat.is_empty() {
            0.0
        } else {
            lat[(lat.len() * 95 / 100).min(lat.len() - 1)]
        }
    };
    let goodput = |ok: u64, time: SimDuration| -> f64 {
        ok as f64 / time.as_millis_f64().max(f64::EPSILON) * 1_000.0
    };
    let steady_goodput = goodput(ok_ops - window_ok, steady_time);
    let window_goodput = goodput(window_ok, window_time);
    let stats = cluster.fault_stats();
    let replication = cluster.replication_stats();
    FigAvailabilityRow {
        replication_factor: rf,
        ops,
        ok_ops,
        window_ops,
        window_ok_ops: window_ok,
        steady_goodput_ops_per_sim_sec: steady_goodput,
        window_goodput_ops_per_sim_sec: window_goodput,
        window_over_steady: window_goodput / steady_goodput.max(f64::EPSILON),
        steady_p95_sim_ms: p95(&mut steady_lat),
        window_p95_sim_ms: p95(&mut window_lat),
        acked_writes_lost: lost,
        failovers: replication.failovers,
        catchup_replays: replication.catchup_replays,
        records_shipped: replication.records_shipped,
        unavailable_rejections: stats.unavailable_rejections,
        giveups: stats.giveups,
        sim_elapsed_ms: sim_elapsed.as_millis_f64(),
    }
}

/// The availability figure: the same crash schedule at RF ∈ {1, 2, 3}.
/// Without replication a crash makes the victim's regions unavailable for
/// the whole MTTR; with RF ≥ 2 each crash fails over and clients ride
/// through the window at steady-state goodput, losing nothing.
pub fn fig_availability(ops: u64) -> FigAvailabilityOutput {
    FigAvailabilityOutput {
        rows: FIG_AVAILABILITY_RFS
            .iter()
            .map(|&rf| run_availability_workload(rf, ops))
            .collect(),
        crashes: FIG_AVAILABILITY_CRASHES,
        mttr_ms: FIG_AVAILABILITY_MTTR_MS as f64,
        servers: FIG_AVAILABILITY_SERVERS,
    }
}

// ---------------------------------------------------------------------
// fig_partial: partial view materialization under zipfian skew
// ---------------------------------------------------------------------

/// Seed of the fig_partial zipfian key streams (per-cell streams derive
/// from it by XORing in the skew's bit pattern, so every cell of one skew
/// draws the identical key sequence).
pub const FIG_PARTIAL_SEED: u64 = 0x5EED_2A87;

/// The skew axis: zipf exponents from mild to strongly skewed.
pub const FIG_PARTIAL_SKEWS: [f64; 3] = [0.8, 1.1, 1.4];

/// The budget axis: view-byte budgets as fractions of the full
/// materialization footprint.
pub const FIG_PARTIAL_BUDGET_FRACS: [f64; 3] = [0.05, 0.10, 0.25];

/// One fully-materialized baseline of the partial figure (one per skew —
/// the footprint is skew-independent but the measured latencies draw the
/// same key stream as that skew's partial cells).
#[derive(Debug, Clone)]
pub struct FigPartialBaseline {
    /// Zipf exponent of the key stream.
    pub zipf_s: f64,
    /// View rows `materialize_views` pre-filled.
    pub materialized_rows: u64,
    /// Estimated bytes of the pre-filled views (the budget denominator).
    pub materialized_bytes: u64,
    /// Stored `V_*` rows after the run (cluster metrics).
    pub view_store_rows: u64,
    /// Stored `V_*` bytes after the run.
    pub view_store_bytes: u64,
    /// Median simulated Q1K (keyed Customer⋈Orders read) latency (ms).
    pub q1k_p50_sim_ms: f64,
    /// 95th-percentile simulated Q1K latency (ms).
    pub q1k_p95_sim_ms: f64,
    /// 95th-percentile simulated Q1K latency over hot keys only (ms).
    pub q1k_hot_p95_sim_ms: f64,
    /// Median simulated Q2K (keyed 3-way join read) latency (ms).
    pub q2k_p50_sim_ms: f64,
    /// 95th-percentile simulated Q2K latency (ms).
    pub q2k_p95_sim_ms: f64,
}

/// One budget × skew cell of the partial figure.
#[derive(Debug, Clone)]
pub struct FigPartialRow {
    /// Zipf exponent of the key stream.
    pub zipf_s: f64,
    /// "5%", "10%", "25%" or "unbounded".
    pub budget_label: String,
    /// The absolute byte budget handed to `with_view_budget`.
    pub budget_bytes: u64,
    /// Reads (measured window) that found every view key resident.
    pub hits: u64,
    /// Reads that missed at least one view key.
    pub misses: u64,
    /// hits / (hits + misses) over the measured window.
    pub hit_rate: f64,
    /// Upqueries issued in the measured window.
    pub upqueries: u64,
    /// Keys evicted by the CLOCK sweep in the measured window.
    pub evicted_keys: u64,
    /// Maintenance deltas annihilated (non-resident key) in the window.
    pub annihilated: u64,
    /// Deltas queued mid-fill and replayed after install, in the window.
    pub deferred: u64,
    /// View-routed reads that bypassed the partial path, in the window.
    pub bypasses: u64,
    /// Resident view keys at the end of the run.
    pub resident_keys: u64,
    /// Resident view rows at the end of the run.
    pub resident_rows: u64,
    /// Resident view bytes at the end of the run (residency estimate).
    pub resident_bytes: u64,
    /// Stored `V_*` rows after the run (cluster metrics).
    pub view_store_rows: u64,
    /// Stored `V_*` bytes after the run.
    pub view_store_bytes: u64,
    /// Full-materialization stored rows / this cell's (≥ 1 = reduction).
    pub rows_x_vs_full: f64,
    /// Full-materialization stored bytes / this cell's.
    pub bytes_x_vs_full: f64,
    /// Median simulated Q1K latency (ms), misses included.
    pub q1k_p50_sim_ms: f64,
    /// 95th-percentile simulated Q1K latency (ms), misses included.
    pub q1k_p95_sim_ms: f64,
    /// 95th-percentile simulated Q1K latency over hot keys only (ms).
    pub q1k_hot_p95_sim_ms: f64,
    /// Median simulated Q2K latency (ms).
    pub q2k_p50_sim_ms: f64,
    /// 95th-percentile simulated Q2K latency (ms).
    pub q2k_p95_sim_ms: f64,
    /// Hot-key Q1K p95, this cell / the same-skew full baseline.
    pub q1k_hot_p95_x_vs_full: f64,
    /// Per-view `(table, resident rows, resident bytes)` from the store.
    pub view_tables: Vec<(String, u64, u64)>,
}

/// The full partial-materialization figure.
#[derive(Debug, Clone)]
pub struct FigPartialOutput {
    /// Number of customers (order keys = 10×).
    pub customers: u64,
    /// The zipf key universe (number of orders).
    pub order_keys: u64,
    /// Uncounted warm-up operations per cell.
    pub warmup_ops: u64,
    /// Measured operations per cell.
    pub measured_ops: u64,
    /// Ranks `1..=hot_rank` count as hot keys for the hot-p95 series.
    pub hot_rank: u64,
    /// Full-materialization baselines, one per skew.
    pub baselines: Vec<FigPartialBaseline>,
    /// Budget × skew cells (plus one unbounded-budget cell).
    pub rows: Vec<FigPartialRow>,
}

/// Simulated latencies of one measured window, split by query and by key
/// temperature.
#[derive(Debug, Default)]
struct PartialLatencies {
    q1k: Vec<f64>,
    q1k_hot: Vec<f64>,
    q2k: Vec<f64>,
}

/// Sorts in place and returns the `pct`-th percentile (0.0 when empty).
fn percentile(samples: &mut [f64], pct: usize) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[(samples.len() * pct / 100).min(samples.len() - 1)]
}

/// Runs `ops` operations of the fig_partial mix — 90% Q1K, 2% Q2K, 8%
/// order-total updates, every key drawn from `zipf` — recording simulated
/// latencies of the reads when `record` is given (warm-up passes None).
fn run_partial_mix(
    bench: &MicroBench,
    zipf: &mut tpcw::zipf::Zipf,
    hot_rank: u64,
    ops: u64,
    mut record: Option<&mut PartialLatencies>,
) {
    use relational::Value;
    use sql::parse_statement;

    let queries = tpcw::micro::partial_queries();
    let (q1k, q2k) = (&queries[2], &queries[3]);
    let update = parse_statement("UPDATE Orders SET o_total = ? WHERE o_id = ?")
        .expect("fig_partial update parses");
    let system = bench.system();
    let clock = system.cluster().clock().clone();
    for i in 0..ops {
        let rank = zipf.sample();
        let key = Value::Int(rank as i64);
        match i % 50 {
            7 | 19 | 32 | 44 => {
                system
                    .execute(&update, &[Value::Float(100.0 + (i % 97) as f64), key])
                    .expect("fig_partial write succeeds");
            }
            3 => {
                let (result, sim) =
                    clock.measure(|| system.execute(q2k, std::slice::from_ref(&key)));
                result.expect("fig_partial Q2K succeeds");
                if let Some(latencies) = record.as_deref_mut() {
                    latencies.q2k.push(sim.as_millis_f64());
                }
            }
            _ => {
                let (result, sim) =
                    clock.measure(|| system.execute(q1k, std::slice::from_ref(&key)));
                result.expect("fig_partial Q1K succeeds");
                if let Some(latencies) = record.as_deref_mut() {
                    latencies.q1k.push(sim.as_millis_f64());
                    if rank <= hot_rank {
                        latencies.q1k_hot.push(sim.as_millis_f64());
                    }
                }
            }
        }
    }
}

/// Sums the stored `V_*` tables of a deployment: `(rows, bytes, per-table)`.
/// Compacts first so the figures count live rows, not the tombstones and
/// overwritten versions that demand-fill/evict churn leaves behind.
fn view_store_footprint(bench: &MicroBench) -> (u64, u64, Vec<(String, u64, u64)>) {
    bench.system().cluster().major_compact_all();
    let metrics = bench.system().cluster().metrics();
    let tables = metrics.resident_where(|name| name.starts_with("V_"));
    let rows = tables.iter().map(|(_, r, _)| r).sum();
    let bytes = tables.iter().map(|(_, _, b)| b).sum();
    (rows, bytes, tables)
}

/// Runs the partial-materialization figure at the default skew and budget
/// axes (plus one unbounded-budget cell at s = 1.1): per cell, a partial
/// deployment is demand-filled by the zipfian mix, warmed to its residency
/// steady state, then measured for hit rate, footprint and latency against
/// the same-skew fully-materialized baseline.  Single-threaded and seeded,
/// so every sim number is deterministic.
pub fn fig_partial(customers: u64) -> FigPartialOutput {
    fig_partial_with(customers, &FIG_PARTIAL_SKEWS, &FIG_PARTIAL_BUDGET_FRACS)
}

/// [`fig_partial`] with explicit skew and budget axes (tests shrink both).
pub fn fig_partial_with(customers: u64, skews: &[f64], fracs: &[f64]) -> FigPartialOutput {
    let order_keys = customers * 10;
    let warmup_ops = order_keys * 4;
    let measured_ops = order_keys * 2;
    let hot_rank = (order_keys / 100).max(8);
    let seed_of = |s: f64| FIG_PARTIAL_SEED ^ s.to_bits();

    let mut baselines = Vec::new();
    for &s in skews {
        let bench = MicroBench::build_partial(customers, 1, None)
            .expect("full-materialization baseline builds");
        let mut zipf = tpcw::zipf::Zipf::new(order_keys, s, seed_of(s));
        run_partial_mix(&bench, &mut zipf, hot_rank, warmup_ops, None);
        let mut latencies = PartialLatencies::default();
        run_partial_mix(&bench, &mut zipf, hot_rank, measured_ops, Some(&mut latencies));
        let (view_store_rows, view_store_bytes, _) = view_store_footprint(&bench);
        baselines.push(FigPartialBaseline {
            zipf_s: s,
            materialized_rows: bench.materialized().rows as u64,
            materialized_bytes: bench.materialized().bytes,
            view_store_rows,
            view_store_bytes,
            q1k_p50_sim_ms: percentile(&mut latencies.q1k, 50),
            q1k_p95_sim_ms: percentile(&mut latencies.q1k, 95),
            q1k_hot_p95_sim_ms: percentile(&mut latencies.q1k_hot, 95),
            q2k_p50_sim_ms: percentile(&mut latencies.q2k, 50),
            q2k_p95_sim_ms: percentile(&mut latencies.q2k, 95),
        });
    }
    let full_bytes = baselines[0].materialized_bytes;

    let mut cells: Vec<(f64, u64, String)> = Vec::new();
    for &s in skews {
        for &frac in fracs {
            let budget = (full_bytes as f64 * frac) as u64;
            cells.push((s, budget, format!("{:.0}%", frac * 100.0)));
        }
    }
    // The unbounded cell: no evictions, residency bounded only by demand —
    // the demand-fill half of the design isolated from the budget half.
    let unbounded_s = if skews.contains(&1.1) { 1.1 } else { skews[0] };
    cells.push((unbounded_s, u64::MAX, "unbounded".to_string()));

    let mut rows = Vec::new();
    for (s, budget_bytes, budget_label) in cells {
        let baseline = baselines
            .iter()
            .find(|b| b.zipf_s == s)
            .expect("every cell skew has a baseline");
        let bench = MicroBench::build_partial(customers, 1, Some(budget_bytes))
            .expect("partial deployment builds");
        let mut zipf = tpcw::zipf::Zipf::new(order_keys, s, seed_of(s));
        run_partial_mix(&bench, &mut zipf, hot_rank, warmup_ops, None);
        let before = bench
            .system()
            .residency_snapshot()
            .expect("partial deployment has a residency map");
        let mut latencies = PartialLatencies::default();
        run_partial_mix(&bench, &mut zipf, hot_rank, measured_ops, Some(&mut latencies));
        let after = bench.system().residency_snapshot().expect("residency map");

        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        let (view_store_rows, view_store_bytes, view_tables) = view_store_footprint(&bench);
        let q1k_hot_p95_sim_ms = percentile(&mut latencies.q1k_hot, 95);
        rows.push(FigPartialRow {
            zipf_s: s,
            budget_label,
            budget_bytes,
            hits,
            misses,
            hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
            upqueries: after.upqueries - before.upqueries,
            evicted_keys: after.evicted_keys - before.evicted_keys,
            annihilated: after.annihilated - before.annihilated,
            deferred: after.deferred - before.deferred,
            bypasses: after.bypasses - before.bypasses,
            resident_keys: after.resident_keys,
            resident_rows: after.resident_rows,
            resident_bytes: after.resident_bytes,
            view_store_rows,
            view_store_bytes,
            rows_x_vs_full: baseline.view_store_rows as f64
                / (view_store_rows as f64).max(1.0),
            bytes_x_vs_full: baseline.view_store_bytes as f64
                / (view_store_bytes as f64).max(1.0),
            q1k_p50_sim_ms: percentile(&mut latencies.q1k, 50),
            q1k_p95_sim_ms: percentile(&mut latencies.q1k, 95),
            q1k_hot_p95_sim_ms,
            q2k_p50_sim_ms: percentile(&mut latencies.q2k, 50),
            q2k_p95_sim_ms: percentile(&mut latencies.q2k, 95),
            q1k_hot_p95_x_vs_full: q1k_hot_p95_sim_ms
                / baseline.q1k_hot_p95_sim_ms.max(f64::EPSILON),
            view_tables,
        });
    }

    FigPartialOutput {
        customers,
        order_keys,
        warmup_ops,
        measured_ops,
        hot_rank,
        baselines,
        rows,
    }
}

// ---------------------------------------------------------------------
// Figure 11: two-phase row-locking overhead
// ---------------------------------------------------------------------

/// One row of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Number of locks acquired and released.
    pub locks: u64,
    /// Mean simulated overhead (ms).
    pub overhead_ms: Summary,
    /// Mean wall-clock overhead (ms).
    pub overhead_wall_ms: Summary,
}

/// Measures the overhead of acquiring and releasing `n` row locks through a
/// lock table in the NoSQL store (the paper's §IX-C experiment).
pub fn fig11_lock_overhead(lock_counts: &[u64], reps: u64) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for &locks in lock_counts {
        let mut samples = Vec::new();
        let mut wall_samples = Vec::new();
        for _ in 0..reps {
            let cluster = Cluster::new(ClusterConfig::default());
            let manager = LockManager::new(cluster.clone());
            manager.create_lock_table("bench").expect("lock table");
            for key in 0..locks {
                manager.ensure_entry("bench", &key.to_string()).expect("entry");
            }
            let clock = cluster.clock().clone();
            let start = clock.now();
            let wall_start = std::time::Instant::now();
            let mut guards = Vec::with_capacity(locks as usize);
            for key in 0..locks {
                guards.push(
                    manager
                        .acquire("bench", &key.to_string())
                        .expect("acquire")
                        .expect("uncontended"),
                );
            }
            for guard in guards {
                manager.release(guard).expect("release");
            }
            samples.push((clock.now() - start).as_millis_f64());
            wall_samples.push(wall_start.elapsed().as_secs_f64() * 1_000.0);
        }
        rows.push(Fig11Row {
            locks,
            overhead_ms: Summary::of(&samples),
            overhead_wall_ms: Summary::of(&wall_samples),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figures 12 & 14 and Table II: the five-system TPC-W comparison
// ---------------------------------------------------------------------

/// Response time of one statement on one system (or `None` if unsupported).
pub type CellMs = Option<Summary>;

/// The full per-statement, per-system measurement matrix.
#[derive(Debug, Clone, Default)]
pub struct ComparisonMatrix {
    /// Statement ids in presentation order (Q1..Q11 then W1..W13).
    pub statements: Vec<String>,
    /// System names in presentation order.
    pub systems: Vec<String>,
    /// `cells[statement][system]` → summary of simulated ms.
    pub cells: BTreeMap<String, BTreeMap<String, CellMs>>,
    /// Total stored bytes per system (for Table III).
    pub database_bytes: BTreeMap<String, u64>,
}

impl ComparisonMatrix {
    /// Mean response time of a statement on a system, if supported.
    pub fn mean_ms(&self, statement: &str, system: &str) -> Option<f64> {
        self.cells
            .get(statement)?
            .get(system)?
            .as_ref()
            .map(|s| s.mean)
    }

    /// Ratio of the two systems' average response times over the statements
    /// matching `filter` that both systems support (the paper's "on average
    /// X times faster" numbers compare the per-system averages).
    pub fn mean_ratio(
        &self,
        numerator: &str,
        denominator: &str,
        filter: impl Fn(&str) -> bool,
    ) -> Option<f64> {
        let mut numerator_total = 0.0;
        let mut denominator_total = 0.0;
        let mut count = 0;
        for statement in self.statements.iter().filter(|s| filter(s)) {
            if let (Some(n), Some(d)) = (
                self.mean_ms(statement, numerator),
                self.mean_ms(statement, denominator),
            ) {
                numerator_total += n;
                denominator_total += d;
                count += 1;
            }
        }
        if count == 0 || denominator_total <= 0.0 {
            None
        } else {
            Some(numerator_total / denominator_total)
        }
    }

    /// Sum of the mean response times of every statement on one system
    /// (Table II), `None` if the system does not support every statement.
    pub fn total_ms(&self, system: &str) -> Option<f64> {
        let mut total = 0.0;
        for statement in &self.statements {
            total += self.mean_ms(statement, system)?;
        }
        Some(total)
    }
}

/// Runs every join query (Fig. 12) and every write statement (Fig. 14) the
/// requested number of repetitions on all five systems and returns the
/// measurement matrix used by Figures 12/14 and Tables II/III.
pub fn comparison_matrix(customers: u64, reps: u64) -> ComparisonMatrix {
    let scale = TpcwScale::new(customers);
    let dataset = TpcwDataset::generate(scale);
    let systems: Vec<Box<dyn EvaluatedSystem>> = SystemKind::all()
        .iter()
        .map(|kind| build_system(*kind, &dataset))
        .collect();

    let mut matrix = ComparisonMatrix {
        systems: systems.iter().map(|s| s.name().to_string()).collect(),
        ..ComparisonMatrix::default()
    };
    for system in &systems {
        matrix
            .database_bytes
            .insert(system.name().to_string(), system.database_size_bytes());
    }

    // Join queries Q1..Q11.
    for query in join_queries() {
        let statement = query.statement();
        matrix.statements.push(query.id.to_string());
        let row = matrix.cells.entry(query.id.to_string()).or_default();
        for system in &systems {
            let mut samples = Vec::new();
            let mut unsupported = false;
            for rep in 0..reps {
                match system.execute(&statement, &query.params(scale, rep)) {
                    Ok(outcome) => samples.push(outcome.elapsed.as_millis_f64()),
                    Err(_) => {
                        unsupported = true;
                        break;
                    }
                }
            }
            let cell = if unsupported { None } else { Some(Summary::of(&samples)) };
            row.insert(system.name().to_string(), cell);
        }
    }

    // Write statements W1..W13.
    for write in write_statements() {
        let statement = write.statement();
        matrix.statements.push(write.id.to_string());
        let row = matrix.cells.entry(write.id.to_string()).or_default();
        for system in &systems {
            let mut samples = Vec::new();
            let mut unsupported = false;
            for rep in 0..reps {
                match system.execute(&statement, &write.params(scale, rep)) {
                    Ok(outcome) => samples.push(outcome.elapsed.as_millis_f64()),
                    Err(_) => {
                        unsupported = true;
                        break;
                    }
                }
            }
            let cell = if unsupported { None } else { Some(Summary::of(&samples)) };
            row.insert(system.name().to_string(), cell);
        }
    }
    matrix
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Result of the lock-granularity ablation: the same write executed under a
/// single hierarchical lock vs. per-row locks on every touched row.
#[derive(Debug, Clone)]
pub struct LockAblationRow {
    /// Number of rows the transaction touches.
    pub rows_touched: u64,
    /// Simulated time with one hierarchical lock (ms).
    pub single_lock_ms: f64,
    /// Simulated time when locking every touched row individually (ms).
    pub per_row_locks_ms: f64,
}

/// Quantifies the benefit of the single hierarchical lock (paper §III-2):
/// lock acquisition/release cost as a function of how many rows a write
/// transaction would otherwise have to lock.
pub fn ablation_lock_granularity(rows_touched: &[u64]) -> Vec<LockAblationRow> {
    let mut out = Vec::new();
    for &rows in rows_touched {
        let cluster = Cluster::new(ClusterConfig::default());
        let manager = LockManager::new(cluster.clone());
        manager.create_lock_table("ablation").expect("lock table");
        for key in 0..rows.max(1) {
            manager.ensure_entry("ablation", &key.to_string()).expect("entry");
        }
        let clock = cluster.clock().clone();

        // Single hierarchical lock.
        let start = clock.now();
        let guard = manager.acquire("ablation", "0").expect("acquire").expect("free");
        manager.release(guard).expect("release");
        let single_lock_ms = (clock.now() - start).as_millis_f64();

        // One lock per touched row.
        let start = clock.now();
        let mut guards = Vec::new();
        for key in 0..rows {
            guards.push(
                manager
                    .acquire("ablation", &key.to_string())
                    .expect("acquire")
                    .expect("free"),
            );
        }
        for guard in guards {
            manager.release(guard).expect("release");
        }
        let per_row_locks_ms = (clock.now() - start).as_millis_f64();

        out.push(LockAblationRow {
            rows_touched: rows,
            single_lock_ms,
            per_row_locks_ms,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Table III and qualitative tables
// ---------------------------------------------------------------------

/// One row of Table III (database sizes).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// System name.
    pub system: String,
    /// Total stored bytes.
    pub bytes: u64,
    /// Size relative to the Baseline system.
    pub relative_to_baseline: f64,
}

/// Derives Table III from a comparison matrix.
pub fn table3_sizes(matrix: &ComparisonMatrix) -> Vec<Table3Row> {
    let baseline = *matrix.database_bytes.get("Baseline").unwrap_or(&1).max(&1) as f64;
    let order = ["VoltDB", "Synergy", "MVCC-A", "MVCC-UA", "Baseline"];
    order
        .iter()
        .filter_map(|name| {
            matrix.database_bytes.get(*name).map(|bytes| Table3Row {
                system: (*name).to_string(),
                bytes: *bytes,
                relative_to_baseline: *bytes as f64 / baseline,
            })
        })
        .collect()
}

/// The qualitative comparison of Table I, as (system, scalability,
/// expressiveness, transaction support, disk utilization) tuples.
pub fn table1_qualitative() -> Vec<[&'static str; 5]> {
    vec![
        [
            "NoSQL (HBase)",
            "Linear scale out",
            "SQL",
            "ACID, snapshot isolation (MVCC)",
            "Higher than NewSQL",
        ],
        [
            "NewSQL (VoltDB)",
            "Linear scale out",
            "SQL with joins limited to partition keys",
            "ACID, serializable isolation",
            "Lowest",
        ],
        [
            "Synergy",
            "Linear scale out",
            "SQL with views limited to key/foreign-key joins",
            "ACID, read-committed isolation",
            "Highest",
        ],
    ]
}

/// The mechanism matrix of Figure 13, as (system, view mechanism,
/// concurrency mechanism) tuples.
pub fn fig13_mechanisms() -> Vec<[String; 3]> {
    SystemKind::all()
        .iter()
        .map(|kind| {
            [
                kind.name().to_string(),
                kind.view_mechanism().to_string(),
                kind.concurrency_mechanism().to_string(),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------

/// Formats a simulated millisecond summary as `mean ± stderr`.
pub fn fmt_ms(cell: &CellMs) -> String {
    match cell {
        Some(summary) => format!("{:10.1} ±{:6.1}", summary.mean, summary.std_error),
        None => format!("{:>10} {:>7}", "X", ""),
    }
}

/// Formats bytes as mebibytes with two decimals.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Converts a simulated duration to fractional milliseconds (helper for
/// benches).
pub fn to_ms(duration: SimDuration) -> f64 {
    duration.as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_availability_replication_rides_through_crash_windows() {
        let output = fig_availability(FIG_AVAILABILITY_OPS);
        assert_eq!(output.rows.len(), FIG_AVAILABILITY_RFS.len());
        for row in &output.rows {
            assert!(
                row.window_ops > 0,
                "rf={}: the run never entered a crash window: {row:?}",
                row.replication_factor
            );
            assert_eq!(
                row.acked_writes_lost, 0,
                "rf={}: acked writes lost",
                row.replication_factor
            );
            if row.replication_factor == 1 {
                assert_eq!(row.failovers, 0);
                assert_eq!(row.records_shipped, 0);
            } else {
                assert!(row.failovers >= 1, "rf={}: {row:?}", row.replication_factor);
                assert!(
                    row.window_over_steady >= 0.7,
                    "rf={}: in-window goodput collapsed: {row:?}",
                    row.replication_factor
                );
            }
        }
        // The headline contrast: replication keeps in-window goodput near
        // steady state, while RF = 1 clients stall on the MTTR.
        let rf1 = &output.rows[0];
        let rf2 = &output.rows[1];
        assert!(
            rf1.window_over_steady < rf2.window_over_steady,
            "rf1 {rf1:?} vs rf2 {rf2:?}"
        );
        // Determinism: the sweep reproduces itself exactly.
        let again = run_availability_workload(2, FIG_AVAILABILITY_OPS);
        assert_eq!(again.ok_ops, rf2.ok_ops);
        assert_eq!(again.sim_elapsed_ms, rf2.sim_elapsed_ms);
        assert_eq!(again.records_shipped, rf2.records_shipped);
    }

    #[test]
    fn fig11_overhead_grows_with_lock_count() {
        let rows = fig11_lock_overhead(&[10, 100], 2);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].overhead_ms.mean > rows[0].overhead_ms.mean * 5.0);
    }

    #[test]
    fn ablation_shows_single_lock_is_cheaper() {
        let rows = ablation_lock_granularity(&[50]);
        assert!(rows[0].per_row_locks_ms > rows[0].single_lock_ms * 10.0);
    }

    #[test]
    fn fig10_speedup_is_positive_and_grows_with_join_depth() {
        let rows = fig10_micro(&[30], 2, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.speedup > 1.0));
        assert!(rows.iter().all(|r| r.view_peak_rows > 0 && r.join_peak_rows > 0));
    }

    #[test]
    fn fig10_limit_scan_rows_are_scale_independent() {
        let rows = fig10_limit(&[25, 100], 8, 1, 1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.store_rows_scanned == 8));
        assert_eq!(rows[0].store_rows_scanned, rows[1].store_rows_scanned);
    }

    #[test]
    fn fig_par_sweep_is_deterministic_in_sim_and_beats_serial_joins() {
        let rows = fig_par(30, &[1, 2, 4], 2);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].view_sim_x_vs_serial - 1.0).abs() < 1e-9);
        // The partitioned join's sim time improves with workers even when
        // the tables are single-region at this tiny scale.
        assert!(rows[2].join_ms.mean < rows[0].join_ms.mean);
        // Re-running the sweep reproduces the sim figures exactly.
        let again = fig_par(30, &[1, 2, 4], 2);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.view_scan_ms.mean.to_bits(), b.view_scan_ms.mean.to_bits());
            assert_eq!(a.join_ms.mean.to_bits(), b.join_ms.mean.to_bits());
        }
    }

    #[test]
    fn fig_writes_delta_beats_scan_and_coalescing_bounds_bursts() {
        let out = fig_writes(40, 8, 1);
        assert_eq!(out.rows.len(), 2);
        // The delta path must read at least an order of magnitude fewer
        // store rows per write than scan-based maintenance.
        assert!(out.rows_ratio >= 10.0, "rows_ratio = {}", out.rows_ratio);
        let delta = out.rows.iter().find(|r| r.mode == "delta").unwrap();
        let scan = out.rows.iter().find(|r| r.mode == "scan").unwrap();
        assert!(delta.view_rows_touched_per_write > 0.0);
        assert_eq!(
            delta.view_rows_touched_per_write,
            scan.view_rows_touched_per_write,
            "both maintenance strategies rewrite the same view rows"
        );
        // Coalescing must bound the single-key burst: the flush after 256
        // buffered writes costs no more than twice the flush after one.
        let b256 = out.bursts.iter().find(|b| b.burst == 256).unwrap();
        assert!(b256.ratio_vs_single <= 2.0, "ratio = {}", b256.ratio_vs_single);
        assert_eq!(b256.coalesced_merges, 255, "every repeat write merges");
        assert!(b256.coalesced_flush_sim_ms * 10.0 < b256.uncoalesced_flush_sim_ms);
        // Sim figures are deterministic, and the delta path's cost per
        // write is database-size independent (it probes maintenance
        // indexes instead of scanning views), so at 4x the customers the
        // delta cost is unchanged while the scan path has grown past it.
        let larger = fig_writes(160, 4, 1);
        let delta_l = larger.rows.iter().find(|r| r.mode == "delta").unwrap();
        let scan_l = larger.rows.iter().find(|r| r.mode == "scan").unwrap();
        // (not bit-identical: scanned key bytes grow a little with id
        // widths, but the cost must stay flat to well under a percent)
        assert!(
            (delta_l.sim_ms_per_write - delta.sim_ms_per_write).abs()
                < delta.sim_ms_per_write * 1e-3,
            "delta maintenance cost must not grow with database size: {} vs {}",
            delta.sim_ms_per_write,
            delta_l.sim_ms_per_write
        );
        assert!(
            delta_l.sim_ms_per_write < scan_l.sim_ms_per_write,
            "delta {} !< scan {}",
            delta_l.sim_ms_per_write,
            scan_l.sim_ms_per_write
        );
    }

    #[test]
    fn fig_faults_retries_preserve_goodput_and_recovery_loses_nothing() {
        let out = fig_faults(30, 200);
        assert_eq!(out.rows.len(), FIG_FAULTS_RATES.len() * 2);
        let cell = |retry: &str, rate: f64| {
            out.rows
                .iter()
                .find(|r| r.retry == retry && r.fault_rate == rate)
                .unwrap()
                .clone()
        };
        // Faults actually fire at the 1% point, and retries absorb them:
        // goodput stays within 10% of no-fault while no op is given up on.
        let faulted = cell("backoff", 0.01);
        assert!(faulted.injected_op_faults > 0);
        assert_eq!(faulted.giveups, 0);
        assert_eq!(faulted.ok_ops, faulted.ops);
        assert!(
            faulted.goodput_vs_no_fault > 0.9,
            "1% faults cost more than 10% goodput: {}",
            faulted.goodput_vs_no_fault
        );
        // Without retries the same fault rate loses ops outright.
        let unprotected = cell("none", 0.05);
        assert!(unprotected.giveups > 0);
        assert!(unprotected.ok_ops < unprotected.ops);
        // The crash-recovery demonstration: degradation served the read,
        // recovery lost nothing and left no view dirty.
        assert!(out.recovery.dirty_fallbacks >= 1);
        assert!(out.recovery.locks_reclaimed >= 1);
        assert!(out.recovery.view_rows_rolled_forward > 0);
        assert_eq!(out.recovery.lost_acked_synced_writes, 0);
        assert_eq!(out.recovery.dirty_view_rows_after_recovery, 0);
        assert!(out.recovery.recovery_sim_ms > 0.0);
        // Determinism: the same seed reproduces the sweep byte-for-byte.
        let again = fig_faults(30, 200);
        for (a, b) in out.rows.iter().zip(&again.rows) {
            assert_eq!(
                a.goodput_ops_per_sim_sec.to_bits(),
                b.goodput_ops_per_sim_sec.to_bits()
            );
            assert_eq!(a.p95_sim_ms.to_bits(), b.p95_sim_ms.to_bits());
        }
    }

    #[test]
    fn fig_partial_bounds_footprint_and_stays_deterministic() {
        let out = fig_partial_with(20, &[1.2], &[0.10]);
        assert_eq!(out.baselines.len(), 1);
        assert_eq!(out.rows.len(), 2, "one budget cell plus the unbounded cell");
        let full = &out.baselines[0];
        assert!(full.view_store_rows > 0 && full.view_store_bytes > 0);

        let cell = out.rows.iter().find(|r| r.budget_label == "10%").unwrap();
        // The budget binds: the stored view slice is a fraction of full
        // materialization, demand-filled by upqueries and kept under the
        // budget by eviction.
        assert!(cell.upqueries > 0);
        assert!(cell.evicted_keys > 0, "a 10% budget must evict under zipf");
        assert!(cell.bytes_x_vs_full > 2.0, "bytes_x = {}", cell.bytes_x_vs_full);
        assert!(cell.hit_rate > 0.5, "hit rate = {}", cell.hit_rate);
        assert!(!cell.view_tables.is_empty());
        // Writes to evicted keys are annihilated rather than maintained.
        assert!(cell.annihilated > 0);

        // The unbounded cell never evicts and serves the steady state
        // entirely from residency.
        let unbounded = out.rows.iter().find(|r| r.budget_label == "unbounded").unwrap();
        assert_eq!(unbounded.evicted_keys, 0);
        assert!(unbounded.hit_rate >= cell.hit_rate);
        assert!(unbounded.view_store_bytes <= full.view_store_bytes);

        // Same seed, same figures — bit-for-bit.
        let again = fig_partial_with(20, &[1.2], &[0.10]);
        for (a, b) in out.rows.iter().zip(&again.rows) {
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.resident_bytes, b.resident_bytes);
            assert_eq!(a.q1k_p95_sim_ms.to_bits(), b.q1k_p95_sim_ms.to_bits());
            assert_eq!(a.q2k_p50_sim_ms.to_bits(), b.q2k_p50_sim_ms.to_bits());
        }
    }

    #[test]
    fn qualitative_tables_have_expected_shape() {
        assert_eq!(table1_qualitative().len(), 3);
        assert_eq!(fig13_mechanisms().len(), 5);
    }
}
