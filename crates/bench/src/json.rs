//! Minimal JSON encoder/decoder for `BENCH_report.json`.
//!
//! The workspace builds offline (no `serde_json`), so the report binary
//! renders its machine-readable output through this tiny value tree and the
//! `bench_diff` binary reads committed reports back through [`Json::parse`].
//! Only what the bench report needs is implemented: objects, arrays,
//! strings, numbers, booleans and null, with standard string escaping.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so byte counts render exactly).
    Int(i64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, accepting both `Int` and `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parses a JSON document (strict enough for reports this module wrote).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected input {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xc0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>().map(Json::Num).map_err(|e| e.to_string())
        } else {
            text.parse::<i64>().map(Json::Int).map_err(|e| e.to_string())
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::str("fig10")),
            ("wall_ms", Json::Num(1.5)),
            ("count", Json::Int(3)),
            ("rows", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"fig10\""));
        assert!(text.contains("\"wall_ms\": 1.5"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Arr(Vec::new()).render(), "[]");
        assert_eq!(Json::Obj(Vec::new()).render(), "{}");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("name", Json::str("fig10 \"quoted\"\n")),
            ("wall_ms", Json::Num(1.5)),
            ("count", Json::Int(-3)),
            (
                "rows",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Obj(Vec::new())]),
            ),
        ]);
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("wall_ms").and_then(Json::as_f64), Some(1.5));
        assert_eq!(parsed.get("count").and_then(Json::as_f64), Some(-3.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
