//! Minimal JSON encoder for `BENCH_report.json`.
//!
//! The workspace builds offline (no `serde_json`), so the report binary
//! renders its machine-readable output through this tiny value tree.  Only
//! what the bench report needs is implemented: objects, arrays, strings,
//! numbers, booleans and null, with standard string escaping.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so byte counts render exactly).
    Int(i64),
    /// A floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("name", Json::str("fig10")),
            ("wall_ms", Json::Num(1.5)),
            ("count", Json::Int(3)),
            ("rows", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"fig10\""));
        assert!(text.contains("\"wall_ms\": 1.5"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.starts_with('{') && text.ends_with('}'));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Arr(Vec::new()).render(), "[]");
        assert_eq!(Json::Obj(Vec::new()).render(), "{}");
    }
}
