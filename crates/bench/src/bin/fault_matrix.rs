//! `fault_matrix` — the CI fault-injection smoke matrix.
//!
//! ```text
//! cargo run --release -p bench --bin fault_matrix
//! ```
//!
//! Runs the deterministic store-level fault workload across 3 seeds × 5
//! scenarios (no faults, crash-heavy at RF ∈ {1, 2, 3}, timeout-heavy)
//! with the default backoff retry policy, and exits non-zero when any cell
//! violates its invariants:
//!
//! - every scenario's goodput is positive and the workload terminates;
//! - with no faults, every op succeeds and nothing is injected;
//! - crash-heavy cells actually fire server crashes, timeout-heavy cells
//!   actually inject timeouts — a silently disarmed fault plan is itself a
//!   failure;
//! - the RF ≥ 2 crash-heavy cells actually fail regions over (and RF = 1
//!   never does);
//! - retries absorb the faults: at most 2% of ops may be given up on in
//!   the faulted scenarios;
//! - per-server fault attribution always sums to the cluster-wide
//!   counters;
//! - every cell is reproducible: re-running it with the same seed yields
//!   bit-identical goodput (the determinism contract).

use bench::{run_fault_workload_rf, FaultWorkloadOutcome, FIG_FAULTS_OPS};
use nosql_store::{FaultPlan, RetryPolicy};
use simclock::SimDuration;

struct Scenario {
    name: &'static str,
    plan: fn(u64) -> Option<FaultPlan>,
    /// Replication factor of the cell's cluster (1 = legacy unreplicated).
    rf: usize,
}

/// Region-server crashes every ~400 sim ms through the workload window,
/// 50 ms MTTR, plus a trickle of transient errors.
fn crash_heavy(seed: u64) -> Option<FaultPlan> {
    Some(
        FaultPlan::new(seed)
            .with_transients(0.005)
            .with_crashes(
                (1..=6).map(|i| SimDuration::from_millis(400 * i)).collect(),
                SimDuration::from_millis(50),
            ),
    )
}

const SCENARIOS: [Scenario; 5] = [
    Scenario {
        name: "no-faults",
        plan: |_seed| None,
        rf: 1,
    },
    Scenario {
        name: "crash-heavy",
        plan: crash_heavy,
        rf: 1,
    },
    Scenario {
        name: "crash-rf2",
        plan: crash_heavy,
        rf: 2,
    },
    Scenario {
        name: "crash-rf3",
        plan: crash_heavy,
        rf: 3,
    },
    Scenario {
        name: "timeout-heavy",
        plan: |seed| {
            Some(
                FaultPlan::new(seed)
                    .with_timeouts(0.05)
                    .with_slow_regions(0.05, SimDuration::from_millis(10)),
            )
        },
        rf: 1,
    },
];

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B0, 0xC0FFEE];

fn main() {
    let mut failures: Vec<String> = Vec::new();
    println!(
        "{:<14} {:>10} {:>3} {:>6} {:>6} {:>14} {:>10} {:>9} {:>8} {:>8} {:>9}",
        "scenario", "seed", "rf", "ops", "ok", "goodput/sim-s", "p95 sim ms", "injected", "retries", "giveups", "failovers"
    );
    for scenario in &SCENARIOS {
        for seed in SEEDS {
            let retry = Some(RetryPolicy::default());
            let run =
                run_fault_workload_rf((scenario.plan)(seed), retry.clone(), FIG_FAULTS_OPS, scenario.rf);
            println!(
                "{:<14} {:>#10x} {:>3} {:>6} {:>6} {:>14.1} {:>10.2} {:>9} {:>8} {:>8} {:>9}",
                scenario.name,
                seed,
                scenario.rf,
                run.ops,
                run.ok_ops,
                run.goodput_per_sim_sec(),
                run.p95_sim_ms,
                run.stats.injected_op_faults(),
                run.stats.retries,
                run.stats.giveups,
                run.replication.failovers
            );
            check(scenario, seed, &run, &mut failures);
            let again =
                run_fault_workload_rf((scenario.plan)(seed), retry, FIG_FAULTS_OPS, scenario.rf);
            if again.goodput_per_sim_sec().to_bits() != run.goodput_per_sim_sec().to_bits() {
                failures.push(format!(
                    "{} seed {seed:#x}: goodput not reproducible ({} vs {})",
                    scenario.name,
                    run.goodput_per_sim_sec(),
                    again.goodput_per_sim_sec()
                ));
            }
        }
    }
    if failures.is_empty() {
        println!("fault matrix clean: all scenarios within gates, all cells reproducible.");
    } else {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}

fn check(scenario: &Scenario, seed: u64, run: &FaultWorkloadOutcome, failures: &mut Vec<String>) {
    let name = scenario.name;
    let cell = format!("{name} seed {seed:#x}");
    if run.goodput_per_sim_sec() <= 0.0 {
        failures.push(format!("{cell}: goodput not positive"));
    }
    match name {
        "no-faults" => {
            if run.ok_ops != run.ops || run.stats.injected_op_faults() != 0 {
                failures.push(format!("{cell}: faults fired with no plan configured"));
            }
        }
        "crash-heavy" | "crash-rf2" | "crash-rf3" => {
            if run.stats.server_crashes == 0 {
                failures.push(format!("{cell}: no server crash fired"));
            }
            if scenario.rf >= 2 && run.replication.failovers == 0 {
                failures.push(format!("{cell}: rf {} but no failover fired", scenario.rf));
            }
            if scenario.rf == 1 && run.replication.failovers != 0 {
                failures.push(format!("{cell}: failover fired with replication off"));
            }
        }
        "timeout-heavy" => {
            if run.stats.timeouts == 0 {
                failures.push(format!("{cell}: no timeout injected"));
            }
        }
        _ => unreachable!(),
    }
    // Per-server attribution must account for every cluster-wide count.
    let sums = run.stats.per_server.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, s| {
        (
            acc.0 + s.timeouts,
            acc.1 + s.transient_errors,
            acc.2 + s.slowdowns,
            acc.3 + s.unavailable_rejections,
        )
    });
    if sums
        != (
            run.stats.timeouts,
            run.stats.transient_errors,
            run.stats.slowdowns,
            run.stats.unavailable_rejections,
        )
    {
        failures.push(format!("{cell}: per-server fault columns do not sum to the globals"));
    }
    if name != "no-faults" {
        // Retries must absorb the injected faults: ≤ 2% of ops given up.
        if run.stats.giveups * 50 > run.ops {
            failures.push(format!(
                "{cell}: retries absorbed too little ({} giveups of {} ops)",
                run.stats.giveups, run.ops
            ));
        }
    }
}
