//! `report` — regenerates every table and figure of the paper's evaluation
//! and prints them in the same layout.
//!
//! ```text
//! cargo run --release -p bench --bin report -- all
//! cargo run --release -p bench --bin report -- fig12 --customers 500 --reps 10
//! ```
//!
//! Available artifacts: `fig10`, `fig11`, `fig12`, `fig13`, `fig14`,
//! `table1`, `table2`, `table3`, `ablation`, `all`.

use bench::{
    ablation_lock_granularity, comparison_matrix, fig10_micro, fig11_lock_overhead,
    fig13_mechanisms, fmt_mib, fmt_ms, table1_qualitative, table3_sizes, ComparisonMatrix,
    DEFAULT_CUSTOMERS, DEFAULT_REPS,
};

struct Options {
    artifact: String,
    customers: u64,
    reps: u64,
}

fn parse_args() -> Options {
    let mut options = Options {
        artifact: "all".to_string(),
        customers: DEFAULT_CUSTOMERS,
        reps: DEFAULT_REPS,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--customers" => {
                i += 1;
                options.customers = args[i].parse().expect("--customers takes a number");
            }
            "--reps" => {
                i += 1;
                options.reps = args[i].parse().expect("--reps takes a number");
            }
            other if !other.starts_with("--") => options.artifact = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    options
}

fn main() {
    let options = parse_args();
    let artifact = options.artifact.as_str();
    println!("== Synergy reproduction report ==");
    println!(
        "scale: {} customers ({} items, {} orders), {} repetitions per measurement",
        options.customers,
        options.customers * 10,
        options.customers * 10,
        options.reps
    );
    println!("all response times are simulated milliseconds (see DESIGN.md §7)\n");

    let needs_matrix = matches!(artifact, "fig12" | "fig14" | "table2" | "table3" | "all");
    let matrix = needs_matrix.then(|| {
        println!("building the five evaluated systems and loading the dataset ...\n");
        comparison_matrix(options.customers, options.reps)
    });

    if matches!(artifact, "table1" | "all") {
        print_table1();
    }
    if matches!(artifact, "fig10" | "all") {
        print_fig10(options.reps, options.customers);
    }
    if matches!(artifact, "fig11" | "all") {
        print_fig11(options.reps);
    }
    if matches!(artifact, "fig13" | "all") {
        print_fig13();
    }
    if let Some(matrix) = &matrix {
        if matches!(artifact, "fig12" | "all") {
            print_fig12(matrix);
        }
        if matches!(artifact, "fig14" | "all") {
            print_fig14(matrix);
        }
        if matches!(artifact, "table2" | "all") {
            print_table2(matrix);
        }
        if matches!(artifact, "table3" | "all") {
            print_table3(matrix);
        }
    }
    if matches!(artifact, "ablation" | "all") {
        print_ablation();
    }
}

fn print_table1() {
    println!("--- Table I: qualitative comparison ---");
    println!(
        "{:<16} {:<18} {:<48} {:<36} Disk utilization",
        "System", "Scalability", "Query expressiveness", "Transaction support"
    );
    for row in table1_qualitative() {
        println!("{:<16} {:<18} {:<48} {:<36} {}", row[0], row[1], row[2], row[3], row[4]);
    }
    println!();
}

fn print_fig10(reps: u64, customers: u64) {
    println!("--- Figure 10: micro-benchmark, view scan vs join algorithm ---");
    // The paper scales the micro-benchmark 500 → 5k → 50k customers (×10
    // steps); the same growth sweep is kept here, anchored at a
    // laptop-friendly base scale.
    let base = (customers / 4).clamp(25, 250);
    let scales = [base, base * 4, base * 16];
    let rows = fig10_micro(&scales, reps);
    println!(
        "{:<6} {:>10} {:>20} {:>20} {:>10}",
        "query", "customers", "view scan (ms)", "join algo (ms)", "speedup"
    );
    for row in rows {
        println!(
            "{:<6} {:>10} {:>20} {:>20} {:>9.1}x",
            row.query,
            row.customers,
            format!("{:.1} ±{:.1}", row.view_scan_ms.mean, row.view_scan_ms.std_error),
            format!("{:.1} ±{:.1}", row.join_ms.mean, row.join_ms.std_error),
            row.speedup
        );
    }
    println!("(paper: view scan 6x / 11.7x faster than the join at 50k customers)\n");
}

fn print_fig11(reps: u64) {
    println!("--- Figure 11: two-phase row locking overhead ---");
    let rows = fig11_lock_overhead(&[10, 100, 1000], reps);
    println!("{:>12} {:>20}", "locks", "overhead (ms)");
    for row in rows {
        println!(
            "{:>12} {:>20}",
            row.locks,
            format!("{:.1} ±{:.1}", row.overhead_ms.mean, row.overhead_ms.std_error)
        );
    }
    println!("(paper: 342 / 571 / 2182 ms for 10 / 100 / 1000 locks)\n");
}

fn print_fig12(matrix: &ComparisonMatrix) {
    println!("--- Figure 12: TPC-W join query response times ---");
    print_matrix(matrix, |id| id.starts_with('Q'));
    for other in ["MVCC-UA", "MVCC-A", "Baseline"] {
        if let Some(ratio) = matrix.mean_ratio(other, "Synergy", |s| s.starts_with('Q')) {
            println!("  joins: {other} / Synergy mean ratio = {ratio:.1}x (paper: 19.5x / 6.2x / 28.2x)");
        }
    }
    if let Some(ratio) = matrix.mean_ratio("Synergy", "VoltDB", |s| s.starts_with('Q')) {
        println!("  joins: Synergy / VoltDB mean ratio = {ratio:.1}x (paper: 11x, supported queries only)");
    }
    println!();
}

fn print_fig14(matrix: &ComparisonMatrix) {
    println!("--- Figure 14: TPC-W write statement response times ---");
    print_matrix(matrix, |id| id.starts_with('W'));
    for other in ["MVCC-UA", "MVCC-A", "Baseline"] {
        if let Some(ratio) = matrix.mean_ratio(other, "Synergy", |s| s.starts_with('W')) {
            println!("  writes: {other} / Synergy mean ratio = {ratio:.1}x (paper: 9x / 8.6x / 8.6x)");
        }
    }
    if let Some(ratio) = matrix.mean_ratio("Synergy", "VoltDB", |s| s.starts_with('W')) {
        println!("  writes: Synergy / VoltDB mean ratio = {ratio:.1}x (paper: 9.4x)");
    }
    println!();
}

fn print_matrix(matrix: &ComparisonMatrix, filter: impl Fn(&str) -> bool) {
    print!("{:<6}", "");
    for system in &matrix.systems {
        print!(" {:>18}", system);
    }
    println!();
    for statement in matrix.statements.iter().filter(|s| filter(s)) {
        print!("{:<6}", statement);
        for system in &matrix.systems {
            let cell = matrix
                .cells
                .get(statement)
                .and_then(|row| row.get(system))
                .cloned()
                .unwrap_or(None);
            print!(" {:>18}", fmt_ms(&cell));
        }
        println!();
    }
    println!("  (X = statement not supported by that system)");
}

fn print_table2(matrix: &ComparisonMatrix) {
    println!("--- Table II: sum of response times of all TPC-W statements ---");
    println!("{:<10} {:>18}", "system", "total (sim seconds)");
    for system in ["Synergy", "MVCC-A", "MVCC-UA", "Baseline"] {
        match matrix.total_ms(system) {
            Some(total) => println!("{:<10} {:>18.2}", system, total / 1_000.0),
            None => println!("{:<10} {:>18}", system, "n/a"),
        }
    }
    println!("(paper: Synergy 33.7 s, MVCC-A 77.4 s, MVCC-UA 132.4 s, Baseline 173.4 s; VoltDB excluded)\n");
}

fn print_table3(matrix: &ComparisonMatrix) {
    println!("--- Table III: database sizes ---");
    println!("{:<10} {:>14} {:>22}", "system", "size", "relative to Baseline");
    for row in table3_sizes(matrix) {
        println!(
            "{:<10} {:>14} {:>21.2}x",
            row.system,
            fmt_mib(row.bytes),
            row.relative_to_baseline
        );
    }
    println!("(paper @1M customers: VoltDB 31.8, Synergy 92, MVCC-A 91.8, MVCC-UA 45.7, Baseline 43.8 GB)\n");
}

fn print_fig13() {
    println!("--- Figure 13: mechanisms per evaluated system ---");
    println!("{:<10} {:<34} concurrency control", "system", "view selection");
    for row in fig13_mechanisms() {
        println!("{:<10} {:<34} {}", row[0], row[1], row[2]);
    }
    println!();
}

fn print_ablation() {
    println!("--- Ablation: single hierarchical lock vs per-row locks ---");
    let rows = ablation_lock_granularity(&[1, 10, 100, 1000]);
    println!(
        "{:>12} {:>22} {:>22}",
        "rows touched", "single lock (ms)", "per-row locks (ms)"
    );
    for row in rows {
        println!(
            "{:>12} {:>22.1} {:>22.1}",
            row.rows_touched, row.single_lock_ms, row.per_row_locks_ms
        );
    }
    println!();
}
