//! `report` — regenerates every table and figure of the paper's evaluation
//! and prints them in the same layout.
//!
//! ```text
//! cargo run --release -p bench --bin report -- all
//! cargo run --release -p bench --bin report -- fig12 --customers 500 --reps 10
//! cargo run --release -p bench --bin report -- all --json
//! ```
//!
//! Available artifacts: `fig10`, `fig_par`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `fig_writes`, `fig_faults`, `fig_availability`, `fig_partial`,
//! `table1`, `table2`,
//! `table3`, `ablation`, `all`.
//!
//! `--threads N` runs the fig10 measurements with N region-parallel workers
//! (`fig_par` always sweeps its own 1/2/4/8 axis); `--out PATH` redirects
//! the `--json` report; `--explain` additionally dumps the Q1/Q2 plan
//! trees, baseline vs view-rewritten, showing the Synergy rewrite rule
//! firing inside the planner.
//!
//! With `--json`, the run additionally writes `BENCH_report.json` containing,
//! per figure, both the **simulated** milliseconds of the cost model (the
//! paper's metric) and the **wall-clock** milliseconds this process spent
//! producing the figure (the reproduction's own perf trajectory).

use bench::json::Json;
use bench::{
    ablation_lock_granularity, comparison_matrix, fig10_limit, fig10_micro_with_prepared,
    fig11_lock_overhead, fig13_mechanisms, fig_availability, fig_faults, fig_par, fig_partial,
    fig_writes,
    fmt_mib, fmt_ms, table1_qualitative, table3_sizes, ComparisonMatrix, Fig10LimitRow,
    Fig10PreparedRow, Fig10Row, Fig11Row, FigAvailabilityOutput, FigFaultsOutput, FigParRow,
    FigPartialOutput, FigWritesOutput, LockAblationRow, DEFAULT_CUSTOMERS, DEFAULT_REPS,
    FIG_AVAILABILITY_OPS, FIG_FAULTS_OPS,
};
use std::time::Instant;
use tpcw::micro::MicroBench;

/// The `k` of the Figure 10 LIMIT companion query.
const FIG10_LIMIT: usize = 50;

/// Executions per timed loop of the fig10 prepared-statement companion.
const FIG10_PREPARED_EXECS: u64 = 500;

/// The thread counts the fig_par sweep measures.
const FIG_PAR_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Updates per maintenance mode in the fig_writes comparison.
const FIG_WRITES_COUNT: u64 = 20;

struct Options {
    artifact: String,
    customers: u64,
    reps: u64,
    /// Region-parallel worker count for the fig10 measurements (fig_par
    /// sweeps its own axis regardless).
    threads: usize,
    json: bool,
    /// Dump the Q1/Q2 plan trees (baseline vs view-rewritten).
    explain: bool,
    out: String,
}

fn parse_args() -> Options {
    let mut options = Options {
        artifact: "all".to_string(),
        customers: DEFAULT_CUSTOMERS,
        reps: DEFAULT_REPS,
        threads: 1,
        json: false,
        explain: false,
        out: "BENCH_report.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--customers" => {
                i += 1;
                options.customers = args[i].parse().expect("--customers takes a number");
            }
            "--reps" => {
                i += 1;
                options.reps = args[i].parse().expect("--reps takes a number");
            }
            "--threads" => {
                i += 1;
                options.threads = args[i].parse().expect("--threads takes a number");
                options.threads = options.threads.max(1);
            }
            "--out" => {
                i += 1;
                options.out = args[i].clone();
            }
            "--json" => options.json = true,
            "--explain" => options.explain = true,
            other if !other.starts_with("--") => options.artifact = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    options
}

/// The customer scales of the Figure 10 sweep (the paper scales ×10 per
/// step; the sweep here is ×4 anchored at a laptop-friendly base).
fn fig10_scales(customers: u64) -> [u64; 3] {
    let base = (customers / 4).clamp(25, 250);
    [base, base * 4, base * 16]
}

fn main() {
    let options = parse_args();
    let artifact = options.artifact.as_str();
    println!("== Synergy reproduction report ==");
    println!(
        "scale: {} customers ({} items, {} orders), {} repetitions per measurement, {} thread(s)",
        options.customers,
        options.customers * 10,
        options.customers * 10,
        options.reps,
        options.threads
    );
    println!("all response times are simulated milliseconds (see DESIGN.md §7)\n");

    // `figures` collects the per-figure JSON fragments in run order.
    let mut figures: Vec<(String, Json)> = Vec::new();

    let needs_matrix = matches!(artifact, "fig12" | "fig14" | "table2" | "table3" | "all");
    let matrix = needs_matrix.then(|| {
        println!("building the five evaluated systems and loading the dataset ...\n");
        let start = Instant::now();
        let matrix = comparison_matrix(options.customers, options.reps);
        (matrix, wall_ms(start))
    });

    if options.explain {
        // Plan trees for the micro queries at the smallest fig10 scale:
        // the plan shape is scale-independent, so the cheapest deployment
        // suffices to show the view-rewrite rule firing.
        let customers = fig10_scales(options.customers)[0];
        let explain_bench = MicroBench::build_with_threads(customers, options.threads)
            .expect("micro benchmark builds");
        let explains: Vec<tpcw::micro::QueryExplain> = (0..2)
            .map(|i| explain_bench.explain(i).expect("plans render"))
            .collect();
        print_explain(&explains);
        figures.push(("explain".into(), explain_json(&explains)));
    }
    if matches!(artifact, "table1" | "all") {
        print_table1();
    }
    if matches!(artifact, "fig10" | "all") {
        let start = Instant::now();
        let output = fig10_micro_with_prepared(
            &fig10_scales(options.customers),
            options.reps,
            options.threads,
            FIG10_PREPARED_EXECS,
        );
        let rows = output.rows;
        let elapsed = wall_ms(start);
        print_fig10(&rows);
        print_fig10_prepared(&output.prepared);
        // The LIMIT companion is timed separately so `fig10.wall_ms` stays
        // comparable across report versions.
        let limit_start = Instant::now();
        let limit_rows = fig10_limit(
            &fig10_scales(options.customers),
            FIG10_LIMIT,
            options.reps,
            options.threads,
        );
        let limit_elapsed = wall_ms(limit_start);
        print_fig10_limit(&limit_rows);
        figures.push((
            "fig10".into(),
            fig10_json(&rows, elapsed, &limit_rows, limit_elapsed, &output.prepared),
        ));
    }
    if matches!(artifact, "fig_par" | "all") {
        // The sweep runs at the largest fig10 scale, where the view spans
        // several regions and region-parallelism has shards to use.
        let customers = fig10_scales(options.customers)[2];
        let start = Instant::now();
        let rows = fig_par(customers, &FIG_PAR_THREADS, options.reps);
        let elapsed = wall_ms(start);
        print_fig_par(&rows);
        figures.push(("fig_par".into(), fig_par_json(&rows, elapsed)));
    }
    if matches!(artifact, "fig11" | "all") {
        let start = Instant::now();
        let rows = fig11_lock_overhead(&[10, 100, 1000], options.reps);
        let elapsed = wall_ms(start);
        print_fig11(&rows);
        figures.push(("fig11".into(), fig11_json(&rows, elapsed)));
    }
    if matches!(artifact, "fig13" | "all") {
        print_fig13();
    }
    if let Some((matrix, matrix_wall_ms)) = &matrix {
        // The matrix is built once and shared by fig12/fig14/table2/table3;
        // its wall time is reported once under its own key so per-figure
        // numbers are not cross-contaminated.
        figures.push((
            "comparison_matrix".into(),
            Json::obj([("wall_ms", Json::Num(*matrix_wall_ms))]),
        ));
        if matches!(artifact, "fig12" | "all") {
            print_fig12(matrix);
            figures.push(("fig12".into(), matrix_json(matrix, 'Q')));
        }
        if matches!(artifact, "fig14" | "all") {
            print_fig14(matrix);
            figures.push(("fig14".into(), matrix_json(matrix, 'W')));
        }
        if matches!(artifact, "table2" | "all") {
            print_table2(matrix);
            figures.push(("table2".into(), table2_json(matrix)));
        }
        if matches!(artifact, "table3" | "all") {
            print_table3(matrix);
            figures.push(("table3".into(), table3_json(matrix)));
        }
    }
    if matches!(artifact, "fig_writes" | "all") {
        let start = Instant::now();
        let output = fig_writes(options.customers, FIG_WRITES_COUNT, options.threads);
        let elapsed = wall_ms(start);
        print_fig_writes(&output);
        figures.push(("fig_writes".into(), fig_writes_json(&output, elapsed)));
    }
    if matches!(artifact, "fig_faults" | "all") {
        // The recovery demonstration runs at the smallest fig10 scale —
        // recovery semantics are scale-independent, so the cheapest
        // deployment suffices; the goodput sweep has its own fixed size.
        let customers = fig10_scales(options.customers)[0];
        let start = Instant::now();
        let output = fig_faults(customers, FIG_FAULTS_OPS);
        let elapsed = wall_ms(start);
        print_fig_faults(&output);
        figures.push(("fig_faults".into(), fig_faults_json(&output, elapsed)));
    }
    if matches!(artifact, "fig_availability" | "all") {
        let start = Instant::now();
        let output = fig_availability(FIG_AVAILABILITY_OPS);
        let elapsed = wall_ms(start);
        print_fig_availability(&output);
        figures.push((
            "fig_availability".into(),
            fig_availability_json(&output, elapsed),
        ));
    }
    if matches!(artifact, "fig_partial" | "all") {
        let start = Instant::now();
        let output = fig_partial(options.customers);
        let elapsed = wall_ms(start);
        print_fig_partial(&output);
        figures.push(("fig_partial".into(), fig_partial_json(&output, elapsed)));
    }
    if matches!(artifact, "ablation" | "all") {
        let start = Instant::now();
        let rows = ablation_lock_granularity(&[1, 10, 100, 1000]);
        let elapsed = wall_ms(start);
        print_ablation(&rows);
        figures.push(("ablation".into(), ablation_json(&rows, elapsed)));
    }

    if options.json {
        // Schema 2: adds the top-level `threads` field (the fig10 worker
        // count) so `bench_diff` can insist on like-for-like comparisons.
        let doc = Json::obj([
            ("schema_version", Json::Int(2)),
            ("artifact", Json::str(artifact)),
            ("customers", Json::Int(options.customers as i64)),
            ("reps", Json::Int(options.reps as i64)),
            ("threads", Json::Int(options.threads as i64)),
            ("figures", Json::Obj(figures)),
        ]);
        let path = options.out.as_str();
        std::fs::write(path, doc.render() + "\n")
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}

fn wall_ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

// ----------------------------------------------------------------------
// JSON fragments
// ----------------------------------------------------------------------

fn fig10_json(
    rows: &[Fig10Row],
    elapsed_ms: f64,
    limit_rows: &[Fig10LimitRow],
    limit_elapsed_ms: f64,
    prepared_rows: &[Fig10PreparedRow],
) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("query", Json::str(r.query)),
                            ("customers", Json::Int(r.customers as i64)),
                            ("view_sim_ms", Json::Num(r.view_scan_ms.mean)),
                            ("join_sim_ms", Json::Num(r.join_ms.mean)),
                            ("view_wall_ms", Json::Num(r.view_scan_wall_ms.mean)),
                            ("join_wall_ms", Json::Num(r.join_wall_ms.mean)),
                            ("sim_speedup", Json::Num(r.speedup)),
                            ("wall_speedup", Json::Num(r.wall_speedup)),
                            ("view_peak_rows_resident", Json::Int(r.view_peak_rows as i64)),
                            ("join_peak_rows_resident", Json::Int(r.join_peak_rows as i64)),
                            ("plan_cache_hits", Json::Int(r.plan_cache_hits as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "prepared_rows",
            Json::Arr(
                prepared_rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("customers", Json::Int(r.customers as i64)),
                            ("executions", Json::Int(r.executions as i64)),
                            ("oneshot_us_per_exec", Json::Num(r.oneshot_us_per_exec)),
                            ("prepared_us_per_exec", Json::Num(r.prepared_us_per_exec)),
                            ("prepared_speedup", Json::Num(r.prepared_speedup)),
                            (
                                "session_plan_cache_hits",
                                Json::Int(r.session_plan_cache_hits as i64),
                            ),
                            (
                                "session_plan_cache_misses",
                                Json::Int(r.session_plan_cache_misses as i64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("limit_wall_ms", Json::Num(limit_elapsed_ms)),
        (
            "limit_rows",
            Json::Arr(
                limit_rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("customers", Json::Int(r.customers as i64)),
                            ("limit", Json::Int(r.limit as i64)),
                            ("store_rows_scanned", Json::Int(r.store_rows_scanned as i64)),
                            (
                                "peak_rows_resident",
                                Json::Int(r.peak_rows_resident as i64),
                            ),
                            ("view_sim_ms", Json::Num(r.view_scan_ms.mean)),
                            ("view_wall_ms", Json::Num(r.view_scan_wall_ms.mean)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fig_par_json(rows: &[FigParRow], elapsed_ms: f64) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("threads", Json::Int(r.threads as i64)),
                            ("customers", Json::Int(r.customers as i64)),
                            ("view_sim_ms", Json::Num(r.view_scan_ms.mean)),
                            ("join_sim_ms", Json::Num(r.join_ms.mean)),
                            ("view_wall_ms", Json::Num(r.view_scan_wall_ms.mean)),
                            ("join_wall_ms", Json::Num(r.join_wall_ms.mean)),
                            ("sim_speedup", Json::Num(r.speedup)),
                            ("wall_speedup", Json::Num(r.wall_speedup)),
                            ("view_sim_x_vs_serial", Json::Num(r.view_sim_x_vs_serial)),
                            ("view_wall_x_vs_serial", Json::Num(r.view_wall_x_vs_serial)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fig11_json(rows: &[Fig11Row], elapsed_ms: f64) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("locks", Json::Int(r.locks as i64)),
                            ("sim_ms", Json::Num(r.overhead_ms.mean)),
                            ("wall_ms", Json::Num(r.overhead_wall_ms.mean)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn matrix_json(matrix: &ComparisonMatrix, prefix: char) -> Json {
    let rows = matrix
        .statements
        .iter()
        .filter(|s| s.starts_with(prefix))
        .map(|statement| {
            let cells = matrix
                .systems
                .iter()
                .map(|system| {
                    let mean = matrix.mean_ms(statement, system);
                    (system.clone(), mean.map(Json::Num).unwrap_or(Json::Null))
                })
                .collect::<Vec<_>>();
            let mut pairs = vec![("statement".to_string(), Json::str(statement.clone()))];
            pairs.extend(cells.into_iter().map(|(k, v)| (format!("{k}_sim_ms"), v)));
            Json::Obj(pairs)
        })
        .collect();
    Json::obj([("rows", Json::Arr(rows))])
}

fn table2_json(matrix: &ComparisonMatrix) -> Json {
    let rows = ["Synergy", "MVCC-A", "MVCC-UA", "Baseline"]
        .iter()
        .map(|system| {
            Json::obj([
                ("system", Json::str(*system)),
                (
                    "total_sim_ms",
                    matrix.total_ms(system).map(Json::Num).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    Json::obj([("rows", Json::Arr(rows))])
}

fn table3_json(matrix: &ComparisonMatrix) -> Json {
    let rows = table3_sizes(matrix)
        .into_iter()
        .map(|r| {
            Json::obj([
                ("system", Json::str(r.system)),
                ("bytes", Json::Int(r.bytes as i64)),
                ("relative_to_baseline", Json::Num(r.relative_to_baseline)),
            ])
        })
        .collect();
    Json::obj([("rows", Json::Arr(rows))])
}

fn fig_writes_json(output: &FigWritesOutput, elapsed_ms: f64) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        ("rows_ratio", Json::Num(output.rows_ratio)),
        (
            "rows",
            Json::Arr(
                output
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("mode", Json::str(r.mode)),
                            ("customers", Json::Int(r.customers as i64)),
                            ("writes", Json::Int(r.writes as i64)),
                            ("sim_ms_per_write", Json::Num(r.sim_ms_per_write)),
                            ("wall_writes_per_sec", Json::Num(r.wall_writes_per_sec)),
                            (
                                "store_rows_scanned_per_write",
                                Json::Num(r.store_rows_scanned_per_write),
                            ),
                            (
                                "view_rows_touched_per_write",
                                Json::Num(r.view_rows_touched_per_write),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "bursts",
            Json::Arr(
                output
                    .bursts
                    .iter()
                    .map(|b| {
                        Json::obj([
                            ("burst", Json::Int(b.burst as i64)),
                            (
                                "coalesced_flush_sim_ms",
                                Json::Num(b.coalesced_flush_sim_ms),
                            ),
                            (
                                "uncoalesced_flush_sim_ms",
                                Json::Num(b.uncoalesced_flush_sim_ms),
                            ),
                            ("coalesced_merges", Json::Int(b.coalesced_merges as i64)),
                            ("ratio_vs_single", Json::Num(b.ratio_vs_single)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fig_faults_json(output: &FigFaultsOutput, elapsed_ms: f64) -> Json {
    let recovery = &output.recovery;
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        (
            "rows",
            Json::Arr(
                output
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("retry", Json::str(r.retry)),
                            ("fault_rate", Json::Num(r.fault_rate)),
                            ("ops", Json::Int(r.ops as i64)),
                            ("ok_ops", Json::Int(r.ok_ops as i64)),
                            (
                                "goodput_ops_per_sim_sec",
                                Json::Num(r.goodput_ops_per_sim_sec),
                            ),
                            ("p95_sim_ms", Json::Num(r.p95_sim_ms)),
                            ("injected_op_faults", Json::Int(r.injected_op_faults as i64)),
                            ("slowdowns", Json::Int(r.slowdowns as i64)),
                            ("retries", Json::Int(r.retries as i64)),
                            ("giveups", Json::Int(r.giveups as i64)),
                            ("goodput_vs_no_fault", Json::Num(r.goodput_vs_no_fault)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "recovery",
            Json::obj([
                ("interrupted_step", Json::Int(recovery.interrupted_step as i64)),
                ("dirty_fallbacks", Json::Int(recovery.dirty_fallbacks as i64)),
                ("recovery_sim_ms", Json::Num(recovery.recovery_sim_ms)),
                ("replayed_entries", Json::Int(recovery.replayed_entries as i64)),
                ("locks_reclaimed", Json::Int(recovery.locks_reclaimed as i64)),
                (
                    "view_rows_rolled_forward",
                    Json::Int(recovery.view_rows_rolled_forward as i64),
                ),
                (
                    "lost_acked_synced_writes",
                    Json::Int(recovery.lost_acked_synced_writes as i64),
                ),
                (
                    "dirty_view_rows_after_recovery",
                    Json::Int(recovery.dirty_view_rows_after_recovery as i64),
                ),
            ]),
        ),
    ])
}

fn fig_availability_json(output: &FigAvailabilityOutput, elapsed_ms: f64) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        ("crashes", Json::Int(output.crashes as i64)),
        ("mttr_ms", Json::Num(output.mttr_ms)),
        ("servers", Json::Int(output.servers as i64)),
        (
            "rows",
            Json::Arr(
                output
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("replication_factor", Json::Int(r.replication_factor as i64)),
                            ("ops", Json::Int(r.ops as i64)),
                            ("ok_ops", Json::Int(r.ok_ops as i64)),
                            ("window_ops", Json::Int(r.window_ops as i64)),
                            ("window_ok_ops", Json::Int(r.window_ok_ops as i64)),
                            (
                                "steady_goodput_ops_per_sim_sec",
                                Json::Num(r.steady_goodput_ops_per_sim_sec),
                            ),
                            (
                                "window_goodput_ops_per_sim_sec",
                                Json::Num(r.window_goodput_ops_per_sim_sec),
                            ),
                            ("window_over_steady", Json::Num(r.window_over_steady)),
                            ("steady_p95_sim_ms", Json::Num(r.steady_p95_sim_ms)),
                            ("window_p95_sim_ms", Json::Num(r.window_p95_sim_ms)),
                            ("acked_writes_lost", Json::Int(r.acked_writes_lost as i64)),
                            ("failovers", Json::Int(r.failovers as i64)),
                            ("catchup_replays", Json::Int(r.catchup_replays as i64)),
                            ("records_shipped", Json::Int(r.records_shipped as i64)),
                            (
                                "unavailable_rejections",
                                Json::Int(r.unavailable_rejections as i64),
                            ),
                            ("giveups", Json::Int(r.giveups as i64)),
                            ("sim_elapsed_ms", Json::Num(r.sim_elapsed_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn fig_partial_json(output: &FigPartialOutput, elapsed_ms: f64) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        ("customers", Json::Int(output.customers as i64)),
        ("order_keys", Json::Int(output.order_keys as i64)),
        ("warmup_ops", Json::Int(output.warmup_ops as i64)),
        ("measured_ops", Json::Int(output.measured_ops as i64)),
        ("hot_rank", Json::Int(output.hot_rank as i64)),
        (
            "baselines",
            Json::Arr(
                output
                    .baselines
                    .iter()
                    .map(|b| {
                        Json::obj([
                            ("zipf_s", Json::Num(b.zipf_s)),
                            ("materialized_rows", Json::Int(b.materialized_rows as i64)),
                            ("materialized_bytes", Json::Int(b.materialized_bytes as i64)),
                            ("view_store_rows", Json::Int(b.view_store_rows as i64)),
                            ("view_store_bytes", Json::Int(b.view_store_bytes as i64)),
                            ("q1k_p50_sim_ms", Json::Num(b.q1k_p50_sim_ms)),
                            ("q1k_p95_sim_ms", Json::Num(b.q1k_p95_sim_ms)),
                            ("q1k_hot_p95_sim_ms", Json::Num(b.q1k_hot_p95_sim_ms)),
                            ("q2k_p50_sim_ms", Json::Num(b.q2k_p50_sim_ms)),
                            ("q2k_p95_sim_ms", Json::Num(b.q2k_p95_sim_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rows",
            Json::Arr(
                output
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("zipf_s", Json::Num(r.zipf_s)),
                            ("budget_label", Json::str(r.budget_label.clone())),
                            ("budget_bytes", Json::Int(r.budget_bytes as i64)),
                            ("hits", Json::Int(r.hits as i64)),
                            ("misses", Json::Int(r.misses as i64)),
                            ("hit_rate", Json::Num(r.hit_rate)),
                            ("upqueries", Json::Int(r.upqueries as i64)),
                            ("evicted_keys", Json::Int(r.evicted_keys as i64)),
                            ("annihilated", Json::Int(r.annihilated as i64)),
                            ("deferred", Json::Int(r.deferred as i64)),
                            ("bypasses", Json::Int(r.bypasses as i64)),
                            ("resident_keys", Json::Int(r.resident_keys as i64)),
                            ("resident_rows", Json::Int(r.resident_rows as i64)),
                            ("resident_bytes", Json::Int(r.resident_bytes as i64)),
                            ("view_store_rows", Json::Int(r.view_store_rows as i64)),
                            ("view_store_bytes", Json::Int(r.view_store_bytes as i64)),
                            ("rows_x_vs_full", Json::Num(r.rows_x_vs_full)),
                            ("bytes_x_vs_full", Json::Num(r.bytes_x_vs_full)),
                            ("q1k_p50_sim_ms", Json::Num(r.q1k_p50_sim_ms)),
                            ("q1k_p95_sim_ms", Json::Num(r.q1k_p95_sim_ms)),
                            ("q1k_hot_p95_sim_ms", Json::Num(r.q1k_hot_p95_sim_ms)),
                            ("q2k_p50_sim_ms", Json::Num(r.q2k_p50_sim_ms)),
                            ("q2k_p95_sim_ms", Json::Num(r.q2k_p95_sim_ms)),
                            (
                                "q1k_hot_p95_x_vs_full",
                                Json::Num(r.q1k_hot_p95_x_vs_full),
                            ),
                            (
                                "view_tables",
                                Json::Arr(
                                    r.view_tables
                                        .iter()
                                        .map(|(table, rows, bytes)| {
                                            Json::obj([
                                                ("table", Json::str(table.clone())),
                                                ("resident_rows", Json::Int(*rows as i64)),
                                                ("resident_bytes", Json::Int(*bytes as i64)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn ablation_json(rows: &[LockAblationRow], elapsed_ms: f64) -> Json {
    Json::obj([
        ("wall_ms", Json::Num(elapsed_ms)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("rows_touched", Json::Int(r.rows_touched as i64)),
                            ("single_lock_sim_ms", Json::Num(r.single_lock_ms)),
                            ("per_row_locks_sim_ms", Json::Num(r.per_row_locks_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// ----------------------------------------------------------------------
// Human-readable printing
// ----------------------------------------------------------------------

fn print_table1() {
    println!("--- Table I: qualitative comparison ---");
    println!(
        "{:<16} {:<18} {:<48} {:<36} Disk utilization",
        "System", "Scalability", "Query expressiveness", "Transaction support"
    );
    for row in table1_qualitative() {
        println!("{:<16} {:<18} {:<48} {:<36} {}", row[0], row[1], row[2], row[3], row[4]);
    }
    println!();
}

fn print_fig10(rows: &[Fig10Row]) {
    println!("--- Figure 10: micro-benchmark, view scan vs join algorithm ---");
    println!(
        "{:<6} {:>10} {:>20} {:>20} {:>10} {:>16} {:>16}",
        "query", "customers", "view scan (ms)", "join algo (ms)", "speedup", "view wall (ms)", "join wall (ms)"
    );
    for row in rows {
        println!(
            "{:<6} {:>10} {:>20} {:>20} {:>9.1}x {:>16} {:>16}",
            row.query,
            row.customers,
            format!("{:.1} ±{:.1}", row.view_scan_ms.mean, row.view_scan_ms.std_error),
            format!("{:.1} ±{:.1}", row.join_ms.mean, row.join_ms.std_error),
            row.speedup,
            format!("{:.2}", row.view_scan_wall_ms.mean),
            format!("{:.2}", row.join_wall_ms.mean),
        );
    }
    println!("(paper: view scan 6x / 11.7x faster than the join at 50k customers)\n");
}

fn print_fig10_prepared(rows: &[Fig10PreparedRow]) {
    println!("--- Figure 10 companion: prepared statements vs one-shot (point lookup) ---");
    println!(
        "{:>10} {:>12} {:>18} {:>18} {:>9} {:>13} {:>15}",
        "customers", "executions", "one-shot (us)", "prepared (us)", "speedup", "session hits", "session misses"
    );
    for row in rows {
        println!(
            "{:>10} {:>12} {:>18} {:>18} {:>8.2}x {:>13} {:>15}",
            row.customers,
            row.executions,
            format!("{:.2}", row.oneshot_us_per_exec),
            format!("{:.2}", row.prepared_us_per_exec),
            row.prepared_speedup,
            row.session_plan_cache_hits,
            row.session_plan_cache_misses,
        );
    }
    println!("(prepared = one compiled plan re-executed; one-shot re-runs parse/bind/plan per call)\n");
}

fn print_explain(explains: &[tpcw::micro::QueryExplain]) {
    println!("--- EXPLAIN: micro-benchmark plan trees (baseline vs view-rewritten) ---");
    for e in explains {
        println!("{} — join algorithm (base tables):", e.query);
        for line in e.baseline.lines() {
            println!("    {line}");
        }
        println!("{} — Synergy read path (view rewrite as a planner rule):", e.query);
        for line in e.synergy.lines() {
            println!("    {line}");
        }
    }
    println!();
}

fn explain_json(explains: &[tpcw::micro::QueryExplain]) -> Json {
    Json::obj([(
        "queries",
        Json::Arr(
            explains
                .iter()
                .map(|e| {
                    Json::obj([
                        ("query", Json::str(e.query)),
                        ("baseline", Json::str(e.baseline.clone())),
                        ("synergy", Json::str(e.synergy.clone())),
                    ])
                })
                .collect(),
        ),
    )])
}

fn print_fig10_limit(rows: &[Fig10LimitRow]) {
    println!("--- Figure 10 companion: Q1 view scan with LIMIT (streaming pushdown) ---");
    println!(
        "{:>10} {:>7} {:>20} {:>18} {:>16} {:>12}",
        "customers", "limit", "store rows scanned", "peak rows resident", "view scan (ms)", "wall (ms)"
    );
    for row in rows {
        println!(
            "{:>10} {:>7} {:>20} {:>18} {:>16} {:>12}",
            row.customers,
            row.limit,
            row.store_rows_scanned,
            row.peak_rows_resident,
            format!("{:.2}", row.view_scan_ms.mean),
            format!("{:.2}", row.view_scan_wall_ms.mean),
        );
    }
    println!("(store rows scanned must stay at the limit while the database grows)\n");
}

fn print_fig_par(rows: &[FigParRow]) {
    println!("--- fig_par: region-parallel execution sweep (Q2, deepest micro join) ---");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12} {:>15} {:>15} {:>13}",
        "threads",
        "customers",
        "view sim (ms)",
        "join sim (ms)",
        "sim x vs 1t",
        "view wall (ms)",
        "join wall (ms)",
        "wall x vs 1t"
    );
    for row in rows {
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>12} {:>15} {:>15} {:>13}",
            row.threads,
            row.customers,
            format!("{:.1}", row.view_scan_ms.mean),
            format!("{:.1}", row.join_ms.mean),
            format!("{:.2}x", row.view_sim_x_vs_serial),
            format!("{:.2}", row.view_scan_wall_ms.mean),
            format!("{:.2}", row.join_wall_ms.mean),
            format!("{:.2}x", row.view_wall_x_vs_serial),
        );
    }
    println!("(per-worker sim deltas merge as max; threads=1 equals the serial pipeline)\n");
}

fn print_fig11(rows: &[Fig11Row]) {
    println!("--- Figure 11: two-phase row locking overhead ---");
    println!("{:>12} {:>20} {:>16}", "locks", "overhead (ms)", "wall (ms)");
    for row in rows {
        println!(
            "{:>12} {:>20} {:>16}",
            row.locks,
            format!("{:.1} ±{:.1}", row.overhead_ms.mean, row.overhead_ms.std_error),
            format!("{:.2}", row.overhead_wall_ms.mean),
        );
    }
    println!("(paper: 342 / 571 / 2182 ms for 10 / 100 / 1000 locks)\n");
}

fn print_fig12(matrix: &ComparisonMatrix) {
    println!("--- Figure 12: TPC-W join query response times ---");
    print_matrix(matrix, |id| id.starts_with('Q'));
    for other in ["MVCC-UA", "MVCC-A", "Baseline"] {
        if let Some(ratio) = matrix.mean_ratio(other, "Synergy", |s| s.starts_with('Q')) {
            println!("  joins: {other} / Synergy mean ratio = {ratio:.1}x (paper: 19.5x / 6.2x / 28.2x)");
        }
    }
    if let Some(ratio) = matrix.mean_ratio("Synergy", "VoltDB", |s| s.starts_with('Q')) {
        println!("  joins: Synergy / VoltDB mean ratio = {ratio:.1}x (paper: 11x, supported queries only)");
    }
    println!();
}

fn print_fig14(matrix: &ComparisonMatrix) {
    println!("--- Figure 14: TPC-W write statement response times ---");
    print_matrix(matrix, |id| id.starts_with('W'));
    for other in ["MVCC-UA", "MVCC-A", "Baseline"] {
        if let Some(ratio) = matrix.mean_ratio(other, "Synergy", |s| s.starts_with('W')) {
            println!("  writes: {other} / Synergy mean ratio = {ratio:.1}x (paper: 9x / 8.6x / 8.6x)");
        }
    }
    if let Some(ratio) = matrix.mean_ratio("Synergy", "VoltDB", |s| s.starts_with('W')) {
        println!("  writes: Synergy / VoltDB mean ratio = {ratio:.1}x (paper: 9.4x)");
    }
    println!();
}

fn print_matrix(matrix: &ComparisonMatrix, filter: impl Fn(&str) -> bool) {
    print!("{:<6}", "");
    for system in &matrix.systems {
        print!(" {:>18}", system);
    }
    println!();
    for statement in matrix.statements.iter().filter(|s| filter(s)) {
        print!("{:<6}", statement);
        for system in &matrix.systems {
            let cell = matrix
                .cells
                .get(statement)
                .and_then(|row| row.get(system))
                .cloned()
                .unwrap_or(None);
            print!(" {:>18}", fmt_ms(&cell));
        }
        println!();
    }
    println!("  (X = statement not supported by that system)");
}

fn print_table2(matrix: &ComparisonMatrix) {
    println!("--- Table II: sum of response times of all TPC-W statements ---");
    println!("{:<10} {:>18}", "system", "total (sim seconds)");
    for system in ["Synergy", "MVCC-A", "MVCC-UA", "Baseline"] {
        match matrix.total_ms(system) {
            Some(total) => println!("{:<10} {:>18.2}", system, total / 1_000.0),
            None => println!("{:<10} {:>18}", system, "n/a"),
        }
    }
    println!("(paper: Synergy 33.7 s, MVCC-A 77.4 s, MVCC-UA 132.4 s, Baseline 173.4 s; VoltDB excluded)\n");
}

fn print_table3(matrix: &ComparisonMatrix) {
    println!("--- Table III: database sizes ---");
    println!("{:<10} {:>14} {:>22}", "system", "size", "relative to Baseline");
    for row in table3_sizes(matrix) {
        println!(
            "{:<10} {:>14} {:>21.2}x",
            row.system,
            fmt_mib(row.bytes),
            row.relative_to_baseline
        );
    }
    println!("(paper @1M customers: VoltDB 31.8, Synergy 92, MVCC-A 91.8, MVCC-UA 45.7, Baseline 43.8 GB)\n");
}

fn print_fig13() {
    println!("--- Figure 13: mechanisms per evaluated system ---");
    println!("{:<10} {:<34} concurrency control", "system", "view selection");
    for row in fig13_mechanisms() {
        println!("{:<10} {:<34} {}", row[0], row[1], row[2]);
    }
    println!();
}

fn print_fig_writes(output: &FigWritesOutput) {
    println!("--- fig_writes: delta-dataflow vs scan-based view maintenance ---");
    println!(
        "{:<6} {:>10} {:>8} {:>16} {:>14} {:>18} {:>18}",
        "mode", "customers", "writes", "sim ms/write", "writes/sec", "rows scanned/wr", "view rows/wr"
    );
    for row in &output.rows {
        println!(
            "{:<6} {:>10} {:>8} {:>16} {:>14} {:>18} {:>18}",
            row.mode,
            row.customers,
            row.writes,
            format!("{:.2}", row.sim_ms_per_write),
            format!("{:.0}", row.wall_writes_per_sec),
            format!("{:.1}", row.store_rows_scanned_per_write),
            format!("{:.1}", row.view_rows_touched_per_write),
        );
    }
    println!(
        "  store rows scanned, scan / delta = {:.1}x (delta probes maintenance indexes instead of scanning views)",
        output.rows_ratio
    );
    println!(
        "{:>8} {:>24} {:>26} {:>10} {:>16}",
        "burst", "coalesced flush (ms)", "uncoalesced flush (ms)", "merges", "ratio vs 1-write"
    );
    for b in &output.bursts {
        println!(
            "{:>8} {:>24} {:>26} {:>10} {:>16}",
            b.burst,
            format!("{:.2}", b.coalesced_flush_sim_ms),
            format!("{:.2}", b.uncoalesced_flush_sim_ms),
            b.coalesced_merges,
            format!("{:.2}x", b.ratio_vs_single),
        );
    }
    println!("(single-key bursts coalesce in the write batch: one flush ≈ one write's maintenance)\n");
}

fn print_fig_faults(output: &FigFaultsOutput) {
    println!("--- fig_faults: injected faults × retry policy, and crash recovery ---");
    println!(
        "{:<8} {:>8} {:>7} {:>8} {:>16} {:>12} {:>8} {:>8} {:>8} {:>12}",
        "retry", "faults", "ops", "ok", "goodput/sim-s", "p95 sim ms", "injected", "retries", "giveups", "vs no-fault"
    );
    for row in &output.rows {
        println!(
            "{:<8} {:>7.1}% {:>7} {:>8} {:>16} {:>12} {:>8} {:>8} {:>8} {:>12}",
            row.retry,
            row.fault_rate * 100.0,
            row.ops,
            row.ok_ops,
            format!("{:.1}", row.goodput_ops_per_sim_sec),
            format!("{:.2}", row.p95_sim_ms),
            row.injected_op_faults,
            row.retries,
            row.giveups,
            format!("{:.3}x", row.goodput_vs_no_fault),
        );
    }
    let r = &output.recovery;
    println!(
        "  recovery: txn interrupted after step {}, {} dirty-read fallback(s) served, \
         crash + recover in {:.1} sim ms",
        r.interrupted_step, r.dirty_fallbacks, r.recovery_sim_ms
    );
    println!(
        "  replayed {} WAL records, reclaimed {} lock(s), rolled {} view rows forward; \
         lost acked-synced writes: {}, dirty views left: {}",
        r.replayed_entries,
        r.locks_reclaimed,
        r.view_rows_rolled_forward,
        r.lost_acked_synced_writes,
        r.dirty_view_rows_after_recovery
    );
    println!("(same seed + same fault plan => byte-identical figures; gates: zero losses, zero dirty views)\n");
}

fn print_fig_availability(output: &FigAvailabilityOutput) {
    println!("--- fig_availability: replication factor × availability through crash windows ---");
    println!(
        "{} servers, {} scheduled crashes, MTTR {:.0} sim ms, wal_sync_interval 1 (every acked write synced)",
        output.servers, output.crashes, output.mttr_ms
    );
    println!(
        "{:>3} {:>7} {:>7} {:>12} {:>14} {:>14} {:>10} {:>11} {:>11} {:>9} {:>9} {:>8}",
        "rf", "ok", "window", "window ok", "steady gp/s", "window gp/s", "win/steady",
        "steady p95", "window p95", "failover", "shipped", "lost"
    );
    for row in &output.rows {
        println!(
            "{:>3} {:>7} {:>7} {:>12} {:>14} {:>14} {:>10} {:>11} {:>11} {:>9} {:>9} {:>8}",
            row.replication_factor,
            format!("{}/{}", row.ok_ops, row.ops),
            row.window_ops,
            row.window_ok_ops,
            format!("{:.1}", row.steady_goodput_ops_per_sim_sec),
            format!("{:.1}", row.window_goodput_ops_per_sim_sec),
            format!("{:.3}x", row.window_over_steady),
            format!("{:.2}", row.steady_p95_sim_ms),
            format!("{:.2}", row.window_p95_sim_ms),
            row.failovers,
            row.records_shipped,
            row.acked_writes_lost,
        );
    }
    println!(
        "(gates: RF>=2 rides through windows at >=0.7x steady goodput with zero acked-write loss; \
         RF=1 figures are covered by the sim-identity gate)\n"
    );
}

fn print_fig_partial(output: &FigPartialOutput) {
    println!("--- fig_partial: partial view materialization under zipfian skew ---");
    println!(
        "key universe: {} orders; {} warm-up + {} measured ops per cell (90% Q1K / 2% Q2K / 8% writes); hot = rank <= {}",
        output.order_keys, output.warmup_ops, output.measured_ops, output.hot_rank
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14} {:>14}",
        "zipf s", "full rows", "full bytes", "Q1K p50", "Q1K p95", "Q1K hot p95", "Q2K p95"
    );
    for b in &output.baselines {
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>14} {:>14} {:>14}",
            format!("{:.1}", b.zipf_s),
            b.view_store_rows,
            fmt_mib(b.view_store_bytes),
            format!("{:.3}", b.q1k_p50_sim_ms),
            format!("{:.3}", b.q1k_p95_sim_ms),
            format!("{:.3}", b.q1k_hot_p95_sim_ms),
            format!("{:.3}", b.q2k_p95_sim_ms),
        );
    }
    println!(
        "{:>6} {:>10} {:>9} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "zipf s", "budget", "hit rate", "upq", "evict", "annihil",
        "rows", "rows x", "bytes x", "Q1K p95", "hot p95", "hot p95 x"
    );
    for r in &output.rows {
        println!(
            "{:>6} {:>10} {:>8.1}% {:>8} {:>8} {:>8} {:>10} {:>7.1}x {:>7.1}x {:>12} {:>12} {:>11.2}x",
            format!("{:.1}", r.zipf_s),
            r.budget_label,
            r.hit_rate * 100.0,
            r.upqueries,
            r.evicted_keys,
            r.annihilated,
            r.view_store_rows,
            r.rows_x_vs_full,
            r.bytes_x_vs_full,
            format!("{:.3}", r.q1k_p95_sim_ms),
            format!("{:.3}", r.q1k_hot_p95_sim_ms),
            r.q1k_hot_p95_x_vs_full,
        );
    }
    // The per-view resident footprint of each view table (cluster storage
    // metrics): the stored slice of a partial view is its resident slice.
    for r in &output.rows {
        let breakdown: Vec<String> = r
            .view_tables
            .iter()
            .map(|(table, rows, bytes)| format!("{table}: {rows} rows / {}", fmt_mib(*bytes)))
            .collect();
        println!(
            "  s={:.1} {:>9}: {}",
            r.zipf_s,
            r.budget_label,
            breakdown.join(", ")
        );
    }
    println!("(rows x / bytes x = full-materialization footprint over this cell's resident slice)\n");
}

fn print_ablation(rows: &[LockAblationRow]) {
    println!("--- Ablation: single hierarchical lock vs per-row locks ---");
    println!(
        "{:>12} {:>22} {:>22}",
        "rows touched", "single lock (ms)", "per-row locks (ms)"
    );
    for row in rows {
        println!(
            "{:>12} {:>22.1} {:>22.1}",
            row.rows_touched, row.single_lock_ms, row.per_row_locks_ms
        );
    }
    println!();
}
