//! `bench_diff` — compares two `BENCH_report.json` files figure by figure
//! and fails on wall-clock regressions, plus semantic gates on the
//! `fig_writes` maintenance figure (see below).
//!
//! ```text
//! cargo run --release -p bench --bin bench_diff -- BENCH_report_tiny.json BENCH_report.json
//! ```
//!
//! For every figure present in both reports, the per-figure `wall_ms` (and
//! `limit_wall_ms` where present) is compared and the delta printed, also
//! appended as a Markdown table to `$GITHUB_STEP_SUMMARY` when set.  The
//! process exits non-zero when any figure regresses by more than
//! `BENCH_DIFF_MAX_RATIO` (default 2.0×) **and** more than
//! `BENCH_DIFF_MIN_DELTA_MS` (default 250 ms) — the absolute floor keeps
//! noisy sub-millisecond figures from tripping the gate on slow runners.
//!
//! When the fresh report carries a `fig_writes` figure, three maintenance
//! gates apply on top of the wall-clock diff (all on deterministic sim
//! numbers, so no noise floor is needed): the scan/delta store-rows ratio
//! must stay ≥ 10×, the 256-write single-key burst must flush at ≤ 2× the
//! cost of a single write's flush, and the delta path's simulated cost per
//! write must not exceed the committed report's by more than 25%.
//!
//! When it carries a `fig_faults` figure, the fault-tolerance gates apply
//! too: no-fault goodput within 1.25× of the committed report, goodput at
//! 1% injected faults ≥ 90% of no-fault under the backoff retry policy,
//! and the crash-recovery demonstration reporting zero lost acked-synced
//! writes and zero views left dirty.
//!
//! When it carries a `fig_availability` figure, the replication gates
//! apply: every RF ≥ 2 row must ride through the crash windows at ≥ 0.7×
//! steady-state goodput with at least one failover fired and zero
//! acked-write loss, and the RF = 1 row must show replication fully
//! disarmed (no failovers, no shipped records).  The RF = 1 figures also
//! join the sim-identity series below once both reports carry them.
//!
//! When it carries a `fig_partial` figure, the partial-materialization
//! gates pin the 10%-budget zipf-1.1 cell: hit rate ≥ 90%, resident view
//! rows and bytes reduced ≥ 10× vs full materialization, and hot-key Q1K
//! p95 ≤ 1.25× the fully-materialized baseline (thresholds relax below
//! 200 customers, where the zipf stream touches most of the key
//! universe).  Finally, because every view-budget default is "off", the
//! partial path must not perturb the other figures: the deterministic sim
//! series of `fig10`/`fig_par`/`fig11`/`fig_writes`/`fig_faults` must be
//! byte-identical to the committed report when both ran at the same scale.

use bench::json::Json;
use std::fmt::Write as _;

struct DiffRow {
    figure: String,
    old_ms: f64,
    new_ms: f64,
}

impl DiffRow {
    fn ratio(&self) -> f64 {
        self.new_ms / self.old_ms.max(f64::EPSILON)
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <committed-report.json> <fresh-report.json>");
        std::process::exit(2);
    };
    let max_ratio: f64 = std::env::var("BENCH_DIFF_MAX_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let min_delta_ms: f64 = std::env::var("BENCH_DIFF_MIN_DELTA_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0);

    let old = load(old_path);
    let new = load(new_path);
    // Schema 2 reports carry the fig10 worker count; wall-clock deltas are
    // only meaningful like-for-like, so refuse cross-thread-count diffs
    // (schema 1 reports, which predate the field, count as 1 thread).
    let threads_of =
        |doc: &Json| doc.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64;
    let (old_threads, new_threads) = (threads_of(&old), threads_of(&new));
    if old_threads != new_threads {
        eprintln!(
            "refusing to diff across thread counts: {old_path} ran at {old_threads} thread(s), \
             {new_path} at {new_threads} — compare like-for-like reports"
        );
        std::process::exit(2);
    }
    let (Some(Json::Obj(old_figures)), Some(Json::Obj(new_figures))) =
        (old.get("figures"), new.get("figures"))
    else {
        panic!("both reports must carry a top-level \"figures\" object");
    };

    let mut rows: Vec<DiffRow> = Vec::new();
    // A figure present in the committed report but absent from the fresh
    // one is itself a regression (it would otherwise silently escape the
    // gate); a figure only in the fresh report is new and informational.
    let mut vanished: Vec<String> = Vec::new();
    for (figure, new_value) in new_figures {
        let Some(old_value) = old_figures.iter().find(|(k, _)| k == figure).map(|(_, v)| v)
        else {
            println!("note: figure \"{figure}\" is new (not in {old_path}); skipping");
            continue;
        };
        for wall_key in ["wall_ms", "limit_wall_ms"] {
            let suffix = if wall_key == "wall_ms" { "" } else { " (limit)" };
            match (
                old_value.get(wall_key).and_then(Json::as_f64),
                new_value.get(wall_key).and_then(Json::as_f64),
            ) {
                (Some(old_ms), Some(new_ms)) => rows.push(DiffRow {
                    figure: format!("{figure}{suffix}"),
                    old_ms,
                    new_ms,
                }),
                // A metric the committed report tracked that the fresh one
                // no longer emits drops a wall-clock series from coverage.
                (Some(_), None) => vanished.push(format!("{figure}{suffix}")),
                _ => {}
            }
        }
    }
    for (figure, old_value) in old_figures {
        let timed = old_value.get("wall_ms").is_some();
        let missing = !new_figures.iter().any(|(k, _)| k == figure);
        if timed && missing {
            vanished.push(figure.clone());
        }
    }
    assert!(!rows.is_empty(), "no comparable wall_ms figures found");

    let mut summary = String::new();
    let _ = writeln!(summary, "### Bench wall-clock deltas ({old_path} → {new_path})\n");
    let _ = writeln!(summary, "| figure | committed (ms) | fresh (ms) | delta | ratio |");
    let _ = writeln!(summary, "|---|---:|---:|---:|---:|");
    let mut regressions = Vec::new();
    for row in &rows {
        let delta = row.new_ms - row.old_ms;
        let regressed = row.ratio() > max_ratio && delta > min_delta_ms;
        let marker = if regressed { " ⚠️" } else { "" };
        let _ = writeln!(
            summary,
            "| {}{marker} | {:.1} | {:.1} | {:+.1} | {:.2}x |",
            row.figure, row.old_ms, row.new_ms, delta, row.ratio()
        );
        if regressed {
            regressions.push(row.figure.clone());
        }
    }
    for figure in &vanished {
        let _ = writeln!(summary, "| {figure} ⚠️ missing | — | — | — | — |");
        regressions.push(format!("{figure} (missing from fresh report)"));
    }
    regressions.extend(fig_writes_gates(&old, &new, &mut summary));
    regressions.extend(fig_faults_gates(&old, &new, &mut summary));
    regressions.extend(fig_availability_gates(&new, &mut summary));
    regressions.extend(fig_partial_gates(&new, &mut summary));
    regressions.extend(sim_identity_gates(&old, &new, &mut summary));
    let _ = writeln!(
        summary,
        "\nGate: ratio > {max_ratio:.1}x **and** delta > {min_delta_ms:.0} ms; \
         figures vanishing from the fresh report also fail."
    );
    println!("{summary}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new().append(true).create(true).open(path) {
            let _ = file.write_all(summary.as_bytes());
        }
    }

    if !regressions.is_empty() {
        eprintln!("bench regression in: {}", regressions.join(", "));
        std::process::exit(1);
    }
    println!("no bench regressions beyond the gates.");
}

/// Semantic gates for the `fig_partial` partial-materialization figure,
/// pinned on the 10%-budget zipf-1.1 cell of the fresh report (all
/// deterministic sim numbers): the partial view must answer ≥ 90% of
/// keyed reads from residency while holding ≥ 10× fewer view rows and
/// bytes than full materialization, without taxing hot keys (Q1K hot-key
/// p95 ≤ 1.25× the fully-materialized baseline).  Below 200 customers the
/// zipfian stream touches most of the key universe, so the footprint and
/// hit-rate thresholds relax (≥ 6× / ≥ 8× / ≥ 85%).
fn fig_partial_gates(new: &Json, summary: &mut String) -> Vec<String> {
    let fresh = match new.get("figures").and_then(|f| f.get("fig_partial")) {
        Some(figure) => figure,
        None => return Vec::new(),
    };
    let mut failures = Vec::new();
    let note = |summary: &mut String, line: String, failed: bool| {
        let marker = if failed { " ⚠️" } else { "" };
        let _ = writeln!(summary, "- fig_partial: {line}{marker}");
        failed
    };

    let customers = fresh.get("customers").and_then(Json::as_f64).unwrap_or(0.0);
    let full_scale = customers >= 200.0;
    let (min_hit, min_rows_x, min_bytes_x) = if full_scale {
        (0.90, 10.0, 10.0)
    } else {
        (0.85, 6.0, 8.0)
    };

    let cell = fresh.get("rows").and_then(|rows| match rows {
        Json::Arr(rows) => rows.iter().find(|r| {
            matches!(r.get("budget_label"), Some(Json::Str(label)) if label == "10%")
                && r.get("zipf_s").and_then(Json::as_f64) == Some(1.1)
        }),
        _ => None,
    });
    let Some(cell) = cell else {
        failures.push("fig_partial 10%-budget zipf-1.1 cell missing".to_string());
        return failures;
    };

    let checks: [(&str, f64, bool); 4] = [
        ("hit_rate", min_hit, true),
        ("rows_x_vs_full", min_rows_x, true),
        ("bytes_x_vs_full", min_bytes_x, true),
        ("q1k_hot_p95_x_vs_full", 1.25, false),
    ];
    for (key, threshold, at_least) in checks {
        match cell.get(key).and_then(Json::as_f64) {
            Some(value) => {
                let failed = value.is_nan()
                    || if at_least { value < threshold } else { value > threshold };
                let op = if at_least { "≥" } else { "≤" };
                if note(
                    summary,
                    format!("10% budget @ zipf 1.1: {key} = {value:.3} (gate {op} {threshold})"),
                    failed,
                ) {
                    failures.push(format!(
                        "fig_partial {key} = {value:.3} violates {op} {threshold}"
                    ));
                }
            }
            None => failures.push(format!("fig_partial cell key {key} missing")),
        }
    }
    failures
}

/// The no-budget identity gate: partial materialization is off by default,
/// so the deterministic simulated series of every other figure must be
/// byte-identical to the committed report — any drift means the partial
/// machinery taxed a code path it was supposed to leave alone.  Applies
/// only when both reports ran at the same scale and repetition count
/// (cross-scale sim numbers differ legitimately).
fn sim_identity_gates(old: &Json, new: &Json, summary: &mut String) -> Vec<String> {
    let scale_of = |doc: &Json| {
        (
            doc.get("customers").and_then(Json::as_f64).unwrap_or(f64::NAN),
            doc.get("reps").and_then(Json::as_f64).unwrap_or(f64::NAN),
        )
    };
    let (old_scale, new_scale) = (scale_of(old), scale_of(new));
    if old_scale != new_scale {
        let _ = writeln!(
            summary,
            "- sim identity: skipped (reports ran at different scales)"
        );
        return Vec::new();
    }

    // (figure, rows key, sim series keys) — every series is deterministic:
    // seeded RNGs, simulated clock, max-merge across workers.
    let series: [(&str, &str, &[&str]); 7] = [
        ("fig10", "rows", &["view_sim_ms", "join_sim_ms"]),
        ("fig_par", "rows", &["view_sim_ms", "join_sim_ms"]),
        ("fig11", "rows", &["sim_ms"]),
        ("fig_writes", "rows", &["sim_ms_per_write", "store_rows_scanned_per_write"]),
        ("fig_writes", "bursts", &["coalesced_flush_sim_ms", "uncoalesced_flush_sim_ms"]),
        ("fig_faults", "rows", &["goodput_ops_per_sim_sec", "p95_sim_ms"]),
        // Deterministic like the rest; absent from pre-replication reports,
        // in which case rows_of() returns None and the figure is skipped.
        (
            "fig_availability",
            "rows",
            &["steady_goodput_ops_per_sim_sec", "window_goodput_ops_per_sim_sec", "window_p95_sim_ms"],
        ),
    ];
    let mut failures = Vec::new();
    let mut compared = 0usize;
    fn rows_of<'a>(doc: &'a Json, figure: &str, rows_key: &str) -> Option<&'a [Json]> {
        doc.get("figures")
            .and_then(|f| f.get(figure))
            .and_then(|f| f.get(rows_key))
            .and_then(|rows| match rows {
                Json::Arr(rows) => Some(rows.as_slice()),
                _ => None,
            })
    }
    for (figure, rows_key, keys) in series {
        let (Some(old_rows), Some(new_rows)) =
            (rows_of(old, figure, rows_key), rows_of(new, figure, rows_key))
        else {
            continue;
        };
        if old_rows.len() != new_rows.len() {
            failures.push(format!(
                "sim identity: {figure}.{rows_key} row count {} → {}",
                old_rows.len(),
                new_rows.len()
            ));
            continue;
        }
        for (i, (old_row, new_row)) in old_rows.iter().zip(new_rows).enumerate() {
            for key in keys {
                let (old_v, new_v) = (
                    old_row.get(key).and_then(Json::as_f64),
                    new_row.get(key).and_then(Json::as_f64),
                );
                compared += 1;
                if old_v.map(f64::to_bits) != new_v.map(f64::to_bits) {
                    failures.push(format!(
                        "sim identity: {figure}.{rows_key}[{i}].{key} {:?} → {:?}",
                        old_v, new_v
                    ));
                }
            }
        }
    }
    let _ = writeln!(
        summary,
        "- sim identity: {compared} deterministic sim values compared, {} drifted{}",
        failures.len(),
        if failures.is_empty() { "" } else { " ⚠️" }
    );
    failures
}

/// Semantic gates for the `fig_faults` fault-tolerance figure — all on
/// deterministic sim numbers, so no noise floor applies: the no-fault
/// goodput must stay within 1.25× of the committed report's (the fault
/// hook may not tax the healthy path), retries must hold goodput at the
/// 1% fault point to ≥ 90% of no-fault, and the crash-recovery
/// demonstration must lose zero acked-synced writes and leave zero views
/// dirty.
fn fig_faults_gates(old: &Json, new: &Json, summary: &mut String) -> Vec<String> {
    let fresh = match new.get("figures").and_then(|f| f.get("fig_faults")) {
        Some(figure) => figure,
        None => return Vec::new(),
    };
    let mut failures = Vec::new();
    let note = |summary: &mut String, line: String, failed: bool| {
        let marker = if failed { " ⚠️" } else { "" };
        let _ = writeln!(summary, "- fig_faults: {line}{marker}");
        failed
    };

    // The backoff-policy cell at one fault rate of a report.
    let cell = |doc: &Json, rate: f64, key: &str| {
        doc.get("figures")
            .and_then(|f| f.get("fig_faults"))
            .and_then(|f| f.get("rows"))
            .and_then(|rows| match rows {
                Json::Arr(rows) => rows
                    .iter()
                    .find(|r| {
                        matches!(r.get("retry"), Some(Json::Str(m)) if m == "backoff")
                            && r.get("fault_rate").and_then(Json::as_f64) == Some(rate)
                    })
                    .and_then(|r| r.get(key))
                    .and_then(Json::as_f64),
                _ => None,
            })
    };

    match cell(new, 0.0, "goodput_ops_per_sim_sec") {
        Some(fresh_goodput) => {
            if let Some(old_goodput) = cell(old, 0.0, "goodput_ops_per_sim_sec") {
                let failed = fresh_goodput * 1.25 < old_goodput;
                if note(
                    summary,
                    format!(
                        "no-fault goodput {old_goodput:.1} → {fresh_goodput:.1} ops/sim-s \
                         (gate ≥ committed / 1.25)"
                    ),
                    failed,
                ) {
                    failures.push(format!(
                        "fig_faults no-fault goodput regressed {old_goodput:.1} → {fresh_goodput:.1}"
                    ));
                }
            }
        }
        None => failures.push("fig_faults no-fault backoff row missing".to_string()),
    }

    match cell(new, 0.01, "goodput_vs_no_fault") {
        Some(ratio) => {
            let failed = ratio.is_nan() || ratio < 0.9;
            if note(
                summary,
                format!("goodput at 1% faults with retries {ratio:.3}x no-fault (gate ≥ 0.9x)"),
                failed,
            ) {
                failures.push(format!("fig_faults 1%-fault goodput {ratio:.3}x < 0.9x"));
            }
        }
        None => failures.push("fig_faults 1%-fault backoff row missing".to_string()),
    }

    let recovery_count = |key: &str| {
        fresh
            .get("recovery")
            .and_then(|r| r.get(key))
            .and_then(Json::as_f64)
    };
    for key in ["lost_acked_synced_writes", "dirty_view_rows_after_recovery"] {
        match recovery_count(key) {
            Some(count) => {
                let failed = count != 0.0;
                if note(summary, format!("recovery {key} = {count:.0} (gate = 0)"), failed) {
                    failures.push(format!("fig_faults recovery {key} = {count:.0}"));
                }
            }
            None => failures.push(format!("fig_faults recovery {key} missing")),
        }
    }
    failures
}

/// Semantic gates for the `fig_availability` replication figure — all
/// deterministic sim numbers.  RF ≥ 2 rows must keep in-window goodput at
/// ≥ 0.7× steady state with at least one failover fired and zero
/// acked-write loss; the RF = 1 row must show replication fully disarmed
/// (zero failovers, zero shipped records) so the legacy figures stay
/// byte-identical.
fn fig_availability_gates(new: &Json, summary: &mut String) -> Vec<String> {
    let rows = match new
        .get("figures")
        .and_then(|f| f.get("fig_availability"))
        .and_then(|f| f.get("rows"))
    {
        Some(Json::Arr(rows)) => rows,
        _ => return Vec::new(),
    };
    let mut failures = Vec::new();
    let note = |summary: &mut String, line: String, failed: bool| {
        let marker = if failed { " ⚠️" } else { "" };
        let _ = writeln!(summary, "- fig_availability: {line}{marker}");
        failed
    };
    if rows.is_empty() {
        failures.push("fig_availability has no rows".to_string());
        return failures;
    }
    for row in rows {
        let num = |key: &str| row.get(key).and_then(Json::as_f64);
        let Some(rf) = num("replication_factor") else {
            failures.push("fig_availability row without replication_factor".to_string());
            continue;
        };
        let rf = rf as u64;
        let lost = num("acked_writes_lost").unwrap_or(f64::NAN);
        if note(
            summary,
            format!("rf {rf}: acked writes lost {lost:.0} (gate = 0)"),
            lost != 0.0,
        ) {
            failures.push(format!("fig_availability rf {rf} lost {lost:.0} acked writes"));
        }
        let failovers = num("failovers").unwrap_or(f64::NAN);
        let shipped = num("records_shipped").unwrap_or(f64::NAN);
        if rf <= 1 {
            if note(
                summary,
                format!("rf 1: failovers {failovers:.0}, shipped {shipped:.0} (gate = 0 — replication disarmed)"),
                failovers != 0.0 || shipped != 0.0,
            ) {
                failures.push("fig_availability rf 1 shows replication activity".to_string());
            }
            continue;
        }
        let ratio = num("window_over_steady").unwrap_or(f64::NAN);
        if note(
            summary,
            format!("rf {rf}: in-window goodput {ratio:.3}x steady (gate ≥ 0.7x)"),
            ratio.is_nan() || ratio < 0.7,
        ) {
            failures.push(format!(
                "fig_availability rf {rf} in-window goodput {ratio:.3}x < 0.7x steady"
            ));
        }
        if note(
            summary,
            format!("rf {rf}: failovers {failovers:.0} (gate ≥ 1)"),
            failovers.is_nan() || failovers < 1.0,
        ) {
            failures.push(format!("fig_availability rf {rf} fired no failover"));
        }
    }
    failures
}

/// Semantic gates for the `fig_writes` maintenance figure: the headline
/// cost advantages of delta maintenance and write-batch coalescing are
/// deterministic sim numbers, so the gate pins them directly instead of
/// only diffing wall clocks.
fn fig_writes_gates(old: &Json, new: &Json, summary: &mut String) -> Vec<String> {
    let fresh = match new.get("figures").and_then(|f| f.get("fig_writes")) {
        Some(figure) => figure,
        None => return Vec::new(),
    };
    let mut failures = Vec::new();
    let note = |summary: &mut String, line: String, failed: bool| {
        let marker = if failed { " ⚠️" } else { "" };
        let _ = writeln!(summary, "- fig_writes: {line}{marker}");
        failed
    };

    match fresh.get("rows_ratio").and_then(Json::as_f64) {
        Some(ratio) => {
            let failed = ratio.is_nan() || ratio < 10.0;
            if note(summary, format!("scan/delta rows ratio {ratio:.1}x (gate ≥ 10x)"), failed) {
                failures.push(format!("fig_writes rows_ratio {ratio:.1}x < 10x"));
            }
        }
        None => failures.push("fig_writes rows_ratio missing".to_string()),
    }

    let burst_ratio = fresh.get("bursts").and_then(|b| match b {
        Json::Arr(rows) => rows
            .iter()
            .find(|r| r.get("burst").and_then(Json::as_f64) == Some(256.0))
            .and_then(|r| r.get("ratio_vs_single"))
            .and_then(Json::as_f64),
        _ => None,
    });
    match burst_ratio {
        Some(ratio) => {
            let failed = ratio.is_nan() || ratio > 2.0;
            if note(
                summary,
                format!("256-write burst flush {ratio:.2}x one write's flush (gate ≤ 2x)"),
                failed,
            ) {
                failures.push(format!("fig_writes burst-256 ratio {ratio:.2}x > 2x"));
            }
        }
        None => failures.push("fig_writes burst-256 row missing".to_string()),
    }

    // Maintenance-cost regression vs the committed report: the delta
    // path's sim ms/write is deterministic at equal scale, so any growth
    // beyond slack for intentional cost-model tweaks is a regression.
    let delta_cost = |doc: &Json| {
        doc.get("figures")
            .and_then(|f| f.get("fig_writes"))
            .and_then(|f| f.get("rows"))
            .and_then(|rows| match rows {
                Json::Arr(rows) => rows
                    .iter()
                    .find(|r| matches!(r.get("mode"), Some(Json::Str(m)) if m == "delta"))
                    .and_then(|r| r.get("sim_ms_per_write"))
                    .and_then(Json::as_f64),
                _ => None,
            })
    };
    if let (Some(old_cost), Some(new_cost)) = (delta_cost(old), delta_cost(new)) {
        let failed = new_cost > old_cost * 1.25;
        if note(
            summary,
            format!("delta sim ms/write {old_cost:.2} → {new_cost:.2} (gate ≤ 1.25x committed)"),
            failed,
        ) {
            failures.push(format!(
                "fig_writes delta sim ms/write regressed {old_cost:.2} → {new_cost:.2}"
            ));
        }
    }
    failures
}
