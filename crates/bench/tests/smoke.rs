//! Smoke tests for the experiment harness: run the report pipeline's entry
//! points at tiny scale so CI exercises the same code paths as the Criterion
//! benches and the `report` binary, in seconds instead of minutes.

use bench::{
    ablation_lock_granularity, comparison_matrix, fig10_limit, fig10_micro, fig11_lock_overhead,
    fig13_mechanisms, fig_par, table1_qualitative, table3_sizes,
};

#[test]
fn fig10_micro_runs_and_views_beat_joins() {
    let rows = fig10_micro(&[25], 2, 1);
    assert_eq!(rows.len(), 2, "one row per micro query");
    for row in &rows {
        assert!(row.view_scan_ms.mean > 0.0, "{}: view scan measured", row.query);
        assert!(row.join_ms.mean > 0.0, "{}: join measured", row.query);
        // The paper's central micro-result: scanning the materialized view is
        // faster than the client-side join at every scale.
        assert!(
            row.speedup > 1.0,
            "{}: view scan should beat the join (speedup {})",
            row.query,
            row.speedup
        );
    }
}

#[test]
fn fig10_limit_companion_is_o_of_k() {
    let rows = fig10_limit(&[25, 50], 10, 1, 1);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.store_rows_scanned, 10, "{} customers", row.customers);
    }
}

#[test]
fn fig10_micro_parallel_sim_times_only_improve() {
    // Answer equivalence across thread counts is asserted row-for-row at
    // the lower layers (query par_exec tests, tpcw micro tests); this
    // checks the harness-level invariant that sim time can only improve
    // under the max-of-workers merge rule.
    let serial = fig10_micro(&[25], 1, 1);
    let parallel = fig10_micro(&[25], 1, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.query, p.query);
        assert!(p.view_scan_ms.mean <= s.view_scan_ms.mean + 1e-9);
        assert!(p.join_ms.mean <= s.join_ms.mean + 1e-9);
    }
}

#[test]
fn fig_par_sweep_runs_at_tiny_scale() {
    let rows = fig_par(25, &[1, 2], 1);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].threads, 1);
    assert!(rows.iter().all(|r| r.view_scan_ms.mean > 0.0 && r.join_ms.mean > 0.0));
    assert!(rows[1].join_ms.mean <= rows[0].join_ms.mean);
}

#[test]
fn fig11_lock_overhead_grows_with_lock_count() {
    let rows = fig11_lock_overhead(&[1, 8], 2);
    assert_eq!(rows.len(), 2);
    assert!(
        rows[1].overhead_ms.mean > rows[0].overhead_ms.mean,
        "locking 8 rows must cost more than locking 1 ({} vs {})",
        rows[1].overhead_ms.mean,
        rows[0].overhead_ms.mean
    );
}

#[test]
fn comparison_matrix_and_table3_at_tiny_scale() {
    // Backs Fig. 12, Fig. 14, Table II and Table III.
    let matrix = comparison_matrix(20, 1);
    assert_eq!(matrix.statements.len(), 24, "11 joins + 13 writes");
    assert!(matrix.systems.len() >= 4, "all evaluated systems present");

    // Table II: every HBase-backed system supports the full statement set.
    for system in ["Synergy", "MVCC-A", "MVCC-UA", "Baseline"] {
        let total = matrix
            .total_ms(system)
            .unwrap_or_else(|| panic!("{system} should support every statement"));
        assert!(total > 0.0);
    }

    // The headline result: Synergy's full benchmark is faster than Baseline's.
    let synergy = matrix.total_ms("Synergy").unwrap();
    let baseline = matrix.total_ms("Baseline").unwrap();
    assert!(
        synergy < baseline,
        "Synergy ({synergy} ms) should beat Baseline ({baseline} ms)"
    );

    // Table III: sizes derive from the same matrix; views cost extra space.
    let sizes = table3_sizes(&matrix);
    assert!(!sizes.is_empty());
    let relative = |name: &str| {
        sizes
            .iter()
            .find(|r| r.system == name)
            .map(|r| r.relative_to_baseline)
            .unwrap_or_else(|| panic!("{name} missing from Table III"))
    };
    assert!((relative("Baseline") - 1.0).abs() < 1e-9);
    assert!(
        relative("Synergy") > 1.0,
        "materialized views must add storage over Baseline"
    );
}

#[test]
fn ablation_single_lock_beats_per_row_locks() {
    let rows = ablation_lock_granularity(&[1, 16]);
    assert_eq!(rows.len(), 2);
    let many = &rows[1];
    assert!(
        many.single_lock_ms < many.per_row_locks_ms,
        "one hierarchical lock ({} ms) must be cheaper than {} row locks ({} ms)",
        many.single_lock_ms,
        many.rows_touched,
        many.per_row_locks_ms
    );
}

#[test]
fn qualitative_tables_are_populated() {
    assert!(!table1_qualitative().is_empty());
    assert!(!fig13_mechanisms().is_empty());
}
