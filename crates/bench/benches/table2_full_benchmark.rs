//! Table II benchmark: the full TPC-W statement set (11 joins + 13 writes)
//! executed end to end on the HBase-backed systems.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tpcw::queries::join_queries;
use tpcw::systems::{build_system, SystemKind};
use tpcw::writes::write_statements;
use tpcw::{TpcwDataset, TpcwScale};

fn table2(c: &mut Criterion) {
    let scale = TpcwScale::new(60);
    let dataset = TpcwDataset::generate(scale);
    let mut group = c.benchmark_group("table2_full_benchmark");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    // VoltDB is excluded from Table II in the paper because it does not
    // support every benchmark query.
    for kind in [
        SystemKind::Synergy,
        SystemKind::MvccA,
        SystemKind::MvccUa,
        SystemKind::Baseline,
    ] {
        let system = build_system(kind, &dataset);
        let rep = AtomicU64::new(0);
        group.bench_function(format!("all_statements/{}", system.name()), |b| {
            b.iter(|| {
                let rep = rep.fetch_add(1, Ordering::Relaxed) + 5_000;
                let mut simulated_ms = 0.0;
                for (i, query) in join_queries().iter().enumerate() {
                    let outcome = system
                        .execute(&query.statement(), &query.params(scale, rep + i as u64))
                        .expect("query runs");
                    simulated_ms += outcome.elapsed.as_millis_f64();
                }
                for write in write_statements() {
                    let outcome = system
                        .execute(&write.statement(), &write.params(scale, rep))
                        .expect("write runs");
                    simulated_ms += outcome.elapsed.as_millis_f64();
                }
                black_box(simulated_ms)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
