//! Ablation benches for the design choices DESIGN.md calls out: the cost of
//! the offline view-generation pipeline and of lock granularity.

use bench::ablation_lock_granularity;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use synergy::selection::select_views;
use synergy::viewgen::generate_candidate_views;
use tpcw::schema::{tpcw_roots, tpcw_schema};
use tpcw::writes::full_workload;

fn ablations(c: &mut Criterion) {
    let schema = tpcw_schema();
    let workload = full_workload();
    let roots = tpcw_roots();

    let mut group = c.benchmark_group("ablation");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    group.bench_function("candidate_view_generation/tpcw", |b| {
        b.iter(|| black_box(generate_candidate_views(&schema, &workload, &roots)))
    });
    let candidates = generate_candidate_views(&schema, &workload, &roots);
    group.bench_function("view_selection_and_rewrite/tpcw", |b| {
        b.iter(|| black_box(select_views(&schema, &candidates, &workload)))
    });
    group.bench_function("lock_granularity/100_rows", |b| {
        b.iter(|| black_box(ablation_lock_granularity(&[100])))
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
