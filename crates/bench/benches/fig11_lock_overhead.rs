//! Figure 11 benchmark: overhead of acquiring and releasing row locks via
//! checkAndPut on the NoSQL store.

use bench::fig11_lock_overhead;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_lock_overhead");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for locks in [10u64, 100, 1000] {
        group.bench_function(format!("{locks}_locks"), |b| {
            b.iter(|| black_box(fig11_lock_overhead(&[locks], 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
