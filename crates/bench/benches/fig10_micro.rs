//! Figure 10 benchmark: view scan vs join algorithm on the TPC-W
//! micro-benchmark (Customer / Orders / Order_line, 1:10 cardinality).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use tpcw::micro::MicroBench;

fn fig10(c: &mut Criterion) {
    let bench = MicroBench::build(50).expect("micro benchmark builds");
    let mut group = c.benchmark_group("fig10_micro");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for (query_index, label) in [(0usize, "q1_customer_orders"), (1, "q2_customer_orders_lines")] {
        // One sample answers the query twice (view scan + join algorithm);
        // report throughput over the rows both evaluations return.
        let result_rows = bench.measure(query_index).expect("measurement").result_rows as u64;
        group.throughput(Throughput::Elements(2 * result_rows));
        group.bench_function(format!("{label}/view_scan_vs_join"), |b| {
            b.iter(|| {
                let measurement = bench.measure(query_index).expect("measurement");
                black_box(measurement.speedup())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
