//! Figure 12 benchmark: the eleven TPC-W join queries on each evaluated
//! system (VoltDB, Synergy, MVCC-A, MVCC-UA, Baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tpcw::queries::join_queries;
use tpcw::systems::{build_system, SystemKind};
use tpcw::{TpcwDataset, TpcwScale};

fn fig12(c: &mut Criterion) {
    let scale = TpcwScale::new(100);
    let dataset = TpcwDataset::generate(scale);
    let mut group = c.benchmark_group("fig12_tpcw_joins");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in SystemKind::all() {
        let system = build_system(kind, &dataset);
        group.bench_function(format!("all_joins/{}", system.name()), |b| {
            b.iter(|| {
                let mut total_rows = 0usize;
                for (rep, query) in join_queries().iter().enumerate() {
                    if let Ok(outcome) =
                        system.execute(&query.statement(), &query.params(scale, rep as u64))
                    {
                        total_rows += outcome.rows;
                    }
                }
                black_box(total_rows)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
