//! Figure 14 benchmark: the thirteen TPC-W write statements on each
//! evaluated system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tpcw::systems::{build_system, SystemKind};
use tpcw::writes::write_statements;
use tpcw::{TpcwDataset, TpcwScale};

fn fig14(c: &mut Criterion) {
    let scale = TpcwScale::new(100);
    let dataset = TpcwDataset::generate(scale);
    let mut group = c.benchmark_group("fig14_tpcw_writes");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for kind in SystemKind::all() {
        let system = build_system(kind, &dataset);
        let rep = AtomicU64::new(0);
        group.bench_function(format!("all_writes/{}", system.name()), |b| {
            b.iter(|| {
                // A fresh rep per iteration keeps insert keys unique.
                let rep = rep.fetch_add(1, Ordering::Relaxed) + 1_000;
                for write in write_statements() {
                    let outcome = system
                        .execute(&write.statement(), &write.params(scale, rep))
                        .expect("write runs");
                    black_box(outcome.elapsed);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
