//! Table III benchmark: loading the scaled TPC-W database into each system
//! and accounting its storage footprint (the quantity behind Table III).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tpcw::systems::{build_system, SystemKind};
use tpcw::{TpcwDataset, TpcwScale};

fn table3(c: &mut Criterion) {
    let dataset = TpcwDataset::generate(TpcwScale::new(50));
    let mut group = c.benchmark_group("table3_database_sizes");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for kind in [SystemKind::Synergy, SystemKind::Baseline, SystemKind::VoltDb] {
        group.bench_function(format!("load_and_measure/{}", kind.name()), |b| {
            b.iter(|| {
                let system = build_system(kind, &dataset);
                black_box(system.database_size_bytes())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
