//! R1 (determinism), R3 (cost-accounting), R4 (panic-freedom) and pragma
//! validation.  R2 (lock-discipline) lives in [`crate::locks`].

use crate::model::{FileKind, FileModel};
use crate::{Violation, RULE_COST, RULE_DETERMINISM, RULE_PANIC, RULE_PRAGMA};

/// Crates whose library code feeds the deterministic sim figures: any
/// wall-clock read, RNG draw or hash-ordered iteration there can drift the
/// 45-value sim-identity gate.
pub const SIM_CRATES: &[&str] = &["simclock", "nosql-store", "synergy", "query", "tpcw"];

/// Crates whose library code must return the retryable `StoreError`
/// taxonomy instead of panicking (fault- and recovery-path discipline).
pub const PANIC_FREE_CRATES: &[&str] = &["nosql-store", "synergy", "query"];

/// R1 — determinism: forbid wall-clock reads, ambient RNG and
/// hash-ordered containers in sim-figure-affecting library code.
pub fn determinism(crate_name: &str, kind: FileKind, path: &str, m: &FileModel, out: &mut Vec<Violation>) {
    if kind != FileKind::Lib || !SIM_CRATES.contains(&crate_name) {
        return;
    }
    let mut flagged_lines = std::collections::BTreeSet::new();
    for (i, t) in m.tokens.iter().enumerate() {
        if m.in_test_region(i) {
            continue;
        }
        let msg = if t.is_ident("Instant")
            && m.tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && m.tokens.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            Some("`Instant::now()` reads the wall clock in a sim-figure-affecting crate; use the `SimClock` (or justify a wall-clock companion measurement)".to_string())
        } else if t.is_ident("SystemTime") {
            Some("`SystemTime` is nondeterministic in a sim-figure-affecting crate; sim time comes from `SimClock`".to_string())
        } else if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            Some(format!(
                "`{}` draws ambient randomness in a sim-figure-affecting crate; seed RNGs deterministically",
                t.text
            ))
        } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
            Some(format!(
                "`{}` in a sim-figure-affecting crate: its iteration order is nondeterministic; use `BTreeMap`/`BTreeSet`, or justify lookup-only use",
                t.text
            ))
        } else {
            None
        };
        if let Some(msg) = msg {
            if flagged_lines.insert((t.line, t.text.clone())) {
                out.push(Violation::new(RULE_DETERMINISM, path, t.line, msg, m));
            }
        }
    }
}

/// R3 — cost-accounting: every public `Cluster` method in `cluster.rs`
/// that touches region state must route through the charged path
/// (`charge` / `cost_model` / `with_retry`) or carry an explicit
/// uncharged pragma (`table_stats` is the documented precedent).
pub fn cost_accounting(path: &str, m: &FileModel, out: &mut Vec<Violation>) {
    if !path.ends_with("nosql-store/src/cluster.rs") {
        return;
    }
    for f in &m.functions {
        if !f.is_pub
            || f.impl_type.as_deref() != Some("Cluster")
            || m.in_test_region(f.body.0)
        {
            continue;
        }
        let body = &m.tokens[f.body.0..=f.body.1];
        // "Touches region state": a `.regions` field access anywhere in the
        // body (covers table region vectors and the replication registry).
        let touches = body
            .windows(2)
            .any(|w| w[0].is_punct('.') && w[1].is_ident("regions"));
        if !touches {
            continue;
        }
        let charges = body.iter().any(|t| {
            t.is_ident("charge") || t.is_ident("cost_model") || t.is_ident("with_retry")
        });
        if !charges {
            out.push(Violation::new(
                RULE_COST,
                path,
                f.line,
                format!(
                    "public `Cluster::{}` touches region state but never reaches the cost \
                     model (`charge`/`cost_model`/`with_retry`); charge the op or add \
                     `// lint-allow(cost-accounting): <reason>`",
                    f.name
                ),
                m,
            ));
        }
    }
}

/// R4 — panic-freedom: no `unwrap` / `expect` / `panic!` family in library
/// code of the retry-/recovery-path crates; test code exempt.
pub fn panic_freedom(crate_name: &str, kind: FileKind, path: &str, m: &FileModel, out: &mut Vec<Violation>) {
    if kind != FileKind::Lib || !PANIC_FREE_CRATES.contains(&crate_name) {
        return;
    }
    for (i, t) in m.tokens.iter().enumerate() {
        if m.in_test_region(i) {
            continue;
        }
        let next_is = |ch| m.tokens.get(i + 1).is_some_and(|n: &crate::lexer::Token| n.is_punct(ch));
        let msg = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && next_is('(')
            && i > 0
            && m.tokens[i - 1].is_punct('.')
        {
            Some(format!(
                "`.{}()` can panic on a fault path; return the retryable `StoreError`/error \
                 taxonomy (or propagate poison with `unwrap_or_else(PoisonError::into_inner)`)",
                t.text
            ))
        } else if (t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented"))
            && next_is('!')
        {
            Some(format!(
                "`{}!` in library code of a panic-free crate; return an error or justify the \
                 invariant with a pragma",
                t.text
            ))
        } else {
            None
        };
        if let Some(msg) = msg {
            out.push(Violation::new(RULE_PANIC, path, t.line, msg, m));
        }
    }
}

/// Pragma hygiene: unknown rule slugs and missing reasons are violations —
/// a suppression without a justification is worse than none.
pub fn pragma_hygiene(path: &str, m: &FileModel, out: &mut Vec<Violation>) {
    for p in &m.pragmas {
        if !crate::KNOWN_RULES.contains(&p.rule.as_str()) {
            out.push(Violation::new(
                RULE_PRAGMA,
                path,
                p.line,
                format!(
                    "pragma names unknown rule `{}` (known: {})",
                    p.rule,
                    crate::KNOWN_RULES.join(", ")
                ),
                m,
            ));
        } else if p.missing_reason {
            out.push(Violation::new(
                RULE_PRAGMA,
                path,
                p.line,
                format!(
                    "pragma `lint-allow({})` is missing its reason — write \
                     `// lint-allow({}): <why this is sound>`",
                    p.rule, p.rule
                ),
                m,
            ));
        }
    }
}
