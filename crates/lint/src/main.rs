//! `cargo run -p lint [-- OPTIONS]` — run the workspace invariant linter.
//!
//! Exit codes: 0 clean, 1 violations or stale baseline entries, 2 usage or
//! I/O error.

use lint::{baseline, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    write_baseline: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

const USAGE: &str = "usage: lint [--root PATH] [--baseline PATH] [--format human|json] \
[--out PATH] [--write-baseline]

  --root PATH        workspace root to scan (default: nearest dir with Cargo.toml)
  --baseline PATH    baseline file (default: <root>/lint_baseline.txt if present)
  --format FMT       report format: human (default) or json
  --out PATH         also write the report to PATH
  --write-baseline   rewrite the baseline to cover all current violations
                     (reasons are stubbed; edit them before committing)";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        root: find_root(),
        baseline: None,
        format: Format::Human,
        out: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--root" => opts.root = PathBuf::from(val("--root")?),
            "--baseline" => opts.baseline = Some(PathBuf::from(val("--baseline")?)),
            "--out" => opts.out = Some(PathBuf::from(val("--out")?)),
            "--format" => {
                opts.format = match val("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Nearest ancestor of the current directory containing a `crates/` dir —
/// lets the binary run from anywhere inside the workspace.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("lint: {e}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let sources = match lint::collect_sources(&opts.root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    let files_scanned = sources.len();
    let violations = lint::lint_sources(&sources);

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint_baseline.txt"));
    let entries = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path).map_err(|e| e.to_string()).and_then(|t| baseline::parse(&t)) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    if opts.write_baseline {
        let entries: Vec<baseline::BaselineEntry> = violations
            .iter()
            .map(|v| baseline::BaselineEntry {
                rule: v.rule.to_string(),
                file: v.file.clone(),
                fingerprint: v.fingerprint.clone(),
                reason: format!("pre-existing (line {}); TODO justify or fix", v.line),
            })
            .collect();
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&entries)) {
            eprintln!("lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "lint: wrote {} entr{} to {}",
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let (fresh, baselined, stale) = baseline::apply(violations, &entries);
    let run = report::RunReport { fresh: &fresh, baselined, stale: &stale, files_scanned };
    let rendered = match opts.format {
        Format::Human => report::human(&run),
        Format::Json => report::json(&run),
    };
    print!("{rendered}");
    if let Some(out) = &opts.out {
        // The artifact is always JSON, whatever the console format.
        let artifact = report::json(&run);
        if let Err(e) = std::fs::write(out, artifact) {
            eprintln!("lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if run.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
