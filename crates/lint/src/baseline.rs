//! The committed violation baseline.
//!
//! Format — one entry per line, `|`-separated, `#` comments allowed:
//!
//! ```text
//! <rule>|<file>|<fingerprint>|<reason>
//! ```
//!
//! Fingerprints hash the rule, file and trimmed source-line text (plus an
//! occurrence index for identical lines), so entries survive unrelated
//! line-number drift but die with the code they describe.  A baseline entry
//! whose violation has vanished is **stale** and fails the gate: baselines
//! must shrink as violations are fixed, never rot.

use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub fingerprint: String,
    pub reason: String,
}

/// Parses baseline text.  Malformed lines are returned as errors (the gate
/// refuses to run against a corrupt baseline).
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').collect();
        if parts.len() != 4 || parts[3].trim().is_empty() {
            return Err(format!(
                "baseline line {}: expected `rule|file|fingerprint|reason` with a \
                 non-empty reason, got: {line}",
                i + 1
            ));
        }
        out.push(BaselineEntry {
            rule: parts[0].trim().to_string(),
            file: parts[1].trim().to_string(),
            fingerprint: parts[2].trim().to_string(),
            reason: parts[3].trim().to_string(),
        });
    }
    Ok(out)
}

/// Renders entries back to baseline text (with the header comment).
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut s = String::from(
        "# Lint baseline: pre-existing violations suppressed with a reason.\n\
         # Format: rule|file|fingerprint|reason  (see README \"Static analysis\").\n",
    );
    for e in entries {
        let _ = writeln!(s, "{}|{}|{}|{}", e.rule, e.file, e.fingerprint, e.reason);
    }
    s
}

/// Splits fresh violations against the baseline.  Returns
/// (non-baselined violations, matched entry count, stale entries).
pub fn apply(
    violations: Vec<crate::Violation>,
    baseline: &[BaselineEntry],
) -> (Vec<crate::Violation>, usize, Vec<BaselineEntry>) {
    let keys: BTreeSet<(&str, &str, &str)> = baseline
        .iter()
        .map(|e| (e.rule.as_str(), e.file.as_str(), e.fingerprint.as_str()))
        .collect();
    let mut matched: BTreeSet<(&str, &str, &str)> = BTreeSet::new();
    let mut fresh = Vec::new();
    for v in violations {
        let key = (v.rule, v.file.clone(), v.fingerprint.clone());
        if keys.contains(&(key.0, key.1.as_str(), key.2.as_str())) {
            if let Some(e) = baseline.iter().find(|e| {
                e.rule == key.0 && e.file == key.1 && e.fingerprint == key.2
            }) {
                matched.insert((
                    e.rule.as_str(),
                    e.file.as_str(),
                    e.fingerprint.as_str(),
                ));
            }
        } else {
            fresh.push(v);
        }
    }
    let stale: Vec<BaselineEntry> = baseline
        .iter()
        .filter(|e| {
            !matched.contains(&(e.rule.as_str(), e.file.as_str(), e.fingerprint.as_str()))
        })
        .cloned()
        .collect();
    let matched_count = matched.len();
    (fresh, matched_count, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let entries = vec![BaselineEntry {
            rule: "panic-freedom".into(),
            file: "crates/x/src/lib.rs".into(),
            fingerprint: "deadbeef".into(),
            reason: "invariant: map populated above".into(),
        }];
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn rejects_reasonless_entries() {
        assert!(parse("panic-freedom|f.rs|abc|").is_err());
        assert!(parse("only|three|fields").is_err());
    }
}
