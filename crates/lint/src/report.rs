//! Human and JSON renderings of a lint run.  JSON is hand-rolled (the
//! workspace builds offline; the serde shim is for the product crates, not
//! tooling) — the schema is flat enough that escaping strings suffices.

use crate::baseline::BaselineEntry;
use crate::Violation;
use std::fmt::Write as _;

/// Everything a run produced, ready to render.
pub struct RunReport<'a> {
    /// Violations not covered by the baseline.
    pub fresh: &'a [Violation],
    /// Count of baseline entries that matched a live violation.
    pub baselined: usize,
    /// Baseline entries whose violation no longer exists.
    pub stale: &'a [BaselineEntry],
    /// Total files scanned.
    pub files_scanned: usize,
}

impl RunReport<'_> {
    /// Gate verdict: clean means nothing fresh and nothing stale.
    pub fn clean(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }
}

/// Human-readable report (the default `cargo run -p lint` output).
pub fn human(r: &RunReport) -> String {
    let mut s = String::new();
    for v in r.fresh {
        let _ = writeln!(s, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        if !v.snippet.is_empty() {
            let _ = writeln!(s, "    | {}", v.snippet);
        }
        let _ = writeln!(s, "    = fingerprint {}", v.fingerprint);
    }
    for e in r.stale {
        let _ = writeln!(
            s,
            "{}: [baseline] stale entry {}|{} — the violation it suppressed is gone; \
             remove the line (reason was: {})",
            e.file, e.rule, e.fingerprint, e.reason
        );
    }
    let mut by_rule: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for v in r.fresh {
        *by_rule.entry(v.rule).or_insert(0) += 1;
    }
    let counts = if by_rule.is_empty() {
        "none".to_string()
    } else {
        by_rule
            .iter()
            .map(|(k, n)| format!("{k}: {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(
        s,
        "lint: {} file(s) scanned, {} violation(s) ({counts}), {} baselined, {} stale \
         baseline entr{}",
        r.files_scanned,
        r.fresh.len(),
        r.baselined,
        r.stale.len(),
        if r.stale.len() == 1 { "y" } else { "ies" },
    );
    let _ = writeln!(s, "lint: {}", if r.clean() { "PASS" } else { "FAIL" });
    s
}

/// JSON report (the CI artifact).
pub fn json(r: &RunReport) -> String {
    let mut s = String::from("{\n  \"schema\": \"synergy-lint/v1\",\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", r.files_scanned);
    let _ = writeln!(s, "  \"baselined\": {},", r.baselined);
    let _ = writeln!(s, "  \"pass\": {},", r.clean());
    s.push_str("  \"violations\": [");
    for (i, v) in r.fresh.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \
             \"snippet\": {}, \"fingerprint\": {}}}",
            if i == 0 { "" } else { "," },
            esc(v.rule),
            esc(&v.file),
            v.line,
            esc(&v.message),
            esc(&v.snippet),
            esc(&v.fingerprint),
        );
    }
    s.push_str(if r.fresh.is_empty() { "],\n" } else { "\n  ],\n" });
    s.push_str("  \"stale_baseline\": [");
    for (i, e) in r.stale.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"rule\": {}, \"file\": {}, \"fingerprint\": {}, \"reason\": {}}}",
            if i == 0 { "" } else { "," },
            esc(&e.rule),
            esc(&e.file),
            esc(&e.fingerprint),
            esc(&e.reason),
        );
    }
    s.push_str(if r.stale.is_empty() { "]\n" } else { "\n  ]\n" });
    s.push_str("}\n");
    s
}

/// JSON string escaping.
fn esc(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_reports_pass() {
        let fresh = vec![Violation {
            rule: crate::RULE_PANIC,
            file: "a.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
            snippet: "x.unwrap()\t".into(),
            fingerprint: "00ff".into(),
        }];
        let r = RunReport { fresh: &fresh, baselined: 1, stale: &[], files_scanned: 2 };
        let j = json(&r);
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\\t"));
        assert!(j.contains("\"pass\": false"));
        let empty = RunReport { fresh: &[], baselined: 0, stale: &[], files_scanned: 2 };
        assert!(json(&empty).contains("\"pass\": true"));
        assert!(human(&empty).contains("PASS"));
    }
}
