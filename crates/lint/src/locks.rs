//! R2 — lock discipline.
//!
//! Extracts a static lock-acquisition graph per crate from nested
//! `.lock()` / `.read()` / `.write()` scopes and fails on:
//!
//! * **order cycles** — module A acquires `tables` then `regions`, module B
//!   acquires `regions` then `tables`: a classic ABBA deadlock;
//! * **same-resource re-entry** — a second acquisition of a resource whose
//!   guard is still live in the same function;
//! * **guards bound across a pool fan-out** — holding any guard across
//!   `pool::map` / `pool::map_chunked` / `std::thread::scope` serializes the
//!   fan-out at best and deadlocks it at worst.
//!
//! A *resource* is the final field segment of the receiver chain
//! (`self.inner.replication.lock()` → `replication`); guards bound by `let`
//! live to the end of their block (or an explicit `drop(guard)`), `for` /
//! `match` header temporaries live through the loop/match body, and other
//! temporaries die at the end of their statement — mirroring Rust's actual
//! temporary-lifetime rules closely enough for a linter.
//!
//! Nesting edges are propagated one call level deep: when a function holds
//! a guard and calls another function *of the same crate whose name is
//! defined exactly once* (ambiguous names are skipped — better to miss an
//! edge than invent one), every resource the callee may transitively lock
//! becomes an edge.  Self-edges from call summaries are ignored: the
//! name-based resolution is too coarse to claim re-entry through them.

use crate::lexer::{TokKind, Token};
use crate::model::FileModel;
use std::collections::{BTreeMap, BTreeSet};

/// One lock-nesting edge: `from` held while `to` was acquired.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    /// True when derived through a call summary rather than direct nesting.
    pub via_call: bool,
}

/// Per-file facts, merged per crate by the driver.
#[derive(Debug, Default)]
pub struct LockFacts {
    pub edges: Vec<Edge>,
    /// Function name → resources it locks directly (body scope).
    pub fn_locks: BTreeMap<String, BTreeSet<String>>,
    /// Function name → callee names it invokes.
    pub fn_calls: BTreeMap<String, BTreeSet<String>>,
    /// Times each function name is defined (ambiguity filter).
    pub fn_defs: BTreeMap<String, usize>,
    /// Functions that fan out onto the pool directly.
    pub fn_fanout: BTreeSet<String>,
    /// Calls made while holding guards: (caller, callee, held, file, line).
    pub guarded_calls: Vec<(String, String, Vec<String>, String, usize)>,
    /// Direct violations found during extraction (re-entry, fan-out).
    pub direct: Vec<(String, usize, String)>,
}

#[derive(Debug, Clone)]
struct Guard {
    resource: String,
    name: Option<String>,
}

/// Extracts lock facts from one file's functions (test regions excluded).
pub fn extract(path: &str, model: &FileModel) -> LockFacts {
    let mut facts = LockFacts::default();
    for f in &model.functions {
        if model.in_test_region(f.body.0) {
            continue;
        }
        *facts.fn_defs.entry(f.name.clone()).or_insert(0) += 1;
        scan_body(path, model, f.name.as_str(), f.body, &mut facts);
    }
    facts
}

fn scan_body(
    path: &str,
    model: &FileModel,
    fn_name: &str,
    body: (usize, usize),
    facts: &mut LockFacts,
) {
    let tokens = &model.tokens;
    // Block stack of let-bound guards; `temps` are statement temporaries.
    let mut frames: Vec<Vec<Guard>> = vec![Vec::new()];
    let mut temps: Vec<Guard> = Vec::new();
    // The most recent control keyword since the last statement boundary —
    // decides whether header temporaries outlive the `{` that follows.
    let mut header: Option<&'static str> = None;
    let mut i = body.0 + 1;
    while i < body.1 {
        let t = &tokens[i];
        if t.is_punct('{') {
            match header {
                // `if` / `while` condition temporaries drop before the block.
                Some("if") | Some("while") => temps.clear(),
                // `for` iterator and `match` scrutinee temporaries live
                // through the body: move them into the new frame.
                Some("for") | Some("match") => {
                    let moved = std::mem::take(&mut temps);
                    frames.push(moved);
                    header = None;
                    i += 1;
                    continue;
                }
                _ => {}
            }
            header = None;
            frames.push(Vec::new());
        } else if t.is_punct('}') {
            frames.pop();
            if frames.is_empty() {
                break;
            }
        } else if t.is_punct(';') {
            temps.clear();
            header = None;
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "if" | "while" | "for" | "match" => {
                    header = Some(match t.text.as_str() {
                        "if" => "if",
                        "while" => "while",
                        "for" => "for",
                        _ => "match",
                    });
                }
                "drop" if tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                    if let Some(name_tok) = tokens.get(i + 2) {
                        if name_tok.kind == TokKind::Ident
                            && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
                        {
                            let name = &name_tok.text;
                            for frame in &mut frames {
                                frame.retain(|g| g.name.as_deref() != Some(name));
                            }
                            temps.retain(|g| g.name.as_deref() != Some(name));
                        }
                    }
                }
                "lock" | "read" | "write"
                    if tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && tokens.get(i + 2).is_some_and(|n| n.is_punct(')'))
                        && i > body.0 + 1
                        && tokens[i - 1].is_punct('.') =>
                {
                    if let Some((resource, recv_start)) = receiver_resource(tokens, i - 2) {
                        let line = t.line;
                        let held: Vec<&Guard> =
                            frames.iter().flatten().chain(temps.iter()).collect();
                        for g in &held {
                            if g.resource == resource {
                                facts.direct.push((
                                    path.to_string(),
                                    line,
                                    format!(
                                        "`{resource}` re-acquired while its own guard is live \
                                         (self-deadlock)"
                                    ),
                                ));
                            } else {
                                facts.edges.push(Edge {
                                    from: g.resource.clone(),
                                    to: resource.clone(),
                                    file: path.to_string(),
                                    line,
                                    via_call: false,
                                });
                            }
                        }
                        facts
                            .fn_locks
                            .entry(fn_name.to_string())
                            .or_default()
                            .insert(resource.clone());
                        let guard = Guard {
                            resource,
                            name: let_binding(tokens, recv_start),
                        };
                        if guard.name.is_some() {
                            frames.last_mut().expect("frame stack non-empty").push(guard);
                        } else {
                            temps.push(guard);
                        }
                        i += 3;
                        continue;
                    }
                }
                _ => {
                    // Fan-out sites: pool::map / pool::map_chunked /
                    // thread::scope.
                    let fanout = (t.is_ident("map") || t.is_ident("map_chunked"))
                        && path_prefix_is(tokens, i, "pool")
                        || t.is_ident("scope") && path_prefix_is(tokens, i, "thread");
                    if fanout {
                        facts.fn_fanout.insert(fn_name.to_string());
                        let held: Vec<String> = frames
                            .iter()
                            .flatten()
                            .chain(temps.iter())
                            .map(|g| g.resource.clone())
                            .collect();
                        if !held.is_empty() {
                            facts.direct.push((
                                path.to_string(),
                                t.line,
                                format!(
                                    "guard(s) [{}] held across a pool fan-out (`{}`)",
                                    held.join(", "),
                                    t.text
                                ),
                            ));
                        }
                    } else if tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                        // Plain call: record for the crate-level summary.
                        facts
                            .fn_calls
                            .entry(fn_name.to_string())
                            .or_default()
                            .insert(t.text.clone());
                        let held: Vec<String> = frames
                            .iter()
                            .flatten()
                            .chain(temps.iter())
                            .map(|g| g.resource.clone())
                            .collect();
                        if !held.is_empty() {
                            facts.guarded_calls.push((
                                fn_name.to_string(),
                                t.text.clone(),
                                held,
                                path.to_string(),
                                t.line,
                            ));
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Walks the receiver chain backwards from `end` (the token before the
/// `.lock()` dot).  Returns (resource name, index of the chain's first
/// token).  `state.regions` → `regions`; `table()` → `table()`.
fn receiver_resource(tokens: &[Token], end: usize) -> Option<(String, usize)> {
    let mut j = end as isize;
    let mut resource: Option<String> = None;
    let mut start = end;
    loop {
        if j < 0 {
            break;
        }
        let t = &tokens[j as usize];
        if t.is_punct(')') {
            // A call segment: find the matching `(` and the callee ident.
            let mut depth = 0;
            let mut k = j;
            while k >= 0 {
                if tokens[k as usize].is_punct(')') {
                    depth += 1;
                } else if tokens[k as usize].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k <= 0 {
                break;
            }
            let callee = &tokens[(k - 1) as usize];
            if callee.kind != TokKind::Ident {
                break;
            }
            if resource.is_none() {
                resource = Some(format!("{}()", callee.text));
            }
            start = (k - 1) as usize;
            j = k - 2;
        } else if t.kind == TokKind::Ident {
            if resource.is_none() {
                resource = Some(t.text.clone());
            }
            start = j as usize;
            j -= 1;
        } else {
            break;
        }
        // Continue only through a `.` path separator.
        if j >= 0 && tokens[j as usize].is_punct('.') {
            j -= 1;
        } else {
            break;
        }
    }
    // `self`-only chains (`self.lock()`) name no resource; skip them.
    resource.filter(|r| r != "self").map(|r| (r, start))
}

/// If the receiver chain starting at `start` is the RHS of `let [mut] g =`,
/// returns the binding name.
fn let_binding(tokens: &[Token], start: usize) -> Option<String> {
    if start < 3 || !tokens[start - 1].is_punct('=') {
        return None;
    }
    let name = &tokens[start - 2];
    if name.kind != TokKind::Ident {
        return None;
    }
    let kw = &tokens[start - 3];
    let is_let = kw.is_ident("let")
        || (kw.is_ident("mut") && start >= 4 && tokens[start - 4].is_ident("let"));
    is_let.then(|| name.text.clone())
}

/// True when the ident at `i` is qualified as `<seg>::ident`.
fn path_prefix_is(tokens: &[Token], i: usize, seg: &str) -> bool {
    i >= 3
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].is_punct(':')
        && tokens[i - 3].is_ident(seg)
}

/// Crate-level analysis: merge per-file facts, close call summaries, then
/// report order cycles / fan-out-through-calls.  Returns
/// (message, file, line) triples.
pub fn analyze_crate(all: Vec<LockFacts>) -> Vec<(String, String, usize)> {
    let mut merged = LockFacts::default();
    for f in all {
        merged.edges.extend(f.edges);
        for (k, v) in f.fn_locks {
            merged.fn_locks.entry(k).or_default().extend(v);
        }
        for (k, v) in f.fn_calls {
            merged.fn_calls.entry(k).or_default().extend(v);
        }
        for (k, v) in f.fn_defs {
            *merged.fn_defs.entry(k).or_insert(0) += v;
        }
        merged.fn_fanout.extend(f.fn_fanout);
        merged.guarded_calls.extend(f.guarded_calls);
        merged.direct.extend(f.direct);
    }
    let mut out: Vec<(String, String, usize)> = merged
        .direct
        .iter()
        .map(|(file, line, msg)| (msg.clone(), file.clone(), *line))
        .collect();

    // Transitive may-lock / may-fanout over unambiguous same-crate calls.
    let resolvable =
        |name: &str| merged.fn_defs.get(name).copied().unwrap_or(0) == 1;
    let mut may_lock = merged.fn_locks.clone();
    let mut may_fanout: BTreeSet<String> = merged.fn_fanout.clone();
    loop {
        let mut changed = false;
        for (caller, callees) in &merged.fn_calls {
            for callee in callees.iter().filter(|c| resolvable(c)) {
                let add: Vec<String> = may_lock
                    .get(callee)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                if !add.is_empty() {
                    let set = may_lock.entry(caller.clone()).or_default();
                    for r in add {
                        changed |= set.insert(r);
                    }
                }
                if may_fanout.contains(callee) && may_fanout.insert(caller.clone()) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges and fan-outs reached through calls made under a guard.
    let mut edges = merged.edges;
    for (_, callee, held, file, line) in &merged.guarded_calls {
        if !resolvable(callee) {
            continue;
        }
        if may_fanout.contains(callee) {
            out.push((
                format!(
                    "guard(s) [{}] held across call to `{callee}`, which fans out \
                     onto the thread pool",
                    held.join(", ")
                ),
                file.clone(),
                *line,
            ));
        }
        if let Some(locked) = may_lock.get(callee) {
            for resource in locked {
                for from in held {
                    if from != resource {
                        edges.push(Edge {
                            from: from.clone(),
                            to: resource.clone(),
                            file: file.clone(),
                            line: *line,
                            via_call: true,
                        });
                    }
                }
            }
        }
    }

    // Cycle detection over the resource graph.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut sites: BTreeMap<(&str, &str), (&str, usize)> = BTreeMap::new();
    for e in &edges {
        graph.entry(&e.from).or_default().insert(&e.to);
        sites
            .entry((&e.from, &e.to))
            .or_insert((e.file.as_str(), e.line));
    }
    if let Some(cycle) = find_cycle(&graph) {
        let path = cycle.join(" -> ");
        let mut hops = Vec::new();
        for w in cycle.windows(2) {
            if let Some((file, line)) = sites.get(&(w[0], w[1])) {
                hops.push(format!("{w0}->{w1} at {file}:{line}", w0 = w[0], w1 = w[1]));
            }
        }
        let (file, line) = sites
            .get(&(cycle[0], cycle[1]))
            .copied()
            .unwrap_or(("<unknown>", 0));
        out.push((
            format!(
                "lock-order cycle: {path} (acquire sites: {})",
                hops.join("; ")
            ),
            file.to_string(),
            line,
        ));
    }
    out
}

/// Finds one cycle in the graph, returned as [a, b, …, a].
fn find_cycle<'a>(graph: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Option<Vec<&'a str>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = graph.keys().map(|&k| (k, Color::White)).collect();
    for targets in graph.values() {
        for &t in targets {
            color.entry(t).or_insert(Color::White);
        }
    }
    fn dfs<'a>(
        node: &'a str,
        graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<&'a str>> {
        color.insert(node, Color::Gray);
        stack.push(node);
        if let Some(nexts) = graph.get(node) {
            for &next in nexts {
                match color.get(next).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = stack.iter().position(|&n| n == next)?;
                        let mut cycle: Vec<&str> = stack[start..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(c) = dfs(next, graph, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }
    let nodes: Vec<&str> = color.keys().copied().collect();
    for node in nodes {
        if color.get(node).copied() == Some(Color::White) {
            let mut stack = Vec::new();
            if let Some(c) = dfs(node, graph, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}
