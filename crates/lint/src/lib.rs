//! Workspace invariant linter.
//!
//! Four rules, each encoding an invariant this repo's correctness argument
//! already leans on (see README § "Static analysis"):
//!
//! | rule            | invariant |
//! |-----------------|-----------|
//! | `determinism`   | sim-figure crates take time from `SimClock` and iterate ordered containers |
//! | `lock-discipline` | lock acquisition order is acyclic; no guard is held across a pool fan-out |
//! | `cost-accounting` | public `Cluster` ops that touch region state charge the cost model |
//! | `panic-freedom` | store/view/query library code returns errors instead of panicking |
//!
//! Suppression is per-line via `// lint-allow(<rule>): <reason>` pragmas
//! (reason mandatory), or per-violation via the committed baseline file
//! (`lint_baseline.txt`).  Stale baseline entries fail the gate.

pub mod baseline;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod report;
pub mod rules;

use model::{FileKind, FileModel};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOCKS: &str = "lock-discipline";
pub const RULE_COST: &str = "cost-accounting";
pub const RULE_PANIC: &str = "panic-freedom";
/// Meta-rule for malformed pragmas (not itself suppressible).
pub const RULE_PRAGMA: &str = "pragma";

/// Rule slugs a `lint-allow(...)` pragma may name.
pub const KNOWN_RULES: &[&str] = &[RULE_DETERMINISM, RULE_LOCKS, RULE_COST, RULE_PANIC];

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    /// Root-relative path, forward slashes.
    pub file: String,
    pub line: usize,
    pub message: String,
    /// Trimmed source line, for the report and the fingerprint.
    pub snippet: String,
    /// Content fingerprint (assigned by the driver): FNV-1a-64 of
    /// `rule|file|snippet|occurrence-index`, so baseline entries survive
    /// line-number drift but die with the code they describe.
    pub fingerprint: String,
}

impl Violation {
    pub fn new(rule: &'static str, file: &str, line: usize, message: String, m: &FileModel) -> Self {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message,
            snippet: m.line_text(line).to_string(),
            fingerprint: String::new(),
        }
    }
}

/// A source file queued for linting.
pub struct SourceFile {
    /// Crate directory name (`nosql-store`, `synergy`, …); the root package
    /// scans as `root`.
    pub crate_name: String,
    /// Path relative to the workspace root.
    pub rel_path: String,
    pub kind: FileKind,
    pub text: String,
}

/// FNV-1a 64-bit, rendered as 16 hex digits.  Stable, dependency-free and
/// good enough for content fingerprints.
pub fn fnv1a64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Walks the workspace and collects `.rs` sources: every `crates/*` member
/// plus the root package's `src/`.  Shims are excluded (vendored
/// compatibility surface, not part of the invariant story), as is anything
/// under a `fixtures/` directory (linter test inputs violate rules on
/// purpose).
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_crate(root, &dir, &name, &mut out)?;
    }
    collect_crate(root, root, "root", &mut out)?;
    Ok(out)
}

fn collect_crate(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    for (sub, default_kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("benches", FileKind::Test),
        ("examples", FileKind::Example),
    ] {
        let base = dir.join(sub);
        if !base.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&base, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rel.split('/').any(|seg| seg == "fixtures") {
                continue;
            }
            let kind = if default_kind == FileKind::Lib
                && (rel.contains("/src/bin/") || rel.ends_with("src/main.rs"))
            {
                FileKind::Bin
            } else {
                default_kind
            };
            out.push(SourceFile {
                crate_name: crate_name.to_string(),
                rel_path: rel,
                kind,
                text: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)?.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over the given sources and returns fingerprinted,
/// pragma-filtered violations sorted by (file, line, rule).
pub fn lint_sources(sources: &[SourceFile]) -> Vec<Violation> {
    let mut models: BTreeMap<&str, FileModel> = BTreeMap::new();
    let mut raw: Vec<Violation> = Vec::new();
    let mut lock_facts: BTreeMap<&str, Vec<locks::LockFacts>> = BTreeMap::new();

    for s in sources {
        let m = FileModel::parse(&s.text);
        rules::pragma_hygiene(&s.rel_path, &m, &mut raw);
        rules::determinism(&s.crate_name, s.kind, &s.rel_path, &m, &mut raw);
        rules::cost_accounting(&s.rel_path, &m, &mut raw);
        rules::panic_freedom(&s.crate_name, s.kind, &s.rel_path, &m, &mut raw);
        if matches!(s.kind, FileKind::Lib | FileKind::Bin) {
            lock_facts
                .entry(s.crate_name.as_str())
                .or_default()
                .push(locks::extract(&s.rel_path, &m));
        }
        models.insert(s.rel_path.as_str(), m);
    }

    for (_crate, facts) in lock_facts {
        for (message, file, line) in locks::analyze_crate(facts) {
            let snippet = models
                .get(file.as_str())
                .map(|m| m.line_text(line).to_string())
                .unwrap_or_default();
            raw.push(Violation {
                rule: RULE_LOCKS,
                file,
                line,
                message,
                snippet,
                fingerprint: String::new(),
            });
        }
    }

    // Inline pragmas suppress everything except pragma hygiene itself.
    raw.retain(|v| {
        v.rule == RULE_PRAGMA
            || !models
                .get(v.file.as_str())
                .is_some_and(|m| m.suppressed(v.rule, v.line))
    });

    raw.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });

    // Fingerprints: identical (rule, file, snippet) triples are
    // disambiguated by occurrence index, in file order.
    let mut seen: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for v in &mut raw {
        let key = (v.rule.to_string(), v.file.clone(), v.snippet.clone());
        let occ = seen.entry(key).or_insert(0);
        v.fingerprint = fnv1a64(&format!("{}|{}|{}|{}", v.rule, v.file, v.snippet, occ));
        *occ += 1;
    }
    raw
}

/// Convenience: collect + lint from a workspace root.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(lint_sources(&collect_sources(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_occurrences_not_lines() {
        let src = "fn a() { x.unwrap(); }\nfn b() { x.unwrap(); }\n";
        let sources = vec![SourceFile {
            crate_name: "synergy".into(),
            rel_path: "crates/synergy/src/lib.rs".into(),
            kind: FileKind::Lib,
            text: src.into(),
        }];
        let v = lint_sources(&sources);
        assert_eq!(v.len(), 2);
        assert_ne!(v[0].fingerprint, v[1].fingerprint, "occurrence index separates twins");

        // Shifting both down a line keeps both fingerprints stable.
        let shifted = format!("// header\n{src}");
        let sources2 = vec![SourceFile {
            crate_name: "synergy".into(),
            rel_path: "crates/synergy/src/lib.rs".into(),
            kind: FileKind::Lib,
            text: shifted,
        }];
        let v2 = lint_sources(&sources2);
        assert_eq!(v[0].fingerprint, v2[0].fingerprint);
        assert_eq!(v[1].fingerprint, v2[1].fingerprint);
    }

    #[test]
    fn pragma_suppresses_and_pragma_errors_survive() {
        let src = "fn a() { x.unwrap(); } // lint-allow(panic-freedom): poison cannot escape here\nfn b() { y.unwrap(); } // lint-allow(panic-freedom)\nfn c() {} // lint-allow(no-such-rule): whatever\n";
        let sources = vec![SourceFile {
            crate_name: "query".into(),
            rel_path: "crates/query/src/lib.rs".into(),
            kind: FileKind::Lib,
            text: src.into(),
        }];
        let v = lint_sources(&sources);
        // Line 1 suppressed; line 2's unwrap fires (reasonless pragma is
        // inert) plus a pragma violation; line 3 is a pragma violation.
        assert!(v.iter().any(|x| x.rule == RULE_PANIC && x.line == 2));
        assert!(!v.iter().any(|x| x.rule == RULE_PANIC && x.line == 1));
        assert_eq!(v.iter().filter(|x| x.rule == RULE_PRAGMA).count(), 2);
    }
}
