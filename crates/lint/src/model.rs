//! File-level model built on top of the token stream: pragma comments,
//! `#[cfg(test)]` regions, function and `impl` extents.

use crate::lexer::{lex, Lexed, TokKind, Token};

/// How a source file participates in the build — rules scope themselves by
/// this (e.g. panic-freedom exempts test code entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/`.
    Lib,
    /// A binary under `src/bin/` (or `src/main.rs`).
    Bin,
    /// Integration tests (`tests/`), benches and fixtures.
    Test,
    /// Runnable examples under `examples/`.
    Example,
}

/// An inline suppression: `// lint-allow(<rule>): <reason>`.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule slug the pragma names (`determinism`, `lock-discipline`,
    /// `cost-accounting`, `panic-freedom`).
    pub rule: String,
    /// Mandatory free-text justification.
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: usize,
    /// Line the pragma suppresses: its own when trailing code, otherwise
    /// the next line bearing any token.
    pub applies_to: usize,
    /// True when the reason was missing (reported as its own violation).
    pub missing_reason: bool,
}

/// A function item (free or associated).
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Unrestricted `pub` (scoped `pub(crate)` / `pub(super)` counts as
    /// private for the purposes of public-API rules).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, `{` and `}` inclusive.
    pub body: (usize, usize),
    /// Name of the innermost enclosing `impl` type, if any.
    pub impl_type: Option<String>,
}

/// Lexed + structurally annotated source file.
pub struct FileModel {
    pub tokens: Vec<Token>,
    pub lines: Vec<String>,
    pub pragmas: Vec<Pragma>,
    /// Token-index ranges gated behind `#[cfg(test)]` (inclusive).
    pub test_regions: Vec<(usize, usize)>,
    pub functions: Vec<FnInfo>,
}

impl FileModel {
    pub fn parse(src: &str) -> FileModel {
        let Lexed { tokens, comments } = lex(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let pragmas = collect_pragmas(&comments, &tokens);
        let test_regions = find_test_regions(&tokens);
        let impls = find_impls(&tokens);
        let functions = find_functions(&tokens, &impls);
        FileModel { tokens, lines, pragmas, test_regions, functions }
    }

    /// True when token index `i` is inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// True when a pragma for `rule` suppresses a violation on `line`.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.rule == rule && !p.missing_reason && p.applies_to == line)
    }

    /// Source text of a 1-based line, trimmed (for reports/fingerprints).
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|s| s.trim())
            .unwrap_or("")
    }
}

/// Parses `lint-allow(<rule>): <reason>` comments, resolving the line each
/// one suppresses.
fn collect_pragmas(comments: &[crate::lexer::Comment], tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** */`) describe the grammar; only
        // plain comments carry live pragmas.
        if matches!(c.text.as_bytes().first(), Some(b'/' | b'!' | b'*')) {
            continue;
        }
        let Some(at) = c.text.find("lint-allow(") else { continue };
        let rest = &c.text[at + "lint-allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let (reason, missing_reason) = match tail.strip_prefix(':') {
            Some(r) if !r.trim().is_empty() => (r.trim().to_string(), false),
            _ => (String::new(), true),
        };
        let applies_to = if c.trailing {
            c.line
        } else {
            // First line after the comment that carries any token.
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1)
        };
        out.push(Pragma { rule, reason, line: c.line, applies_to, missing_reason });
    }
    out
}

/// Finds `#[cfg(test)]`-gated items (modules or single functions) and
/// returns their token ranges.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                // Skip any further attributes between the cfg and the item.
                let mut j = attr_end + 1;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let (e, _) = scan_attribute(tokens, j + 1);
                    j = e + 1;
                }
                if let Some(open) = (j..tokens.len()).find(|&k| tokens[k].is_punct('{')) {
                    let close = match_brace(tokens, open);
                    out.push((i, close));
                    i = close + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Scans an attribute starting at its `[`; returns (index of `]`, whether it
/// is a `cfg(...)` mentioning `test`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i, saw_cfg && saw_test);
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") {
            saw_test = true;
        }
        i += 1;
    }
    (tokens.len().saturating_sub(1), false)
}

/// Index of the `}` matching the `{` at `open`.
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// `impl` extents: (type name, body token range).
fn find_impls(tokens: &[Token]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            // Type name: last plain identifier before the body brace (for
            // `impl Trait for Type`, that is `Type`; generic args skipped).
            let mut name = String::new();
            let mut angle = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle = (angle - 1).max(0);
                } else if t.is_punct('{') && angle == 0 {
                    break;
                } else if t.kind == TokKind::Ident && angle == 0 && t.text != "for" && t.text != "where" {
                    name = t.text.clone();
                }
                j += 1;
            }
            if j < tokens.len() {
                let close = match_brace(tokens, j);
                out.push((name, (j, close)));
                i = j + 1; // descend into the impl body for nested items
                continue;
            }
        }
        i += 1;
    }
    out
}

/// All `fn` items with name, visibility, body extent and enclosing impl.
fn find_functions(tokens: &[Token], impls: &[(String, (usize, usize))]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Visibility: walk back over modifiers; plain `pub` immediately in
        // front (not `pub(...)`) makes it public.
        let mut is_pub = false;
        let mut k = i;
        while k > 0 {
            let prev = &tokens[k - 1];
            if prev.is_ident("const")
                || prev.is_ident("unsafe")
                || prev.is_ident("async")
                || prev.is_ident("extern")
                || prev.kind == TokKind::Literal
            {
                k -= 1;
            } else if prev.is_ident("pub") {
                is_pub = true;
                break;
            } else if prev.is_punct(')') {
                // Possibly `pub(crate)` — scoped visibility, not public.
                break;
            } else {
                break;
            }
        }
        // Body: first `{` at zero paren/angle depth after the signature
        // (a `;` first means a trait method declaration — no body).
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut j = i + 2;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` is an arrow, not a generic close.
                if !tokens[j - 1].is_punct('-') {
                    angle = (angle - 1).max(0);
                }
            } else if t.is_punct(';') && paren == 0 {
                break;
            } else if t.is_punct('{') && paren == 0 && angle <= 0 {
                body = Some((j, match_brace(tokens, j)));
                break;
            }
            j += 1;
        }
        let Some(body) = body else {
            i += 2;
            continue;
        };
        let impl_type = impls
            .iter()
            .filter(|(_, (a, b))| *a <= i && i <= *b)
            .min_by_key(|(_, (a, b))| b - a)
            .map(|(n, _)| n.clone());
        out.push(FnInfo {
            name: name_tok.text.clone(),
            is_pub,
            line: tokens[i].line,
            body,
            impl_type,
        });
        i += 2; // keep scanning: nested fns/closures inside the body
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_resolution() {
        let m = FileModel::parse(
            "// lint-allow(determinism): wall-clock companion\nlet t = Instant::now();\nlet x = 1; // lint-allow(panic-freedom): justified\n// lint-allow(cost-accounting)\nfn f() {}\n",
        );
        assert_eq!(m.pragmas.len(), 3);
        assert!(m.suppressed("determinism", 2));
        assert!(m.suppressed("panic-freedom", 3));
        // Reasonless pragma never suppresses.
        assert!(!m.suppressed("cost-accounting", 5));
        assert!(m.pragmas[2].missing_reason);
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let m = FileModel::parse(
            "fn lib_code() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n",
        );
        let unwraps: Vec<usize> = m
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!m.in_test_region(unwraps[0]));
        assert!(m.in_test_region(unwraps[1]));
    }

    #[test]
    fn functions_and_impls() {
        let m = FileModel::parse(
            "impl Cluster {\n    pub fn put(&self) -> Result<(), E> { self.x() }\n    pub(crate) fn charge(&self) {}\n    fn private_helper<T: Fn(u8) -> u8>(f: T) where T: Send { f(1); }\n}\npub fn free() {}\n",
        );
        let put = m.functions.iter().find(|f| f.name == "put").unwrap();
        assert!(put.is_pub);
        assert_eq!(put.impl_type.as_deref(), Some("Cluster"));
        let charge = m.functions.iter().find(|f| f.name == "charge").unwrap();
        assert!(!charge.is_pub, "pub(crate) is not public");
        let helper = m.functions.iter().find(|f| f.name == "private_helper").unwrap();
        assert!(!helper.is_pub);
        let free = m.functions.iter().find(|f| f.name == "free").unwrap();
        assert!(free.is_pub);
        assert_eq!(free.impl_type, None);
    }
}
