//! A minimal Rust lexer: just enough to tell code from comments, strings
//! and char/lifetime literals, with line numbers on every token.
//!
//! The workspace builds offline (no `syn`), so — consistent with the shims
//! approach — the linter scans token streams produced by this ~200-line
//! lexer instead of a real AST.  The rules only need identifiers, single
//! punctuation characters and comment text (for `lint-allow` pragmas);
//! numeric and string literals are kept as opaque tokens so forbidden names
//! inside strings or comments never trip a rule.

/// What a token is.  Multi-character operators are *not* fused: `::` is two
/// `Punct(':')` tokens.  Rules that care match short token sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#async`, …).
    Ident,
    /// Integer or float literal (suffixes included).
    Number,
    /// String, raw-string, byte-string or char literal (contents opaque).
    Literal,
    /// Lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Token text; for `Punct` a single character, for `Literal` the raw
    /// source slice.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }
}

/// A comment captured during lexing (pragmas live here).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// True when source code precedes the comment on its line (a trailing
    /// comment suppresses its own line; a standalone one the next).
    pub trailing: bool,
}

/// Lexer output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source.  Unterminated constructs are tolerated (the rest of
/// the file becomes one opaque literal) — a linter must never panic on the
/// code it scans.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    let mut line_had_token = false;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_had_token = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    trailing: line_had_token,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: src[start..end].to_string(),
                    line: start_line,
                    trailing: line_had_token,
                });
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                line_had_token = true;
                i = end;
            }
            b'r' | b'b' if raw_string_hashes(b, i).is_some() => {
                let (end, nl) = scan_raw_string(b, i);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                line_had_token = true;
                i = end;
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                let end = scan_char(b, i + 1);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line_had_token = true;
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a` with no closing quote) vs char literal.
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_byte(b[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let end = scan_char(b, i);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
                line_had_token = true;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.'
                        && b.get(j + 1).is_some_and(u8::is_ascii_digit)
                        && b.get(j.wrapping_sub(1)) != Some(&b'.')
                    {
                        // `1.5` continues the number; `0..9` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text: src[i..j].to_string(),
                    line,
                });
                line_had_token = true;
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                // Raw identifier `r#name` (raw strings were handled above).
                if c == b'r' && b.get(i + 1) == Some(&b'#') && b.get(i + 2).is_some_and(|&d| is_ident_start(d)) {
                    j = i + 2;
                }
                while j < b.len() && is_ident_byte(b[j]) {
                    j += 1;
                }
                let text = src[i..j].trim_start_matches("r#").to_string();
                out.tokens.push(Token { kind: TokKind::Ident, text, line });
                line_had_token = true;
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                line_had_token = true;
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// `Some(hash_count)` when position `i` starts a raw (byte) string:
/// `r"`, `r#"`, `br##"`, …
fn raw_string_hashes(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&b'"')).then_some(hashes)
}

/// Scans a `"…"` string starting at the opening quote; returns (end index
/// past the closing quote, newlines crossed).
fn scan_string(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // A `\<newline>` line continuation still crosses a line.
                if b.get(j + 1) == Some(&b'\n') {
                    nl += 1;
                }
                j += 2;
            }
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scans a raw string `r#"…"#` (any hash count, optional `b` prefix).
fn scan_raw_string(b: &[u8], i: usize) -> (usize, usize) {
    let hashes = raw_string_hashes(b, i).unwrap_or(0);
    let mut j = i;
    while b[j] != b'"' {
        j += 1;
    }
    j += 1;
    let mut nl = 0;
    while j < b.len() {
        if b[j] == b'"' && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
        {
            return (j + 1 + hashes, nl);
        }
        if b[j] == b'\n' {
            nl += 1;
        }
        j += 1;
    }
    (j, nl)
}

/// Scans a char literal starting at the opening `'`.
fn scan_char(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// `'a` is a lifetime when the quote is followed by an identifier whose next
/// character is not another quote (`'x'` is a char literal, `'a>` is not).
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else { return false };
    if !is_ident_start(first) {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && is_ident_byte(b[j]) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_lines() {
        let lx = lex("fn main() {\n    x.lock();\n}\n");
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "main", "x", "lock"]);
        let lock = lx.tokens.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!(lock.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let lx = lex("let s = \"HashMap.unwrap()\"; // HashMap here too\n/* Instant::now */ let t = 1;");
        assert!(!lx.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("Instant")));
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].trailing);
        assert!(lx.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_chars_and_lifetimes() {
        let lx = lex("let r = r#\"unwrap() \" quote\"#; let c = '\\''; fn f<'a>(x: &'a str) {}");
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn numeric_ranges_do_not_eat_dots() {
        let lx = lex("for i in 0..10 { let f = 1.5; }");
        let nums: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5"]);
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(lx.tokens.iter().any(|t| t.is_ident("fn")));
        assert_eq!(lx.comments.len(), 1);
    }
}
