//! Fixture-driven tests: each rule proves it fires on the bad forms and
//! stays quiet on the good ones, plus the baseline round-trip and the
//! workspace-is-clean gate.

use lint::model::FileKind;
use lint::{baseline, lint_sources, SourceFile};

fn src(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.into(),
        rel_path: rel_path.into(),
        kind: FileKind::Lib,
        text: text.into(),
    }
}

#[test]
fn determinism_rule_fires_on_each_trigger() {
    let v = lint_sources(&[src(
        "tpcw",
        "crates/tpcw/src/fix.rs",
        include_str!("fixtures/determinism.rs"),
    )]);
    let det: Vec<_> = v.iter().filter(|x| x.rule == "determinism").collect();
    assert!(det.iter().any(|x| x.message.contains("Instant::now")), "{det:?}");
    assert!(det.iter().any(|x| x.message.contains("SystemTime")));
    assert!(det.iter().any(|x| x.message.contains("thread_rng")));
    assert!(det.iter().any(|x| x.message.contains("`HashMap`")));
    // Suppressed HashMap/HashSet lines and the #[cfg(test)] module stay
    // quiet; strings never count.
    assert!(!det.iter().any(|x| x.message.contains("`HashSet`")));
    assert_eq!(det.iter().filter(|x| x.message.contains("`HashMap`")).count(), 1);
    assert!(v.iter().all(|x| x.rule != "pragma"), "fixture pragmas are well-formed");
}

#[test]
fn determinism_rule_ignores_non_sim_crates_and_test_files() {
    let text = include_str!("fixtures/determinism.rs");
    let other_crate = lint_sources(&[src("bench", "crates/bench/src/fix.rs", text)]);
    assert!(other_crate.iter().all(|x| x.rule != "determinism"));
    let test_file = lint_sources(&[SourceFile {
        crate_name: "tpcw".into(),
        rel_path: "crates/tpcw/tests/fix.rs".into(),
        kind: FileKind::Test,
        text: text.into(),
    }]);
    assert!(test_file.iter().all(|x| x.rule != "determinism"));
}

#[test]
fn panic_freedom_rule_fires_on_each_trigger() {
    let v = lint_sources(&[src(
        "nosql-store",
        "crates/nosql-store/src/fix.rs",
        include_str!("fixtures/panic.rs"),
    )]);
    let pf: Vec<_> = v.iter().filter(|x| x.rule == "panic-freedom").collect();
    for needle in ["`.unwrap()`", "`.expect()`", "`panic!`", "`unreachable!`", "`todo!`", "`unimplemented!`"] {
        assert!(pf.iter().any(|x| x.message.contains(needle)), "missing {needle}: {pf:?}");
    }
    // One unwrap and one expect in library code, none from: the pragma'd
    // line, unwrap_or* variants, the free fn named unwrap, or test code.
    assert_eq!(pf.iter().filter(|x| x.message.contains("`.unwrap()`")).count(), 1);
    assert_eq!(pf.iter().filter(|x| x.message.contains("`.expect()`")).count(), 1);
    assert_eq!(pf.iter().filter(|x| x.message.contains("`panic!`")).count(), 1);
}

#[test]
fn cost_accounting_rule_keys_on_cluster_methods() {
    let text = include_str!("fixtures/cost.rs");
    let v = lint_sources(&[src(
        "nosql-store",
        "crates/nosql-store/src/cluster.rs",
        text,
    )]);
    let cost: Vec<_> = v.iter().filter(|x| x.rule == "cost-accounting").collect();
    assert_eq!(cost.len(), 1, "{cost:?}");
    assert!(cost[0].message.contains("uncharged_touch"));
    // The same file under any other path is out of the rule's scope.
    let elsewhere = lint_sources(&[src("nosql-store", "crates/nosql-store/src/other.rs", text)]);
    assert!(elsewhere.iter().all(|x| x.rule != "cost-accounting"));
}

#[test]
fn lock_discipline_rule_finds_cycles() {
    let v = lint_sources(&[src(
        "fixturecrate",
        "crates/fixturecrate/src/cycle.rs",
        include_str!("fixtures/locks_cycle.rs"),
    )]);
    let locks: Vec<_> = v.iter().filter(|x| x.rule == "lock-discipline").collect();
    assert_eq!(locks.len(), 1, "{locks:?}");
    assert!(locks[0].message.contains("lock-order cycle"));
    assert!(locks[0].message.contains("tables") && locks[0].message.contains("wal"));
}

#[test]
fn lock_discipline_rule_finds_direct_violations() {
    let v = lint_sources(&[src(
        "fixturecrate",
        "crates/fixturecrate/src/bad.rs",
        include_str!("fixtures/locks_bad.rs"),
    )]);
    let msgs: Vec<&str> = v
        .iter()
        .filter(|x| x.rule == "lock-discipline")
        .map(|x| x.message.as_str())
        .collect();
    assert!(
        msgs.iter().filter(|m| m.contains("re-acquired")).count() >= 2,
        "direct re-entry and the for-header re-entry: {msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("held across a pool fan-out")));
    assert!(
        msgs.iter().any(|m| m.contains("held across call to `helper_that_fans_out`")),
        "interprocedural fan-out: {msgs:?}"
    );
}

#[test]
fn lock_discipline_rule_accepts_disciplined_code() {
    let v = lint_sources(&[src(
        "fixturecrate",
        "crates/fixturecrate/src/ok.rs",
        include_str!("fixtures/locks_ok.rs"),
    )]);
    let locks: Vec<_> = v.iter().filter(|x| x.rule == "lock-discipline").collect();
    assert!(locks.is_empty(), "{locks:?}");
}

#[test]
fn pragma_hygiene_rejects_unknown_rules_and_missing_reasons() {
    let text = "pub fn f() {} // lint-allow(determinsim): typo'd rule\n\
                pub fn g(x: Option<u8>) -> u8 { x.unwrap() } // lint-allow(panic-freedom)\n";
    let v = lint_sources(&[src("nosql-store", "crates/nosql-store/src/fix.rs", text)]);
    assert!(v.iter().any(|x| x.rule == "pragma" && x.message.contains("unknown rule")));
    assert!(v.iter().any(|x| x.rule == "pragma" && x.message.contains("missing its reason")));
    // The reasonless pragma does not suppress: the unwrap still fires.
    assert!(v.iter().any(|x| x.rule == "panic-freedom" && x.line == 2));
}

#[test]
fn baseline_round_trip() {
    let bad = src(
        "nosql-store",
        "crates/nosql-store/src/fix.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let violations = lint_sources(std::slice::from_ref(&bad));
    assert_eq!(violations.len(), 1, "the unsuppressed unwrap fails the gate");

    // Baselining it with a reason passes the gate...
    let entries: Vec<baseline::BaselineEntry> = violations
        .iter()
        .map(|v| baseline::BaselineEntry {
            rule: v.rule.to_string(),
            file: v.file.clone(),
            fingerprint: v.fingerprint.clone(),
            reason: "known: poison cannot escape this helper".into(),
        })
        .collect();
    let text = baseline::render(&entries);
    let parsed = baseline::parse(&text).expect("rendered baseline parses");
    assert_eq!(parsed, entries);
    let (fresh, matched, stale) = baseline::apply(lint_sources(std::slice::from_ref(&bad)), &parsed);
    assert!(fresh.is_empty());
    assert_eq!(matched, 1);
    assert!(stale.is_empty());

    // ...and once the violation is fixed, the leftover entry is stale and
    // fails the gate again.
    let fixed = src(
        "nosql-store",
        "crates/nosql-store/src/fix.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n",
    );
    let (fresh, matched, stale) = baseline::apply(lint_sources(std::slice::from_ref(&fixed)), &parsed);
    assert!(fresh.is_empty());
    assert_eq!(matched, 0);
    assert_eq!(stale, parsed);
}

/// The gate itself: the workspace must lint clean against the committed
/// baseline.  A violation introduced anywhere in the tree fails this test
/// (and the dedicated CI job) until fixed, pragma'd, or baselined.
#[test]
fn workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels under the workspace root")
        .to_path_buf();
    let violations = lint::lint_workspace(&root).expect("workspace scan");
    let baseline_path = root.join("lint_baseline.txt");
    let entries = if baseline_path.is_file() {
        baseline::parse(&std::fs::read_to_string(&baseline_path).expect("read baseline"))
            .expect("committed baseline parses")
    } else {
        Vec::new()
    };
    let (fresh, _, stale) = baseline::apply(violations, &entries);
    assert!(
        fresh.is_empty(),
        "non-baselined lint violations:\n{}",
        fresh
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(stale.is_empty(), "stale baseline entries: {stale:?}");
}
