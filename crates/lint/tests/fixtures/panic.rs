//! Fixture: every panic-freedom trigger, plus the exempt forms.
pub fn unwraps(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn expects(x: Option<u8>) -> u8 {
    x.expect("present")
}

pub fn panics() {
    panic!("boom");
}

pub fn unreachable_macro() {
    unreachable!("invariant");
}

pub fn todo_macro() {
    todo!()
}

pub fn unimplemented_macro() {
    unimplemented!()
}

pub fn suppressed(x: Option<u8>) -> u8 {
    x.unwrap() // lint-allow(panic-freedom): fixture-justified
}

pub fn unwrap_or_is_fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0).min(x.unwrap_or_default()).min(x.unwrap_or_else(|| 1))
}

pub fn free_function_named_unwrap_is_fine() {
    fn unwrap() {}
    unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1u8).unwrap();
        panic!("fine in tests");
    }
}
