//! Fixture: stands in for `nosql-store/src/cluster.rs` in the
//! cost-accounting tests (the rule keys on that path).
pub struct Cluster {
    inner: Inner,
}
pub struct Inner {
    regions: Vec<u8>,
}

impl Cluster {
    pub fn uncharged_touch(&self) -> usize {
        self.inner.regions.len()
    }

    pub fn charged_touch(&self) -> usize {
        self.charge(1);
        self.inner.regions.len()
    }

    pub fn retried_touch(&self) -> usize {
        self.with_retry(|| self.inner.regions.len())
    }

    // lint-allow(cost-accounting): metadata probe, nothing to charge
    pub fn pragma_touch(&self) -> usize {
        self.inner.regions.len()
    }

    pub fn no_region_state(&self) -> usize {
        41 + 1
    }

    fn private_touch(&self) -> usize {
        self.inner.regions.len()
    }

    fn charge(&self, _n: u64) {}
    fn with_retry<T>(&self, f: impl Fn() -> T) -> T {
        f()
    }
}

pub fn free_fn_touches(c: &Cluster) -> usize {
    c.inner.regions.len()
}
