//! Fixture: consistent lock order, block-scoped guards, drop() releases,
//! statement temporaries — none of this may fire.
pub struct S {
    tables: std::sync::Mutex<u8>,
    wal: std::sync::Mutex<u8>,
    replication: std::sync::Mutex<u8>,
}

impl S {
    pub fn consistent_a(&self) {
        let t = self.tables.lock();
        let w = self.wal.lock();
        drop(w);
        drop(t);
    }

    pub fn consistent_b(&self) {
        let _t = self.tables.lock();
        let _w = self.wal.lock();
    }

    pub fn scoped_then_other(&self) {
        {
            let r = self.replication.lock();
            let _ = r;
        }
        // The replication guard is dead here: no replication->tables edge.
        let _t = self.tables.lock();
    }

    pub fn dropped_then_other(&self) {
        let r = self.replication.lock();
        drop(r);
        let _t = self.tables.lock();
    }

    pub fn statement_temporary(&self) {
        let n = *self.tables.lock();
        // The temporary guard died at the semicolon above.
        let _w = self.wal.lock();
        let _ = n;
    }
}
