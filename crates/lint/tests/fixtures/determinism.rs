//! Fixture: every determinism trigger, plus the suppression forms.
use std::collections::HashMap;
use std::collections::HashSet; // lint-allow(determinism): lookup-only fixture

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn sys_time() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn ambient_rng() -> u64 {
    thread_rng().gen()
}

// lint-allow(determinism): standalone pragma covers the next line
pub fn suppressed_map() -> HashMap<u8, u8> {
    HashMap::new() // lint-allow(determinism): trailing pragma covers this line
}

pub fn strings_do_not_count() -> &'static str {
    "HashMap Instant::now SystemTime thread_rng"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::time::Instant::now();
        let _: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
    }
}
