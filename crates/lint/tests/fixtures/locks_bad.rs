//! Fixture: direct lock-discipline violations — re-entry, guard across a
//! fan-out, for-header temporary extension, and an edge through a call.
pub struct S {
    tables: std::sync::RwLock<Vec<u8>>,
    wal: std::sync::Mutex<u8>,
}

impl S {
    pub fn reentry(&self) {
        let a = self.tables.read();
        let b = self.tables.write();
        let _ = (a, b);
    }

    pub fn guard_across_fanout(&self) {
        let w = self.wal.lock();
        let _sums = pool::map(vec![1, 2, 3], 2, |x| x);
        drop(w);
    }

    pub fn for_header_guard_lives_through_body(&self) {
        for x in self.tables.read().iter() {
            // The iterated guard is still live: edge tables->wal AND a
            // re-entry on tables below.
            let _w = self.wal.lock();
            let _again = self.tables.read();
            let _ = x;
        }
    }

    pub fn fanout_via_helper(&self) {
        let w = self.wal.lock();
        self.helper_that_fans_out();
        drop(w);
    }

    fn helper_that_fans_out(&self) {
        let _sums = pool::map_chunked(vec![1, 2, 3], 2, |v| v.len());
    }
}
