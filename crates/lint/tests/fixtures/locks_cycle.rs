//! Fixture: ABBA lock-order cycle across two functions.
pub struct S {
    tables: std::sync::Mutex<u8>,
    wal: std::sync::Mutex<u8>,
}

impl S {
    pub fn ab(&self) {
        let t = self.tables.lock();
        let w = self.wal.lock();
        drop(w);
        drop(t);
    }

    pub fn ba(&self) {
        let w = self.wal.lock();
        let t = self.tables.lock();
        drop(t);
        drop(w);
    }
}
