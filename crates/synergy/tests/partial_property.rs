//! Property and integration tests for partial view materialization: a
//! demand-filled, memory-bounded deployment must answer every keyed read
//! exactly like a fully materialized one — under randomized read/write
//! interleavings, constant eviction pressure, reads racing maintenance,
//! and crash recovery.

use nosql_store::{Cluster, ClusterConfig};
use proptest::prelude::*;
use query::ColumnType;
use relational::{Relation, Row, Schema, Value};
use sql::{parse_statement, Statement};
use synergy::{SynergyConfig, SynergySystem};

const CUSTOMERS: i64 = 6;
const ORDERS_PER_CUSTOMER: i64 = 10;
const LINES_PER_ORDER: i64 = 5;
const ORDERS: i64 = CUSTOMERS * ORDERS_PER_CUSTOMER;

fn micro_schema() -> Schema {
    let customer = Relation::new("Customer")
        .attributes(["c_id", "c_uname", "c_discount"])
        .primary_key(["c_id"])
        .build();
    let orders = Relation::new("Orders")
        .attributes(["o_id", "o_c_id", "o_total"])
        .primary_key(["o_id"])
        .foreign_key("o_c_id", "Customer", "c_id")
        .build();
    let order_line = Relation::new("Order_line")
        .attributes(["ol_o_id", "ol_id", "ol_qty"])
        .primary_key(["ol_o_id", "ol_id"])
        .foreign_key("ol_o_id", "Orders", "o_id")
        .build();
    Schema::new()
        .with_relation(customer)
        .with_relation(orders)
        .with_relation(order_line)
}

fn micro_types(_relation: &str, column: &str) -> Option<ColumnType> {
    match column {
        "c_id" | "o_id" | "o_c_id" | "ol_o_id" | "ol_id" | "ol_qty" => Some(ColumnType::Int),
        "c_discount" | "o_total" => Some(ColumnType::Float),
        _ => Some(ColumnType::Str),
    }
}

/// Q1/Q2 plus the keyed variants that drive demand filling.
fn workload() -> Vec<Statement> {
    [
        "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id",
        "SELECT * FROM Customer AS c, Orders AS o, Order_line AS ol \
         WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id",
        "SELECT * FROM Customer AS c, Orders AS o WHERE c.c_id = o.o_c_id AND o.o_id = ?",
        "SELECT * FROM Customer AS c, Orders AS o, Order_line AS ol \
         WHERE c.c_id = o.o_c_id AND o.o_id = ol.ol_o_id AND ol.ol_o_id = ?",
    ]
    .iter()
    .map(|q| parse_statement(q).unwrap())
    .collect()
}

fn build_system(threads: usize, view_budget: Option<u64>) -> SynergySystem {
    let mut config = SynergyConfig::new(
        micro_schema(),
        workload(),
        vec!["Customer".to_string()],
        &micro_types,
    )
    .with_threads(threads);
    if let Some(budget) = view_budget {
        config = config.with_view_budget(budget);
    }
    let system = SynergySystem::build(Cluster::new(ClusterConfig::default()), config).unwrap();

    let customers: Vec<Row> = (1..=CUSTOMERS)
        .map(|c_id| {
            Row::new()
                .with("c_id", c_id)
                .with("c_uname", format!("UNAME{c_id:04}"))
                .with("c_discount", (c_id % 5) as f64 / 100.0)
        })
        .collect();
    system.bulk_load("Customer", &customers).unwrap();
    let mut orders = Vec::new();
    let mut lines = Vec::new();
    for o_id in 1..=ORDERS {
        orders.push(
            Row::new()
                .with("o_id", o_id)
                .with("o_c_id", (o_id - 1) / ORDERS_PER_CUSTOMER + 1)
                .with("o_total", 100.0 + (o_id % 50) as f64),
        );
        for ol_id in 1..=LINES_PER_ORDER {
            lines.push(
                Row::new()
                    .with("ol_o_id", o_id)
                    .with("ol_id", ol_id)
                    .with("ol_qty", (ol_id % 3) + 1),
            );
        }
    }
    system.bulk_load("Orders", &orders).unwrap();
    system.bulk_load("Order_line", &lines).unwrap();
    system.materialize_views().unwrap();
    // Bulk loads are volatile until a checkpoint: persist the populated
    // state so the crash test recovers it.
    system.cluster().checkpoint();
    system
}

fn q1k() -> Statement {
    workload().remove(2)
}

fn q2k() -> Statement {
    workload().remove(3)
}

/// Sorted result rows of a keyed read, for order-insensitive comparison.
fn read_keyed(system: &SynergySystem, statement: &Statement, key: i64) -> Vec<String> {
    let result = system.execute(statement, &[Value::Int(key)]).unwrap();
    let mut rows: Vec<String> = result.rows.iter().map(|r| r.to_string()).collect();
    rows.sort();
    rows
}

// ---------------------------------------------------------------------
// Demand filling: misses upquery, repeats hit, unkeyed reads bypass
// ---------------------------------------------------------------------

#[test]
fn keyed_reads_fill_on_demand_and_match_full_materialization() {
    let full = build_system(1, None);
    let partial = build_system(1, Some(u64::MAX));
    assert_eq!(
        partial.residency_snapshot().unwrap().resident_keys,
        0,
        "partial views start empty"
    );

    for key in 1..=ORDERS {
        assert_eq!(
            read_keyed(&partial, &q1k(), key),
            read_keyed(&full, &q1k(), key),
            "Q1K({key})"
        );
        assert_eq!(
            read_keyed(&partial, &q2k(), key),
            read_keyed(&full, &q2k(), key),
            "Q2K({key})"
        );
    }
    let after_sweep = partial.residency_snapshot().unwrap();
    assert_eq!(after_sweep.upqueries, 2 * ORDERS as u64, "one upquery per miss");
    assert_eq!(after_sweep.resident_keys, 2 * ORDERS as u64);
    assert_eq!(
        after_sweep.resident_rows,
        (ORDERS + ORDERS * LINES_PER_ORDER) as u64,
        "V_CO holds one row per order, V_COOl one per order line"
    );
    assert!(after_sweep.resident_bytes > 0);

    // A second sweep is all hits: nothing new is upqueried.
    for key in 1..=ORDERS {
        read_keyed(&partial, &q1k(), key);
    }
    let rewarmed = partial.residency_snapshot().unwrap();
    assert_eq!(rewarmed.upqueries, after_sweep.upqueries);
    assert_eq!(rewarmed.hits, after_sweep.hits + ORDERS as u64);

    // An unkeyed view read cannot be served from a partial view: it runs
    // the baseline plan and is counted as a bypass.
    let q1 = &workload()[0];
    let via_partial = partial.execute(q1, &[]).unwrap();
    let via_full = full.execute(q1, &[]).unwrap();
    assert_eq!(via_partial.rows.len(), via_full.rows.len());
    assert!(partial.residency_snapshot().unwrap().bypasses > 0);

    // Reads of an absent key are negatively cached: resident, zero rows.
    assert!(read_keyed(&partial, &q1k(), ORDERS + 7).is_empty());
    assert!(read_keyed(&partial, &q1k(), ORDERS + 7).is_empty());
    let negative = partial.residency_snapshot().unwrap();
    assert_eq!(negative.upqueries, rewarmed.upqueries + 1, "second read hits");
}

// ---------------------------------------------------------------------
// Eviction: a tiny budget keeps residency bounded and answers exact
// ---------------------------------------------------------------------

#[test]
fn tiny_budget_evicts_cold_keys_but_answers_stay_exact() {
    let full = build_system(1, None);
    let partial = build_system(1, Some(600));

    // Three passes over the whole key universe with a budget far below the
    // working set: every pass keeps evicting, answers never change.
    for _ in 0..3 {
        for key in 1..=ORDERS {
            assert_eq!(read_keyed(&partial, &q2k(), key), read_keyed(&full, &q2k(), key));
        }
    }
    let snapshot = partial.residency_snapshot().unwrap();
    assert!(
        snapshot.evicted_keys > 0,
        "a 600-byte budget must evict: {snapshot:?}"
    );
    // The reader's pin protects the just-filled group even when that one
    // group exceeds the whole budget, so the bound is budget + one group.
    assert!(
        snapshot.resident_keys <= 2 && snapshot.resident_bytes <= 1400,
        "residency ends within budget plus one pinned group: {snapshot:?}"
    );

    // The store's view tables only hold the resident slice.
    let metrics = partial.cluster().metrics();
    let full_metrics = full.cluster().metrics();
    let view_rows = |m: &nosql_store::ClusterMetrics| {
        m.tables
            .iter()
            .filter(|(name, _)| name.starts_with("V_"))
            .map(|(_, t)| t.rows)
            .sum::<u64>()
    };
    assert!(view_rows(&metrics) < view_rows(&full_metrics) / 4);
}

// ---------------------------------------------------------------------
// Maintenance: resident keys are maintained, cold keys annihilate
// ---------------------------------------------------------------------

#[test]
fn deltas_to_cold_keys_annihilate_and_resident_keys_stay_fresh() {
    let partial = build_system(1, Some(u64::MAX));
    let update = parse_statement("UPDATE Orders SET o_total = ? WHERE o_id = ?").unwrap();

    // Write to a cold key: the delta is dropped, no view work happens.
    partial
        .execute(&update, &[Value::Float(999.0), Value::Int(3)])
        .unwrap();
    let after_cold = partial.residency_snapshot().unwrap();
    assert!(after_cold.annihilated > 0, "cold-key delta annihilates");
    assert_eq!(after_cold.resident_rows, 0);

    // The key still answers correctly (the upquery sees the new total).
    let rows = read_keyed(&partial, &q1k(), 3);
    assert!(rows[0].contains("999"), "upquery observes the write: {rows:?}");

    // Now the key is resident: a second write maintains it in place.
    partial
        .execute(&update, &[Value::Float(777.0), Value::Int(3)])
        .unwrap();
    let rows = read_keyed(&partial, &q1k(), 3);
    assert!(rows[0].contains("777"), "resident key is maintained: {rows:?}");
    let after_hot = partial.residency_snapshot().unwrap();
    assert!(after_hot.upqueries <= after_cold.upqueries + 1, "no refill needed");
}

// ---------------------------------------------------------------------
// Randomized interleavings: partial ≡ full, row for row
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    ReadQ1K(i64),
    ReadQ2K(i64),
    UpdateTotal(i64, i64),
    UpdateQty(i64, i64),
    InsertOrder(i64),
    DeleteOrder(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..ORDERS + 1).prop_map(Op::ReadQ1K),
        (1..ORDERS + 1).prop_map(Op::ReadQ2K),
        ((1..ORDERS + 1), (0..1000i64)).prop_map(|(k, v)| Op::UpdateTotal(k, v)),
        ((1..ORDERS + 1), (1..LINES_PER_ORDER + 1)).prop_map(|(k, l)| Op::UpdateQty(k, l)),
        (0..20i64).prop_map(Op::InsertOrder),
        (1..ORDERS + 1).prop_map(Op::DeleteOrder),
    ]
}

fn apply_op(system: &SynergySystem, op: &Op) -> Option<(String, Vec<String>)> {
    match op {
        Op::ReadQ1K(key) => Some((format!("Q1K({key})"), read_keyed(system, &q1k(), *key))),
        Op::ReadQ2K(key) => Some((format!("Q2K({key})"), read_keyed(system, &q2k(), *key))),
        Op::UpdateTotal(key, v) => {
            let update = parse_statement("UPDATE Orders SET o_total = ? WHERE o_id = ?").unwrap();
            system
                .execute(&update, &[Value::Float(*v as f64), Value::Int(*key)])
                .unwrap();
            None
        }
        Op::UpdateQty(key, line) => {
            let update = parse_statement(
                "UPDATE Order_line SET ol_qty = ? WHERE ol_o_id = ? AND ol_id = ?",
            )
            .unwrap();
            system
                .execute(&update, &[Value::Int(97), Value::Int(*key), Value::Int(*line)])
                .unwrap();
            None
        }
        Op::InsertOrder(slot) => {
            let insert = parse_statement(
                "INSERT INTO Orders (o_id, o_c_id, o_total) VALUES (?, ?, ?)",
            )
            .unwrap();
            // Reserved key range: re-inserting the same slot twice errors
            // identically on both systems (duplicate base key), so ignore.
            let key = ORDERS + 100 + slot;
            let _ = system.execute(
                &insert,
                &[Value::Int(key), Value::Int(key % CUSTOMERS + 1), Value::Float(5.0)],
            );
            None
        }
        Op::DeleteOrder(key) => {
            // Cascade like an application honoring the FK: lines first,
            // then the order.  (Deleting a parent that still has children
            // violates the unenforced FK contract, §IV — a fully
            // materialized view would legitimately keep the orphan rows
            // while a recomputing upquery would not.)
            let delete_line =
                parse_statement("DELETE FROM Order_line WHERE ol_o_id = ? AND ol_id = ?").unwrap();
            for line in 1..=LINES_PER_ORDER {
                system
                    .execute(&delete_line, &[Value::Int(*key), Value::Int(line)])
                    .unwrap();
            }
            let delete = parse_statement("DELETE FROM Orders WHERE o_id = ?").unwrap();
            system.execute(&delete, &[Value::Int(*key)]).unwrap();
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After any interleaving of keyed reads, updates, inserts and deletes,
    /// a partial deployment under eviction pressure answers byte-for-byte
    /// like a fully materialized one — during the run and on a full sweep
    /// afterwards — at 1 and 4 region-parallel workers.
    #[test]
    fn partial_matches_full_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        threads in prop_oneof![Just(1usize), Just(4usize)],
        budget in prop_oneof![Just(800u64), Just(u64::MAX)],
    ) {
        let full = build_system(threads, None);
        let partial = build_system(threads, Some(budget));
        for op in &ops {
            let expected = apply_op(&full, op);
            let observed = apply_op(&partial, op);
            prop_assert_eq!(expected, observed, "mid-run divergence on {:?}", op);
        }
        for key in 1..=ORDERS + 120 {
            prop_assert_eq!(
                read_keyed(&full, &q1k(), key),
                read_keyed(&partial, &q1k(), key),
                "post-run Q1K sweep at {}", key
            );
            prop_assert_eq!(
                read_keyed(&full, &q2k(), key),
                read_keyed(&partial, &q2k(), key),
                "post-run Q2K sweep at {}", key
            );
        }
    }
}

// ---------------------------------------------------------------------
// Reads racing maintenance on just-evicted keys
// ---------------------------------------------------------------------

#[test]
fn reads_race_maintenance_under_constant_eviction() {
    // A writer hammers updates over a small key set while a reader scans
    // the same keys through a budget so small every fill evicts another
    // key.  Every read must return a complete, well-formed group (the
    // order's full line count) — a read must never observe a half-evicted
    // or half-filled key.
    let system = build_system(1, Some(400));
    let writer_system = system.clone();
    let writer = std::thread::spawn(move || {
        let update = parse_statement("UPDATE Orders SET o_total = ? WHERE o_id = ?").unwrap();
        for i in 0..200i64 {
            let key = i % 8 + 1;
            writer_system
                .execute(&update, &[Value::Float(1000.0 + i as f64), Value::Int(key)])
                .unwrap();
        }
    });
    let q2k = q2k();
    for i in 0..200i64 {
        let key = i % 8 + 1;
        let rows = read_keyed(&system, &q2k, key);
        assert_eq!(
            rows.len(),
            LINES_PER_ORDER as usize,
            "read of key {key} must see the whole order-line group"
        );
    }
    writer.join().unwrap();
    let snapshot = system.residency_snapshot().unwrap();
    assert!(snapshot.evicted_keys > 0, "the race ran under eviction: {snapshot:?}");
}

// ---------------------------------------------------------------------
// Crash recovery: residency restarts cold and consistent
// ---------------------------------------------------------------------

#[test]
fn recovery_restarts_partial_views_cold_and_consistent() {
    let full = build_system(1, None);
    let partial = build_system(1, Some(u64::MAX));

    // Fill a working set, then update some keys (synced via the write
    // path) and crash with the fills' store writes not yet checkpointed.
    for key in 1..=10 {
        read_keyed(&partial, &q2k(), key);
    }
    let update = parse_statement("UPDATE Orders SET o_total = ? WHERE o_id = ?").unwrap();
    for key in 1..=5 {
        partial
            .execute(&update, &[Value::Float(500.0 + key as f64), Value::Int(key)])
            .unwrap();
        full.execute(&update, &[Value::Float(500.0 + key as f64), Value::Int(key)])
            .unwrap();
    }
    partial.cluster().crash();
    let report = partial.recover().unwrap();
    assert_eq!(report.view_rows_rolled_forward, 0, "partial recovery never rolls forward");

    // Residency restarted cold: no keys, no rows, empty view tables.
    let snapshot = partial.residency_snapshot().unwrap();
    assert_eq!(snapshot.resident_keys, 0, "{snapshot:?}");
    assert_eq!(snapshot.resident_rows, 0, "{snapshot:?}");
    assert_eq!(snapshot.resident_bytes, 0, "{snapshot:?}");
    let metrics = partial.cluster().metrics();
    for (name, table) in &metrics.tables {
        if name.starts_with("V_") {
            assert_eq!(table.rows, 0, "view table {name} wiped on recovery");
        }
    }

    // And the deployment keeps answering exactly like full materialization
    // (whose own recovery path is the dirty-marker protocol).
    full.cluster().crash();
    full.recover().unwrap();
    for key in 1..=ORDERS {
        assert_eq!(read_keyed(&partial, &q2k(), key), read_keyed(&full, &q2k(), key));
    }
}
