//! Failure-injection and property tests for the transaction layer and the
//! candidate-view generation mechanism.

use nosql_store::{Cluster, ClusterConfig};
use proptest::prelude::*;
use query::ColumnType;
use relational::{company, Row, Value};
use sql::parse_workload;
use synergy::viewgen::generate_candidate_views;
use synergy::{SynergyConfig, SynergySystem};

fn company_types(_relation: &str, column: &str) -> Option<ColumnType> {
    matches!(
        column,
        "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo" | "P_DNo"
            | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
    )
    .then_some(ColumnType::Int)
}

fn fresh_system() -> SynergySystem {
    let schema = company::company_schema();
    let workload =
        parse_workload(company::company_workload_sql().iter().map(String::as_str)).unwrap();
    let system = SynergySystem::build(
        Cluster::new(ClusterConfig::default()),
        SynergyConfig::new(schema, workload, company::company_roots(), &company_types),
    )
    .unwrap();
    system
        .bulk_load(
            "Address",
            &(1..=4i64)
                .map(|aid| {
                    Row::new()
                        .with("AID", aid)
                        .with("Street", format!("{aid} St"))
                        .with("City", "N")
                        .with("Zip", 37000 + aid)
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
    system
        .bulk_load("Department", &[Row::new().with("DNo", 1).with("DName", "D1")])
        .unwrap();
    system
        .bulk_load(
            "Employee",
            &(1..=4i64)
                .map(|eid| {
                    Row::new()
                        .with("EID", eid)
                        .with("EName", format!("E{eid}"))
                        .with("EHome_AID", eid)
                        .with("EOffice_AID", 1)
                        .with("E_DNo", 1)
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
    system
        .bulk_load(
            "Project",
            &[Row::new().with("PNo", 1).with("PName", "P1").with("P_DNo", 1)],
        )
        .unwrap();
    system.materialize_views().unwrap();
    system
}

// ---------------------------------------------------------------------
// Transaction-layer WAL: durability and slave-failover replay (§VIII)
// ---------------------------------------------------------------------

#[test]
fn every_write_transaction_is_logged_and_synced_before_execution() {
    let system = fresh_system();
    let statements = [
        "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
        "UPDATE Employee SET EName = ? WHERE EID = ?",
        "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
    ];
    let params: [Vec<Value>; 3] = [
        vec![Value::Int(1), Value::Int(1), Value::Int(9)],
        vec![Value::str("Renamed"), Value::Int(2)],
        vec![Value::Int(1), Value::Int(1)],
    ];
    for (sql_text, params) in statements.iter().zip(params.iter()) {
        system.execute_sql(sql_text, params).unwrap();
    }
    let wal = system.transaction_layer().wal();
    assert_eq!(wal.len(), 3);
    assert!(wal.unsynced().is_empty(), "the statement WAL is synced per transaction");
}

#[test]
fn replaying_the_wal_on_a_standby_reproduces_the_same_state() {
    // The Master starts a new slave and replays the failed slave's WAL
    // (§VIII, "Transaction Layer").  We model that by replaying the logged
    // statements onto a standby deployment loaded with the same base data.
    let primary = fresh_system();
    let standby = fresh_system();

    let writes = [
        ("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
         vec![Value::Int(2), Value::Int(1), Value::Int(12)]),
        ("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
         vec![Value::Int(3), Value::Int(1), Value::Int(30)]),
        ("UPDATE Employee SET EName = ? WHERE EID = ?",
         vec![Value::str("Renamed3"), Value::Int(3)]),
        ("DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
         vec![Value::Int(2), Value::Int(1)]),
    ];
    for (sql_text, params) in &writes {
        primary.execute_sql(sql_text, params).unwrap();
    }

    // The WAL stores fully-bound statement text in a real deployment; here
    // the parameters are replayed alongside the logged statements.
    let mut replayed = 0;
    primary.transaction_layer().wal().replay(|entry| {
        if let nosql_store::WalOp::Logical { payload } = &entry.op {
            let (_, params) = &writes[replayed];
            standby.execute_sql(payload, params).unwrap();
            replayed += 1;
        }
    });
    assert_eq!(replayed, writes.len());

    // Both deployments must answer the workload identically afterwards.
    let probe = "SELECT * FROM Employee AS e, Works_On AS wo WHERE e.EID = wo.WO_EID";
    let primary_rows = primary.execute_sql(probe, &[]).unwrap().len();
    let standby_rows = standby.execute_sql(probe, &[]).unwrap().len();
    assert_eq!(primary_rows, standby_rows);
    assert_eq!(
        primary.cluster().row_count("V_Employee__Works_On").unwrap(),
        standby.cluster().row_count("V_Employee__Works_On").unwrap()
    );
}

#[test]
fn lock_held_by_a_stalled_writer_blocks_only_that_root_key() {
    let system = fresh_system();
    // Simulate a stalled transaction by grabbing employee 1's root lock
    // (Address root key "1") directly.
    let guard = system.locks().acquire("Address", "1").unwrap().unwrap();

    // A write under a different root key proceeds.
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(2), Value::Int(1), Value::Int(5)],
        )
        .unwrap();

    // Reads are never blocked by the hierarchical lock.
    let rows = system
        .execute_sql(
            "SELECT * FROM Employee AS e, Address AS a WHERE a.AID = e.EHome_AID AND e.EID = ?",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);

    system.locks().release(guard).unwrap();
    // After release, the previously blocked root key accepts writes again.
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(1), Value::Int(1), Value::Int(5)],
        )
        .unwrap();
}

// ---------------------------------------------------------------------
// Candidate-view generation: structural invariants for any roots set
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every subset of relations chosen as roots, the generation
    /// mechanism must (1) assign each non-root relation to at most one tree,
    /// (2) produce trees whose edges come from the schema graph, with a
    /// unique path from the root to every node, and (3) never leave a
    /// relation both assigned and reported unassigned.
    #[test]
    fn rooted_trees_are_well_formed_for_any_roots_subset(mask in 0u8..128) {
        let schema = company::company_schema();
        let workload =
            parse_workload(company::company_workload_sql().iter().map(String::as_str)).unwrap();
        let all: Vec<String> = schema.relation_names();
        let roots: Vec<String> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, name)| name.clone())
            .collect();
        let candidates = generate_candidate_views(&schema, &workload, &roots);

        // Every tree's root is one of the requested roots.
        for tree in &candidates.trees {
            prop_assert!(roots.contains(&tree.root));
            // Unique path from the root to every node, and every edge exists
            // in the original schema graph.
            let graph = relational::SchemaGraph::from_schema(&schema);
            for node in tree.nodes() {
                prop_assert!(tree.path_from_root(&node).is_some());
            }
            for edge in &tree.edges {
                prop_assert!(graph
                    .edges_between(&edge.from, &edge.to)
                    .iter()
                    .any(|e| e.fk == edge.fk));
                // No edge points into a root of another tree.
                prop_assert!(!roots.iter().any(|r| r == &edge.to));
            }
        }
        // Each non-root relation belongs to at most one tree, and is either
        // assigned or listed as unassigned (if it is not itself a root).
        for relation in &all {
            let owners = candidates.trees.iter().filter(|t| t.contains(relation)).count();
            if roots.contains(relation) {
                continue;
            }
            prop_assert!(owners <= 1, "{relation} owned by {owners} trees");
            if owners == 0 {
                prop_assert!(candidates.unassigned.contains(relation));
            } else {
                prop_assert!(!candidates.unassigned.contains(relation));
            }
        }
        // Candidate views are always paths of length >= 1 fully inside one tree.
        for view in candidates.all_candidate_views() {
            prop_assert!(view.len() >= 2);
            let tree = candidates.tree_containing(view.last_relation()).unwrap();
            for relation in &view.relations {
                prop_assert!(tree.contains(relation));
            }
        }
    }
}
