//! Failure-injection and property tests for the transaction layer and the
//! candidate-view generation mechanism.

use nosql_store::{Cluster, ClusterConfig};
use proptest::prelude::*;
use query::ColumnType;
use relational::{company, Row, Value};
use sql::parse_workload;
use synergy::viewgen::generate_candidate_views;
use synergy::{SynergyConfig, SynergySystem};

fn company_types(_relation: &str, column: &str) -> Option<ColumnType> {
    matches!(
        column,
        "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo" | "P_DNo"
            | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
    )
    .then_some(ColumnType::Int)
}

fn fresh_system() -> SynergySystem {
    system_with_dirty_retry_limit(query::DIRTY_RETRY_LIMIT)
}

fn system_with_dirty_retry_limit(limit: usize) -> SynergySystem {
    let schema = company::company_schema();
    let workload =
        parse_workload(company::company_workload_sql().iter().map(String::as_str)).unwrap();
    let system = SynergySystem::build(
        Cluster::new(ClusterConfig::default()),
        SynergyConfig::new(schema, workload, company::company_roots(), &company_types)
            .with_dirty_retry_limit(limit),
    )
    .unwrap();
    system
        .bulk_load(
            "Address",
            &(1..=4i64)
                .map(|aid| {
                    Row::new()
                        .with("AID", aid)
                        .with("Street", format!("{aid} St"))
                        .with("City", "N")
                        .with("Zip", 37000 + aid)
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
    system
        .bulk_load("Department", &[Row::new().with("DNo", 1).with("DName", "D1")])
        .unwrap();
    system
        .bulk_load(
            "Employee",
            &(1..=4i64)
                .map(|eid| {
                    Row::new()
                        .with("EID", eid)
                        .with("EName", format!("E{eid}"))
                        .with("EHome_AID", eid)
                        .with("EOffice_AID", 1)
                        .with("E_DNo", 1)
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
    system
        .bulk_load(
            "Project",
            &[Row::new().with("PNo", 1).with("PName", "P1").with("P_DNo", 1)],
        )
        .unwrap();
    system.materialize_views().unwrap();
    // Bulk loads are volatile until a checkpoint (the memstore-flush
    // durability boundary): persist the populated state so crash tests
    // recover it.
    system.cluster().checkpoint();
    system
}

// ---------------------------------------------------------------------
// Transaction-layer WAL: durability and slave-failover replay (§VIII)
// ---------------------------------------------------------------------

#[test]
fn every_write_transaction_is_logged_and_synced_before_execution() {
    let system = fresh_system();
    let statements = [
        "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
        "UPDATE Employee SET EName = ? WHERE EID = ?",
        "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
    ];
    let params: [Vec<Value>; 3] = [
        vec![Value::Int(1), Value::Int(1), Value::Int(9)],
        vec![Value::str("Renamed"), Value::Int(2)],
        vec![Value::Int(1), Value::Int(1)],
    ];
    for (sql_text, params) in statements.iter().zip(params.iter()) {
        system.execute_sql(sql_text, params).unwrap();
    }
    let wal = system.transaction_layer().wal();
    assert_eq!(wal.len(), 3);
    assert!(wal.unsynced().is_empty(), "the statement WAL is synced per transaction");
}

#[test]
fn replaying_the_wal_on_a_standby_reproduces_the_same_state() {
    // The Master starts a new slave and replays the failed slave's WAL
    // (§VIII, "Transaction Layer").  We model that by replaying the logged
    // statements onto a standby deployment loaded with the same base data.
    let primary = fresh_system();
    let standby = fresh_system();

    let writes = [
        ("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
         vec![Value::Int(2), Value::Int(1), Value::Int(12)]),
        ("INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
         vec![Value::Int(3), Value::Int(1), Value::Int(30)]),
        ("UPDATE Employee SET EName = ? WHERE EID = ?",
         vec![Value::str("Renamed3"), Value::Int(3)]),
        ("DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
         vec![Value::Int(2), Value::Int(1)]),
    ];
    for (sql_text, params) in &writes {
        primary.execute_sql(sql_text, params).unwrap();
    }

    // The WAL stores fully-bound statement text in a real deployment; here
    // the parameters are replayed alongside the logged statements.
    let mut replayed = 0;
    primary.transaction_layer().wal().replay(|entry| {
        if let nosql_store::WalOp::Logical { payload } = &entry.op {
            let (_, params) = &writes[replayed];
            standby.execute_sql(payload, params).unwrap();
            replayed += 1;
        }
    });
    assert_eq!(replayed, writes.len());

    // Both deployments must answer the workload identically afterwards.
    let probe = "SELECT * FROM Employee AS e, Works_On AS wo WHERE e.EID = wo.WO_EID";
    let primary_rows = primary.execute_sql(probe, &[]).unwrap().len();
    let standby_rows = standby.execute_sql(probe, &[]).unwrap().len();
    assert_eq!(primary_rows, standby_rows);
    assert_eq!(
        primary.cluster().row_count("V_Employee__Works_On").unwrap(),
        standby.cluster().row_count("V_Employee__Works_On").unwrap()
    );
}

#[test]
fn lock_held_by_a_stalled_writer_blocks_only_that_root_key() {
    let system = fresh_system();
    // Simulate a stalled transaction by grabbing employee 1's root lock
    // (Address root key "1") directly.
    let guard = system.locks().acquire("Address", "1").unwrap().unwrap();

    // A write under a different root key proceeds.
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(2), Value::Int(1), Value::Int(5)],
        )
        .unwrap();

    // Reads are never blocked by the hierarchical lock.
    let rows = system
        .execute_sql(
            "SELECT * FROM Employee AS e, Address AS a WHERE a.AID = e.EHome_AID AND e.EID = ?",
            &[Value::Int(1)],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);

    system.locks().release(guard).unwrap();
    // After release, the previously blocked root key accepts writes again.
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(1), Value::Int(1), Value::Int(5)],
        )
        .unwrap();
}

// ---------------------------------------------------------------------
// Crash recovery: interrupted update transactions (§VIII-B steps 3–5)
// ---------------------------------------------------------------------

/// The probe joining Employee and Works_On — answered through
/// `V_Employee__Works_On` on the rewritten path.
const JOIN_PROBE: &str = "SELECT * FROM Employee AS e, Works_On AS wo WHERE e.EID = wo.WO_EID";

/// A crash at *any* point of the marked window (after step 3, mid-step 4,
/// or before step 5's unmark) must recover to consistent views: no view
/// row without its base row, no dirty marker left behind, the lock
/// released, and the view contents equal to a full recompute.
#[test]
fn crash_between_steps_3_and_5_recovers_consistent_views() {
    for step in [3u8, 4, 5] {
        let system = fresh_system();
        system
            .execute_sql(
                "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
                &[Value::Int(2), Value::Int(1), Value::Int(12)],
            )
            .unwrap();

        system.transaction_layer().inject_interrupt_after_step(step);
        let err = system
            .execute_sql(
                "UPDATE Employee SET EName = ? WHERE EID = ?",
                &[Value::str("Crashed"), Value::Int(2)],
            )
            .unwrap_err();
        assert!(
            matches!(err, synergy::TxnError::Interrupted { .. }),
            "step {step}: expected the injected interrupt, got {err}"
        );
        // The dead client's lock is still held (Employee 2's root is its
        // home address row, AID = EHome_AID = 2).
        assert!(system.locks().is_held("Address", "2").unwrap());

        system.cluster().crash();
        let report = system.recover().unwrap();
        assert_eq!(report.locks_reclaimed, 1, "step {step}");
        // The update marks one row in each view containing Employee
        // (V_Address__Employee and V_Employee__Works_On); both base rows
        // survive, so both roll forward.
        assert_eq!(
            report.view_rows_rolled_forward, 2,
            "step {step}: both marked view rows roll forward"
        );
        assert_eq!(report.view_rows_removed, 0, "step {step}");
        assert!(!system.locks().is_held("Address", "2").unwrap());

        // No dirty marker survives anywhere, and every view equals a full
        // recompute from the recovered base tables.
        for view in system.selection().views.clone() {
            let table = view.table_name();
            for row in system
                .cluster()
                .scan(&table, nosql_store::ops::Scan::all())
                .unwrap()
            {
                assert_ne!(
                    row.value(query::FAMILY, query::DIRTY_MARKER),
                    Some(b"1".as_slice()),
                    "step {step}: dirty marker left in {table}"
                );
            }
            let expected = system.recompute_view_rows(&view).unwrap();
            assert_eq!(
                system.cluster().row_count(&table).unwrap() as usize,
                expected.len(),
                "step {step}: {table} diverges from recompute"
            );
        }

        // The rewritten read path works again, fallback-free, and agrees
        // with the baseline plan (rows carry differently-qualified symbols
        // per plan, so compare the projected values).
        let through_views = system.execute_sql(JOIN_PROBE, &[]).unwrap();
        assert_eq!(through_views.dirty_fallbacks, 0, "step {step}");
        let stmt = sql::parse_statement(JOIN_PROBE).unwrap();
        let baseline = system.executor().execute(&stmt, &[]).unwrap();
        assert_eq!(through_views.len(), baseline.len(), "step {step}");
        // Steps 4 and 5 committed the base write before crashing; step 3
        // crashed before it.  Either way view and baseline agree.
        let expected_name = baseline.rows[0].get("EName").unwrap().clone();
        assert_eq!(
            through_views.rows[0].get("EName").unwrap(),
            &expected_name,
            "step {step}"
        );
        if step >= 4 {
            assert_eq!(expected_name, Value::str("Crashed"), "step {step}");
        }

        // The interrupted update can be retried to completion.
        system
            .execute_sql(
                "UPDATE Employee SET EName = ? WHERE EID = ?",
                &[Value::str("Recovered"), Value::Int(2)],
            )
            .unwrap();
    }
}

/// A view left permanently dirty (crash after step 4, before the unmark)
/// degrades reads to the baseline plan instead of failing them; recovery
/// then repairs the view and reads return to the rewritten path.
#[test]
fn permanently_dirty_views_degrade_to_the_baseline_plan() {
    let system = system_with_dirty_retry_limit(4);
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(2), Value::Int(1), Value::Int(12)],
        )
        .unwrap();
    system.transaction_layer().inject_interrupt_after_step(5);
    system
        .execute_sql(
            "UPDATE Employee SET EName = ? WHERE EID = ?",
            &[Value::str("Crashed"), Value::Int(2)],
        )
        .unwrap_err();

    // The view row is dirty: the rewritten plan exhausts its 4 restarts and
    // the read is answered through the baseline plan instead.
    let degraded = system.execute_sql(JOIN_PROBE, &[]).unwrap();
    assert_eq!(degraded.dirty_fallbacks, 1);
    assert_eq!(system.dirty_fallbacks(), 1);
    assert_eq!(degraded.len(), 1);
    // The base write (step 4) committed before the crash: the fallback
    // answer reflects it.
    assert_eq!(
        degraded.rows[0].get("EName").unwrap(),
        &Value::str("Crashed")
    );

    // Recovery repairs the marker; the same statement then runs through the
    // views again with the same logical answer.
    system.cluster().crash();
    let report = system.recover().unwrap();
    assert_eq!(report.view_rows_rolled_forward, 2);
    let healed = system.execute_sql(JOIN_PROBE, &[]).unwrap();
    assert_eq!(healed.dirty_fallbacks, 0);
    assert_eq!(healed.len(), degraded.len());
    assert_eq!(
        healed.rows[0].get("EName").unwrap(),
        &Value::str("Crashed")
    );
    assert_eq!(system.dirty_fallbacks(), 1, "no further fallbacks");
}

// ---------------------------------------------------------------------
// Candidate-view generation: structural invariants for any roots set
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every subset of relations chosen as roots, the generation
    /// mechanism must (1) assign each non-root relation to at most one tree,
    /// (2) produce trees whose edges come from the schema graph, with a
    /// unique path from the root to every node, and (3) never leave a
    /// relation both assigned and reported unassigned.
    #[test]
    fn rooted_trees_are_well_formed_for_any_roots_subset(mask in 0u8..128) {
        let schema = company::company_schema();
        let workload =
            parse_workload(company::company_workload_sql().iter().map(String::as_str)).unwrap();
        let all: Vec<String> = schema.relation_names();
        let roots: Vec<String> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, name)| name.clone())
            .collect();
        let candidates = generate_candidate_views(&schema, &workload, &roots);

        // Every tree's root is one of the requested roots.
        for tree in &candidates.trees {
            prop_assert!(roots.contains(&tree.root));
            // Unique path from the root to every node, and every edge exists
            // in the original schema graph.
            let graph = relational::SchemaGraph::from_schema(&schema);
            for node in tree.nodes() {
                prop_assert!(tree.path_from_root(&node).is_some());
            }
            for edge in &tree.edges {
                prop_assert!(graph
                    .edges_between(&edge.from, &edge.to)
                    .iter()
                    .any(|e| e.fk == edge.fk));
                // No edge points into a root of another tree.
                prop_assert!(!roots.iter().any(|r| r == &edge.to));
            }
        }
        // Each non-root relation belongs to at most one tree, and is either
        // assigned or listed as unassigned (if it is not itself a root).
        for relation in &all {
            let owners = candidates.trees.iter().filter(|t| t.contains(relation)).count();
            if roots.contains(relation) {
                continue;
            }
            prop_assert!(owners <= 1, "{relation} owned by {owners} trees");
            if owners == 0 {
                prop_assert!(candidates.unassigned.contains(relation));
            } else {
                prop_assert!(!candidates.unassigned.contains(relation));
            }
        }
        // Candidate views are always paths of length >= 1 fully inside one tree.
        for view in candidates.all_candidate_views() {
            prop_assert!(view.len() >= 2);
            let tree = candidates.tree_containing(view.last_relation()).unwrap();
            for relation in &view.relations {
                prop_assert!(tree.contains(relation));
            }
        }
    }
}
