//! End-to-end tests of the assembled Synergy system on the paper's Company
//! example database: view materialization, rewritten reads, single-lock
//! write transactions and view maintenance.

use nosql_store::{Cluster, ClusterConfig};
use query::ColumnType;
use relational::{company, Row, Value};
use sql::parse_workload;
use synergy::{SynergyConfig, SynergySystem};

fn company_types(_relation: &str, column: &str) -> Option<ColumnType> {
    matches!(
        column,
        "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo" | "P_DNo"
            | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
    )
    .then_some(ColumnType::Int)
}

/// Builds and populates a Synergy deployment of the Company database.
fn build_system() -> SynergySystem {
    let schema = company::company_schema();
    let workload_sql = company::company_workload_sql();
    let workload = parse_workload(workload_sql.iter().map(String::as_str)).unwrap();
    let cluster = Cluster::new(ClusterConfig::default());
    let system = SynergySystem::build(
        cluster,
        SynergyConfig::new(schema, workload, company::company_roots(), &company_types),
    )
    .unwrap();

    // Base data: 4 addresses, 2 departments, 3 employees, 2 projects,
    // works_on rows and a dependent.
    let addresses: Vec<Row> = (1..=4i64)
        .map(|aid| {
            Row::new()
                .with("AID", aid)
                .with("Street", format!("{aid} Main St"))
                .with("City", "Nashville")
                .with("Zip", 37200 + aid)
        })
        .collect();
    system.bulk_load("Address", &addresses).unwrap();

    let departments: Vec<Row> = (1..=2i64)
        .map(|dno| Row::new().with("DNo", dno).with("DName", format!("Dept{dno}")))
        .collect();
    system.bulk_load("Department", &departments).unwrap();

    let employees: Vec<Row> = (1..=3i64)
        .map(|eid| {
            Row::new()
                .with("EID", eid)
                .with("EName", format!("Employee{eid}"))
                .with("EHome_AID", eid)
                .with("EOffice_AID", 4)
                .with("E_DNo", if eid == 3 { 2i64 } else { 1 })
        })
        .collect();
    system.bulk_load("Employee", &employees).unwrap();

    let projects: Vec<Row> = (1..=2i64)
        .map(|pno| {
            Row::new()
                .with("PNo", pno)
                .with("PName", format!("Project{pno}"))
                .with("P_DNo", 1)
        })
        .collect();
    system.bulk_load("Project", &projects).unwrap();

    let works_on: Vec<Row> = [(1i64, 1i64, 10i64), (1, 2, 25), (2, 1, 40), (3, 2, 40)]
        .iter()
        .map(|(e, p, h)| {
            Row::new()
                .with("WO_EID", *e)
                .with("WO_PNo", *p)
                .with("Hours", *h)
        })
        .collect();
    system.bulk_load("Works_On", &works_on).unwrap();

    system
        .bulk_load(
            "Dependent",
            &[Row::new()
                .with("DP_EID", 1)
                .with("DPName", "Kid")
                .with("DPHome_AID", 1)],
        )
        .unwrap();

    system.materialize_views().unwrap();
    system
}

#[test]
fn build_creates_views_view_indexes_and_lock_tables() {
    let system = build_system();
    let tables = system.cluster().list_tables();
    assert!(tables.contains(&"V_Address__Employee".to_string()));
    assert!(tables.contains(&"V_Employee__Works_On".to_string()));
    assert!(tables.contains(&"L_Address".to_string()));
    assert!(tables.contains(&"L_Department".to_string()));
    // A view-index on Hours must exist for workload query W3.
    assert!(tables
        .iter()
        .any(|t| t.starts_with("V_Employee__Works_On__by__Hours")));
}

#[test]
fn materialization_populates_views_with_joined_rows() {
    let system = build_system();
    // Address-Employee: one row per employee with a matching home address.
    assert_eq!(system.cluster().row_count("V_Address__Employee").unwrap(), 3);
    // Employee-Works_On: one row per works_on entry.
    assert_eq!(system.cluster().row_count("V_Employee__Works_On").unwrap(), 4);
}

#[test]
fn w1_read_uses_the_view_and_returns_joined_attributes() {
    let system = build_system();
    let result = system
        .execute_sql(
            "SELECT * FROM Employee as e, Address as a WHERE a.AID = e.EHome_AID AND e.EID = ?",
            &[Value::Int(2)],
        )
        .unwrap();
    assert_eq!(result.len(), 1);
    let row = &result.rows[0];
    assert_eq!(row.get("EName").unwrap(), &Value::str("Employee2"));
    assert_eq!(row.get("Street").unwrap(), &Value::str("2 Main St"));
}

#[test]
fn rewritten_reads_touch_fewer_tables_than_baseline_joins() {
    let system = build_system();
    let original = sql::parse_statement(
        "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID AND wo.Hours = ?",
    )
    .unwrap();
    let rewritten = system.rewrite(&original);
    let select = rewritten.as_select().unwrap();
    assert_eq!(select.from.len(), 1);
    assert_eq!(select.from[0].table, "V_Employee__Works_On");
    let result = system.execute(&original, &[Value::Int(40)]).unwrap();
    assert_eq!(result.len(), 2);
}

#[test]
fn view_scan_is_faster_than_join_on_simulated_clock() {
    let system = build_system();
    let clock = system.cluster().clock().clone();
    // Same query answered through the view (Synergy path) vs. forced through
    // base tables (what the Baseline system would do).
    let joined = sql::parse_statement(
        "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID",
    )
    .unwrap();
    let (_, with_view) = clock.measure(|| system.execute(&joined, &[]).unwrap());
    let (_, without_view) =
        clock.measure(|| system.executor().execute(&joined, &[]).unwrap());
    assert!(
        with_view < without_view,
        "view={with_view} join={without_view}"
    );
}

#[test]
fn insert_into_last_relation_maintains_the_view() {
    let system = build_system();
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(2), Value::Int(2), Value::Int(15)],
        )
        .unwrap();
    assert_eq!(system.cluster().row_count("V_Employee__Works_On").unwrap(), 5);
    // The new view row carries the joined Employee attributes.
    let result = system
        .execute_sql(
            "SELECT * FROM Employee as e, Works_On as wo \
             WHERE e.EID = wo.WO_EID AND wo.Hours = ?",
            &[Value::Int(15)],
        )
        .unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(result.rows[0].get("EName").unwrap(), &Value::str("Employee2"));
}

#[test]
fn insert_into_interior_relation_does_not_touch_views() {
    let system = build_system();
    let before = system.cluster().row_count("V_Address__Employee").unwrap();
    system
        .execute_sql(
            "INSERT INTO Address (AID, Street, City, Zip) VALUES (?, ?, ?, ?)",
            &[
                Value::Int(99),
                Value::str("99 New St"),
                Value::str("Memphis"),
                Value::Int(38100),
            ],
        )
        .unwrap();
    assert_eq!(
        system.cluster().row_count("V_Address__Employee").unwrap(),
        before,
        "an Address insert applies to no view because Address is never the last relation"
    );
}

#[test]
fn delete_from_last_relation_removes_view_rows() {
    let system = build_system();
    system
        .execute_sql(
            "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
            &[Value::Int(1), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(system.cluster().row_count("V_Employee__Works_On").unwrap(), 3);
    assert_eq!(system.cluster().row_count("Works_On").unwrap(), 3);
}

#[test]
fn update_of_interior_relation_propagates_to_all_its_view_rows() {
    let system = build_system();
    system
        .execute_sql(
            "UPDATE Employee SET EName = ? WHERE EID = ?",
            &[Value::str("Renamed"), Value::Int(1)],
        )
        .unwrap();
    // Employee 1 appears in two Works_On view rows and one Address view row.
    let via_view = system
        .execute_sql(
            "SELECT * FROM Employee as e, Works_On as wo WHERE e.EID = wo.WO_EID",
            &[],
        )
        .unwrap();
    let renamed = via_view
        .rows
        .iter()
        .filter(|r| r.get("EName") == Some(&Value::str("Renamed")))
        .count();
    assert_eq!(renamed, 2);
    let base = system
        .execute_sql("SELECT * FROM Employee WHERE EID = 1", &[])
        .unwrap();
    assert_eq!(base.rows[0].get("EName").unwrap(), &Value::str("Renamed"));
    // No dirty markers are left behind.
    let raw = system
        .cluster()
        .scan("V_Employee__Works_On", nosql_store::ops::Scan::all())
        .unwrap();
    assert!(raw
        .iter()
        .all(|r| r.value("cf", "_dirty").map(|v| v == b"0").unwrap_or(true)));
}

#[test]
fn write_plans_name_the_single_lock_root_and_affected_views() {
    let system = build_system();
    let insert = sql::parse_statement(
        "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
    )
    .unwrap();
    let plan = system.plan_write(&insert).unwrap();
    assert_eq!(plan.lock_root.as_deref(), Some("Address"));
    assert_eq!(plan.affected_views, vec!["Employee-Works_On".to_string()]);
    assert!(!plan.uses_dirty_marking);

    let update = sql::parse_statement("UPDATE Employee SET EName = ? WHERE EID = ?").unwrap();
    let plan = system.plan_write(&update).unwrap();
    assert!(plan.uses_dirty_marking);
    assert_eq!(plan.affected_views.len(), 2);

    let unlocked = sql::parse_statement(
        "INSERT INTO Department (DNo, DName) VALUES (?, ?)",
    )
    .unwrap();
    let plan = system.plan_write(&unlocked).unwrap();
    assert_eq!(plan.lock_root.as_deref(), Some("Department"));
}

#[test]
fn writes_release_their_lock() {
    let system = build_system();
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(3), Value::Int(1), Value::Int(5)],
        )
        .unwrap();
    // Employee 3 has home address 3, so the Address lock for key "3" must be
    // free again after the transaction.
    assert!(!system.locks().is_held("Address", "3").unwrap());
    assert_eq!(system.transaction_layer().wal().len(), 1);
}

#[test]
fn concurrent_writes_to_the_same_root_serialize_correctly() {
    let system = build_system();
    std::thread::scope(|s| {
        for i in 0..4 {
            let system = system.clone();
            s.spawn(move || {
                for j in 0..5 {
                    // All of these rows hang off employee 1 → Address root 1.
                    system
                        .execute_sql(
                            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
                            &[Value::Int(1), Value::Int(100 + i * 10 + j), Value::Int(1)],
                        )
                        .unwrap();
                }
            });
        }
    });
    // 4 original rows + 20 inserted.
    assert_eq!(system.cluster().row_count("Works_On").unwrap(), 24);
    assert_eq!(system.cluster().row_count("V_Employee__Works_On").unwrap(), 24);
    assert!(!system.locks().is_held("Address", "1").unwrap());
}

#[test]
fn reads_concurrent_with_updates_never_observe_dirty_rows() {
    let system = build_system();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = {
            let system = system.clone();
            let stop = &stop;
            s.spawn(move || {
                for i in 0..30 {
                    system
                        .execute_sql(
                            "UPDATE Employee SET EName = ? WHERE EID = ?",
                            &[Value::str(format!("Name{i}")), Value::Int(1)],
                        )
                        .unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            })
        };
        let reader = {
            let system = system.clone();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let result = system
                        .execute_sql(
                            "SELECT * FROM Employee as e, Works_On as wo \
                             WHERE e.EID = wo.WO_EID",
                            &[],
                        )
                        .unwrap();
                    // Every returned row must be a committed row: the EName is
                    // always one of the values the writer writes atomically.
                    for row in &result.rows {
                        let name = row.get("EName").unwrap().as_str().unwrap().to_string();
                        assert!(
                            name.starts_with("Name") || name.starts_with("Employee"),
                            "unexpected half-written name {name}"
                        );
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

#[test]
fn database_size_grows_with_views() {
    let system = build_system();
    let total = system.database_size_bytes();
    let metrics = system.cluster().metrics();
    let views_bytes = metrics.bytes_where(|n| n.starts_with("V_"));
    let base_bytes = metrics.bytes_where(|n| !n.starts_with("V_") && !n.starts_with("L_"));
    assert!(views_bytes > 0);
    assert!(total >= views_bytes + base_bytes);
}

#[test]
fn unsupported_write_shapes_are_rejected() {
    let system = build_system();
    let err = system
        .execute_sql("UPDATE Works_On SET Hours = ? WHERE WO_EID = ?", &[Value::Int(1), Value::Int(1)])
        .unwrap_err();
    assert!(matches!(err, synergy::TxnError::Unsupported(_)));
}

#[test]
fn txn_error_chains_through_box_dyn_error() {
    // Satellite: TxnError implements std::error::Error with a source chain,
    // so callers can `?` it into Box<dyn Error> and reach the query-layer
    // cause.
    fn run(system: &SynergySystem) -> Result<(), Box<dyn std::error::Error>> {
        system.execute_sql("SELECT * FROM Nonexistent", &[])?;
        Ok(())
    }
    let system = build_system();
    let err = run(&system).unwrap_err();
    assert_eq!(err.to_string(), "unknown table Nonexistent");
    let source = std::error::Error::source(err.as_ref()).expect("TxnError exposes its cause");
    assert_eq!(source.to_string(), "unknown table Nonexistent");
}

#[test]
fn reads_hit_the_plan_cache_and_explain_shows_the_rewrite() {
    let system = build_system();
    let statement = &system.workload()[0].clone();
    let before = system.plan_cache_stats();
    system.execute(statement, &[Value::Int(1)]).unwrap();
    system.execute(statement, &[Value::Int(2)]).unwrap();
    system.execute(statement, &[Value::Int(3)]).unwrap();
    let after = system.plan_cache_stats();
    assert_eq!(after.misses - before.misses, 1, "compiled once");
    assert_eq!(after.hits - before.hits, 2, "repeats served from the cache");

    let explain = system.explain(statement).unwrap();
    assert!(
        explain.starts_with("Rewrite [synergy-view-rewrite]"),
        "view substitution must be visible in the plan:\n{explain}"
    );

    // A leading EXPLAIN in SQL text renders the same tree as plan rows.
    let via_sql = system
        .execute_sql(&format!("EXPLAIN {statement}"), &[])
        .unwrap();
    let first_line = via_sql.rows[0].get("plan").unwrap();
    assert_eq!(first_line.as_str().unwrap(), explain.lines().next().unwrap());
}
