//! Property tests for delta-dataflow view maintenance: after an arbitrary
//! sequence of inserts, updates and deletes, every selected view's table
//! must equal a full recomputation of its defining join, row for row —
//! at 1 and 4 region-parallel workers, and through the coalescing write
//! batch with a single deferred flush.

use nosql_store::{Cluster, ClusterConfig};
use proptest::prelude::*;
use query::ColumnType;
use relational::{company, Row, Value};
use sql::{parse_statement, parse_workload};
use synergy::{SynergyConfig, SynergySystem};

fn company_types(_relation: &str, column: &str) -> Option<ColumnType> {
    matches!(
        column,
        "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo" | "P_DNo"
            | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
    )
    .then_some(ColumnType::Int)
}

fn build_system(threads: usize, write_batch: usize) -> SynergySystem {
    let schema = company::company_schema();
    let workload =
        parse_workload(company::company_workload_sql().iter().map(String::as_str)).unwrap();
    SynergySystem::build(
        Cluster::new(ClusterConfig::default()),
        SynergyConfig::new(schema, workload, company::company_roots(), &company_types)
            .with_threads(threads)
            .with_write_batch(write_batch),
    )
    .unwrap()
}

fn load_minimal(system: &SynergySystem, employees: i64) {
    let addresses: Vec<Row> = (1..=employees)
        .map(|aid| {
            Row::new()
                .with("AID", aid)
                .with("Street", format!("{aid} St"))
                .with("City", "N")
                .with("Zip", 37000 + aid)
        })
        .collect();
    system.bulk_load("Address", &addresses).unwrap();
    system
        .bulk_load("Department", &[Row::new().with("DNo", 1).with("DName", "D1")])
        .unwrap();
    let employee_rows: Vec<Row> = (1..=employees)
        .map(|eid| {
            Row::new()
                .with("EID", eid)
                .with("EName", format!("E{eid}"))
                .with("EHome_AID", eid)
                .with("EOffice_AID", 1)
                .with("E_DNo", 1)
        })
        .collect();
    system.bulk_load("Employee", &employee_rows).unwrap();
    let projects: Vec<Row> = (1..=3i64)
        .map(|pno| Row::new().with("PNo", pno).with("PName", format!("P{pno}")).with("P_DNo", 1))
        .collect();
    system.bulk_load("Project", &projects).unwrap();
    system.materialize_views().unwrap();
}

/// One randomized write: `(op, a, b, val)` drawn by proptest.
type Op = (u8, i64, i64, i64);

fn apply_ops(system: &SynergySystem, ops: &[Op]) {
    for &(op, a, b, val) in ops {
        match op {
            0 => {
                // Insert Works_On (delete first so repeats never collide).
                let _ = system.execute_sql(
                    "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
                    &[Value::Int(a), Value::Int(b)],
                );
                system
                    .execute_sql(
                        "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
                        &[Value::Int(a), Value::Int(b), Value::Int(val)],
                    )
                    .unwrap();
            }
            1 => {
                // Update the last relation of the Employee-Works_On view.
                let _ = system.execute_sql(
                    "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? AND WO_PNo = ?",
                    &[Value::Int(val), Value::Int(a), Value::Int(b)],
                );
            }
            2 => {
                let _ = system.execute_sql(
                    "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
                    &[Value::Int(a), Value::Int(b)],
                );
            }
            3 => {
                // Update a member (non-last) relation: rewrites view rows
                // in place across every view containing Employee.
                let _ = system.execute_sql(
                    "UPDATE Employee SET EName = ? WHERE EID = ?",
                    &[Value::str(format!("E{a}v{val}")), Value::Int(a)],
                );
            }
            _ => {
                // Update a join attribute of Employee (EHome_AID): the
                // delta pairs the before/after images, moving the
                // employee's rows between Address join partners.
                let _ = system.execute_sql(
                    "UPDATE Employee SET EHome_AID = ? WHERE EID = ?",
                    &[Value::Int(b), Value::Int(a)],
                );
            }
        }
    }
}

/// Canonical multiset form of a row set: per-row sorted (column, value)
/// pairs, rows sorted — order- and representation-independent equality.
fn canonical(rows: &[Row]) -> Vec<Vec<(String, String)>> {
    let mut out: Vec<Vec<(String, String)>> = rows
        .iter()
        .map(|r| {
            let mut cols: Vec<(String, String)> =
                r.iter().map(|(k, v)| (k.to_string(), format!("{v:?}"))).collect();
            cols.sort();
            cols
        })
        .collect();
    out.sort();
    out
}

/// Asserts every selected view's table equals a fresh recomputation of its
/// defining join.
fn assert_views_match_recompute(system: &SynergySystem) {
    for view in &system.selection().views.clone() {
        let expected = system.recompute_view_rows(view).unwrap();
        let select = parse_statement(&format!("SELECT * FROM {}", view.table_name())).unwrap();
        let actual = system.executor().execute(&select, &[]).unwrap().rows;
        assert_eq!(
            canonical(&actual),
            canonical(&expected),
            "view {} diverged from its defining join",
            view.display_name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Delta maintenance ≡ full recompute after randomized write
    /// sequences, at 1 and 4 region-parallel workers.
    #[test]
    fn delta_maintenance_equals_recompute(
        ops in proptest::collection::vec((0u8..5, 1i64..4, 1i64..4, 1i64..60), 1..20)
    ) {
        for threads in [1usize, 4] {
            let system = build_system(threads, 1);
            load_minimal(&system, 3);
            apply_ops(&system, &ops);
            assert_views_match_recompute(&system);
        }
    }

    /// The coalescing write batch defers maintenance without changing it:
    /// after a buffered run and one final flush, views are again exactly
    /// the recomputed join.
    #[test]
    fn buffered_maintenance_equals_recompute_after_flush(
        ops in proptest::collection::vec((0u8..5, 1i64..4, 1i64..4, 1i64..60), 1..20)
    ) {
        let system = build_system(1, 8);
        load_minimal(&system, 3);
        apply_ops(&system, &ops);
        system.flush_maintenance().unwrap();
        assert_views_match_recompute(&system);
    }
}
