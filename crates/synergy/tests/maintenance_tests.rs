//! Focused tests of the view-maintenance mechanism (paper §VII): the
//! applicability tests and the tuple/key construction procedures, exercised
//! directly against a small Company deployment, plus property-based checks
//! that maintenance keeps views equivalent to their defining joins under
//! random write sequences.

use nosql_store::{Cluster, ClusterConfig};
use proptest::prelude::*;
use query::ColumnType;
use relational::{company, Row, Value};
use sql::parse_workload;
use synergy::{SynergyConfig, SynergySystem};

fn company_types(_relation: &str, column: &str) -> Option<ColumnType> {
    matches!(
        column,
        "AID" | "EID" | "E_DNo" | "EHome_AID" | "EOffice_AID" | "DNo" | "DL_DNo" | "PNo" | "P_DNo"
            | "WO_EID" | "WO_PNo" | "Hours" | "DP_EID" | "DPHome_AID" | "Zip"
    )
    .then_some(ColumnType::Int)
}

fn empty_system() -> SynergySystem {
    let schema = company::company_schema();
    let workload =
        parse_workload(company::company_workload_sql().iter().map(String::as_str)).unwrap();
    SynergySystem::build(
        Cluster::new(ClusterConfig::default()),
        SynergyConfig::new(schema, workload, company::company_roots(), &company_types),
    )
    .unwrap()
}

fn load_minimal(system: &SynergySystem, employees: i64) {
    let addresses: Vec<Row> = (1..=employees)
        .map(|aid| {
            Row::new()
                .with("AID", aid)
                .with("Street", format!("{aid} St"))
                .with("City", "N")
                .with("Zip", 37000 + aid)
        })
        .collect();
    system.bulk_load("Address", &addresses).unwrap();
    system
        .bulk_load(
            "Department",
            &[Row::new().with("DNo", 1).with("DName", "D1")],
        )
        .unwrap();
    let employee_rows: Vec<Row> = (1..=employees)
        .map(|eid| {
            Row::new()
                .with("EID", eid)
                .with("EName", format!("E{eid}"))
                .with("EHome_AID", eid)
                .with("EOffice_AID", 1)
                .with("E_DNo", 1)
        })
        .collect();
    system.bulk_load("Employee", &employee_rows).unwrap();
    system
        .bulk_load(
            "Project",
            &[Row::new().with("PNo", 1).with("PName", "P1").with("P_DNo", 1)],
        )
        .unwrap();
    system.materialize_views().unwrap();
}

/// Counts the rows of the Employee⋈Works_On join evaluated over base tables
/// (ground truth) and through the Synergy read path (view backed).
fn join_counts(system: &SynergySystem) -> (usize, usize) {
    let statement = sql::parse_statement(
        "SELECT * FROM Employee AS e, Works_On AS wo WHERE e.EID = wo.WO_EID",
    )
    .unwrap();
    let via_base = system.executor().execute(&statement, &[]).unwrap().len();
    let via_view = system.execute(&statement, &[]).unwrap().len();
    (via_base, via_view)
}

#[test]
fn insert_with_missing_parent_creates_no_view_row() {
    let system = empty_system();
    load_minimal(&system, 2);
    // Works_On referencing a non-existent employee: foreign keys are not
    // enforced (§IV), so the base insert succeeds but no view tuple can be
    // constructed.
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(999), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
    assert_eq!(system.cluster().row_count("Works_On").unwrap(), 1);
    assert_eq!(system.cluster().row_count("V_Employee__Works_On").unwrap(), 0);
}

#[test]
fn view_index_follows_updates_of_the_indexed_attribute() {
    let system = empty_system();
    load_minimal(&system, 2);
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
    // The workload query W3 filters on Hours through the view-index.
    let by_hours = |hours: i64| {
        system
            .execute_sql(
                "SELECT * FROM Employee AS e, Works_On AS wo \
                 WHERE e.EID = wo.WO_EID AND wo.Hours = ?",
                &[Value::Int(hours)],
            )
            .unwrap()
            .len()
    };
    assert_eq!(by_hours(10), 1);
    assert_eq!(by_hours(55), 0);
    system
        .execute_sql(
            "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? AND WO_PNo = ?",
            &[Value::Int(55), Value::Int(1), Value::Int(1)],
        )
        .unwrap();
    assert_eq!(by_hours(10), 0, "stale view-index entry must not match");
    assert_eq!(by_hours(55), 1);
}

#[test]
fn update_of_unreferenced_attribute_keeps_views_untouched_in_size() {
    let system = empty_system();
    load_minimal(&system, 3);
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(2), Value::Int(1), Value::Int(8)],
        )
        .unwrap();
    let before = system.cluster().row_count("V_Employee__Works_On").unwrap();
    system
        .execute_sql(
            "UPDATE Employee SET EName = ? WHERE EID = ?",
            &[Value::str("Renamed"), Value::Int(2)],
        )
        .unwrap();
    assert_eq!(
        system.cluster().row_count("V_Employee__Works_On").unwrap(),
        before,
        "updates rewrite view rows in place, never add or remove them"
    );
}

#[test]
fn delete_of_parent_row_leaves_views_of_other_children_intact() {
    let system = empty_system();
    load_minimal(&system, 3);
    for eid in 1..=3 {
        system
            .execute_sql(
                "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
                &[Value::Int(eid), Value::Int(1), Value::Int(10 * eid)],
            )
            .unwrap();
    }
    system
        .execute_sql(
            "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
            &[Value::Int(2), Value::Int(1)],
        )
        .unwrap();
    let (via_base, via_view) = join_counts(&system);
    assert_eq!(via_base, 2);
    assert_eq!(via_view, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant: after an arbitrary sequence of inserts, hour-updates and
    /// deletes on Works_On, the view-backed answer to the Employee⋈Works_On
    /// join equals the base-table answer (the view is exactly the join).
    #[test]
    fn views_stay_equivalent_to_their_defining_join(
        ops in proptest::collection::vec((0u8..3, 1i64..4, 1i64..4, 1i64..60), 1..25)
    ) {
        let system = empty_system();
        load_minimal(&system, 3);
        for (op, eid, pno, hours) in ops {
            match op {
                0 => {
                    // Insert (ignore duplicates by deleting first).
                    let _ = system.execute_sql(
                        "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
                        &[Value::Int(eid), Value::Int(pno)],
                    );
                    system.execute_sql(
                        "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
                        &[Value::Int(eid), Value::Int(pno), Value::Int(hours)],
                    ).unwrap();
                }
                1 => {
                    system.execute_sql(
                        "UPDATE Works_On SET Hours = ? WHERE WO_EID = ? AND WO_PNo = ?",
                        &[Value::Int(hours), Value::Int(eid), Value::Int(pno)],
                    ).unwrap();
                }
                _ => {
                    system.execute_sql(
                        "DELETE FROM Works_On WHERE WO_EID = ? AND WO_PNo = ?",
                        &[Value::Int(eid), Value::Int(pno)],
                    ).unwrap();
                }
            }
            let (via_base, via_view) = join_counts(&system);
            prop_assert_eq!(via_base, via_view);
        }
        // No dirty markers may be left behind by any of the updates.
        let raw = system
            .cluster()
            .scan("V_Employee__Works_On", nosql_store::ops::Scan::all())
            .unwrap();
        prop_assert!(raw
            .iter()
            .all(|r| r.value("cf", "_dirty").map(|v| v != b"1").unwrap_or(true)));
    }
}

/// The full-view-scan fallback (and the index path) ride the executor's
/// snapshot bound: a maintainer built over a snapshot-bounded executor must
/// not observe view rows written after the snapshot.
#[test]
fn find_affected_view_rows_fallback_honors_the_snapshot_bound() {
    let system = empty_system();
    load_minimal(&system, 2);
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(1), Value::Int(1), Value::Int(10)],
        )
        .unwrap();
    // Everything written so far is visible at `snapshot`.
    let snapshot = system.cluster().next_timestamp();
    // A second view row for employee 1, written after the snapshot.
    system
        .execute_sql(
            "INSERT INTO Works_On (WO_EID, WO_PNo, Hours) VALUES (?, ?, ?)",
            &[Value::Int(1), Value::Int(2), Value::Int(20)],
        )
        .unwrap();

    let view = system
        .selection()
        .views
        .iter()
        .find(|v| v.display_name() == "Employee-Works_On")
        .expect("employee/works_on view selected")
        .clone();
    let key = Row::new().with("EID", 1);
    // No view-indexes handed to the maintainer: forces the full-scan
    // fallback ("Employee" is not the view's last relation).
    let bounded = synergy::ViewMaintainer::new(
        system.executor().clone().with_snapshot_bound(snapshot),
        system.schema().clone(),
        vec![view.clone()],
        Vec::new(),
    );
    let unbounded = synergy::ViewMaintainer::new(
        system.executor().clone(),
        system.schema().clone(),
        vec![view.clone()],
        Vec::new(),
    );
    let seen_bounded = bounded
        .find_affected_view_rows(&view, "Employee", &key)
        .unwrap();
    let seen_unbounded = unbounded
        .find_affected_view_rows(&view, "Employee", &key)
        .unwrap();
    assert_eq!(seen_unbounded.len(), 2, "both view rows visible unbounded");
    assert_eq!(
        seen_bounded.len(),
        1,
        "the post-snapshot view row must be invisible under the bound"
    );
}
