//! A schema-oblivious, purely workload-based view advisor.
//!
//! The paper's MVCC-UA comparison system obtains its materialized views from
//! SQL Server's Database Engine Tuning Advisor — a selection mechanism in
//! the style of Agrawal et al. (VLDB 2000) that looks only at the workload
//! and a storage budget, ignoring the schema's key/foreign-key structure and
//! the view-maintenance cost it induces (paper §IX-D2 and §X).  The outcome
//! in the paper is that MVCC-UA materializes far fewer useful views than
//! Synergy (only query Q10 benefits).
//!
//! This module reproduces that behaviour: it enumerates the join-table sets
//! appearing in the workload's equi-join queries, scores them by how many
//! workload queries they serve, estimates their storage footprint from base
//! table statistics, and greedily picks views until a storage budget is
//! exhausted — with no regard for schema relationships, write amplification
//! or the number of locks a transaction would need.

use sql::{SelectStatement, Statement};
use std::collections::BTreeMap;

/// A view proposed by the advisor: the exact set of tables of one workload
/// join query, materialized as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvisedView {
    /// Tables participating in the view, in workload order.
    pub tables: Vec<String>,
    /// Number of workload queries whose FROM clause is exactly this set.
    pub supporting_queries: usize,
    /// Estimated storage footprint in bytes.
    pub estimated_bytes: u64,
}

impl AdvisedView {
    /// Physical table name for the advised view, e.g. `UA_Item__Order_line`.
    pub fn table_name(&self) -> String {
        format!("UA_{}", self.tables.join("__"))
    }
}

/// Per-table statistics the advisor uses to estimate view sizes.
#[derive(Debug, Clone, Default)]
pub struct TableStatistics {
    /// Estimated row count per table.
    pub rows: BTreeMap<String, u64>,
    /// Estimated bytes per row per table.
    pub row_bytes: BTreeMap<String, u64>,
}

impl TableStatistics {
    /// Records statistics for one table.
    pub fn set(&mut self, table: impl Into<String>, rows: u64, row_bytes: u64) {
        let table = table.into();
        self.rows.insert(table.clone(), rows);
        self.row_bytes.insert(table, row_bytes);
    }

    fn estimate_view_bytes(&self, tables: &[String]) -> u64 {
        // A key/foreign-key chain join has as many rows as its largest
        // participant; the advisor has no schema knowledge, so it uses that
        // as an optimistic estimate, with row width the sum of the inputs.
        let rows = tables
            .iter()
            .map(|t| self.rows.get(t).copied().unwrap_or(1_000))
            .max()
            .unwrap_or(0);
        let width: u64 = tables
            .iter()
            .map(|t| self.row_bytes.get(t).copied().unwrap_or(128))
            .sum();
        rows * width
    }
}

/// Runs the advisor: returns the views it would materialize, most valuable
/// first, greedily packed under `storage_budget_bytes`.
pub fn advise_views(
    workload: &[Statement],
    stats: &TableStatistics,
    storage_budget_bytes: u64,
) -> Vec<AdvisedView> {
    // Group equi-join queries by their exact table set.
    let mut groups: BTreeMap<Vec<String>, usize> = BTreeMap::new();
    for statement in workload {
        let Some(select) = statement.as_select() else {
            continue;
        };
        if !is_simple_equi_join(select) {
            continue;
        }
        let mut tables: Vec<String> = select.from.iter().map(|t| t.table.clone()).collect();
        tables.sort();
        tables.dedup();
        if tables.len() < 2 {
            continue;
        }
        *groups.entry(tables).or_insert(0) += 1;
    }

    let mut candidates: Vec<AdvisedView> = groups
        .into_iter()
        .map(|(tables, supporting_queries)| AdvisedView {
            estimated_bytes: stats.estimate_view_bytes(&tables),
            tables,
            supporting_queries,
        })
        .collect();
    // Benefit per byte: queries served divided by storage cost, which is how
    // budget-constrained advisors rank indexed views.
    candidates.sort_by(|a, b| {
        let score_a = a.supporting_queries as f64 / a.estimated_bytes.max(1) as f64;
        let score_b = b.supporting_queries as f64 / b.estimated_bytes.max(1) as f64;
        score_b
            .partial_cmp(&score_a)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.tables.cmp(&b.tables))
    });

    let mut remaining = storage_budget_bytes;
    let mut selected = Vec::new();
    for candidate in candidates {
        if candidate.estimated_bytes <= remaining {
            remaining -= candidate.estimated_bytes;
            selected.push(candidate);
        }
    }
    selected
}

/// The advisor only materializes plain conjunctive equi-join queries (no
/// aggregates, no self-joins), mirroring SQL Server's indexed-view
/// restrictions that the tuning advisor must respect.
fn is_simple_equi_join(select: &SelectStatement) -> bool {
    if !select.is_join_query() || select.has_aggregates() {
        return false;
    }
    let mut seen = std::collections::BTreeSet::new();
    for t in &select.from {
        if !seen.insert(t.table.to_ascii_lowercase()) {
            return false;
        }
    }
    select.join_conditions().len() >= select.from.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql::parse_workload;

    fn stats() -> TableStatistics {
        let mut s = TableStatistics::default();
        s.set("Customer", 10_000, 100);
        s.set("Orders", 100_000, 80);
        s.set("Order_line", 1_000_000, 60);
        s.set("Item", 100_000, 200);
        s.set("Author", 25_000, 150);
        s
    }

    fn workload() -> Vec<Statement> {
        parse_workload([
            "SELECT * FROM Customer as c, Orders as o WHERE c.c_id = o.o_c_id AND c.c_uname = ?",
            "SELECT * FROM Item as i, Order_line as ol WHERE i.i_id = ol.ol_i_id AND ol.ol_o_id = ?",
            "SELECT * FROM Item as i, Order_line as ol WHERE i.i_id = ol.ol_i_id AND i.i_subject = ?",
            "SELECT i.i_id, SUM(ol.ol_qty) AS q FROM Item as i, Order_line as ol \
             WHERE i.i_id = ol.ol_i_id GROUP BY i.i_id",
            "SELECT * FROM Item as a, Item as b WHERE a.i_id = b.i_related1",
            "UPDATE Item SET i_cost = ? WHERE i_id = ?",
        ])
        .unwrap()
    }

    #[test]
    fn advisor_groups_queries_by_table_set() {
        let views = advise_views(&workload(), &stats(), u64::MAX);
        assert_eq!(views.len(), 2);
        let item_ol = views
            .iter()
            .find(|v| v.tables == vec!["Item".to_string(), "Order_line".to_string()])
            .unwrap();
        assert_eq!(item_ol.supporting_queries, 2);
        assert_eq!(item_ol.table_name(), "UA_Item__Order_line");
    }

    #[test]
    fn aggregates_self_joins_and_writes_are_ignored() {
        let views = advise_views(&workload(), &stats(), u64::MAX);
        assert!(views.iter().all(|v| v.tables != vec!["Item".to_string()]));
        assert!(!views.iter().any(|v| v.tables.len() == 1));
    }

    #[test]
    fn storage_budget_limits_the_selection() {
        let all = advise_views(&workload(), &stats(), u64::MAX);
        assert_eq!(all.len(), 2);
        // A budget that only fits the cheaper view.
        let small_budget = all.iter().map(|v| v.estimated_bytes).min().unwrap();
        let constrained = advise_views(&workload(), &stats(), small_budget);
        assert_eq!(constrained.len(), 1);
        let none = advise_views(&workload(), &stats(), 10);
        assert!(none.is_empty());
    }

    #[test]
    fn ranking_prefers_benefit_per_byte() {
        let views = advise_views(&workload(), &stats(), u64::MAX);
        // Customer⋈Orders is far smaller than Item⋈Order_line and serves one
        // query; Item⋈Order_line serves two but costs ~100x more storage, so
        // the per-byte ranking puts Customer⋈Orders first.
        assert_eq!(views[0].tables, vec!["Customer".to_string(), "Orders".to_string()]);
    }

    #[test]
    fn estimate_grows_with_inputs() {
        let s = stats();
        let small = s.estimate_view_bytes(&["Customer".into(), "Orders".into()]);
        let large = s.estimate_view_bytes(&["Item".into(), "Order_line".into()]);
        assert!(large > small);
    }
}
