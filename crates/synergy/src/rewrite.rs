//! Query re-writing over selected views (paper §VI-B).
//!
//! To re-write a query, the constituent relations of each selected view are
//! replaced by the view, and join conditions whose two sides both fall
//! inside a single view are removed (they are already materialized).  Column
//! references that used the replaced relations' aliases are re-qualified
//! with the view's name, which works because attribute names are unique
//! across the relations of a view (true for both the Company and the TPC-W
//! schemas).
//!
//! The rewrite plugs into the query planner as a rule:
//! [`SynergyRewriter`] implements [`query::PlanRewriter`], so view
//! substitution happens inside `Session`'s compile pipeline and shows up
//! as a `Rewrite` node in `EXPLAIN` output instead of running as an opaque
//! pre-pass over statement text.

use crate::selection::{select_views_for_query, SelectionOutcome};
use crate::viewgen::{CandidateViews, ViewDefinition};
use query::PlanRewriter;
use sql::{ColumnRef, Condition, Expr, OrderKey, SelectItem, SelectStatement, Statement, TableRef};
use std::collections::BTreeMap;

/// Rewrites one SELECT over the views selected for it.  Returns the original
/// query unchanged when `views` is empty.
pub fn rewrite_query(select: &SelectStatement, views: &[ViewDefinition]) -> SelectStatement {
    if views.is_empty() {
        return select.clone();
    }

    // Map each original alias to the view that swallows its relation.
    let mut alias_to_view: BTreeMap<String, &ViewDefinition> = BTreeMap::new();
    for table_ref in &select.from {
        for view in views {
            if view
                .relations
                .iter()
                .any(|r| r.eq_ignore_ascii_case(&table_ref.table))
            {
                alias_to_view.insert(table_ref.alias.clone(), view);
                break;
            }
        }
    }

    // New FROM clause: each view once, plus every table not covered by a view.
    let mut from: Vec<TableRef> = Vec::new();
    for view in views {
        from.push(TableRef::named(view.table_name()));
    }
    for table_ref in &select.from {
        if !alias_to_view.contains_key(&table_ref.alias) {
            from.push(table_ref.clone());
        }
    }

    let requalify = |column: &ColumnRef| -> ColumnRef {
        match &column.qualifier {
            Some(q) => match alias_to_view.get(q) {
                Some(view) => ColumnRef::qualified(view.table_name(), column.column.clone()),
                None => column.clone(),
            },
            None => column.clone(),
        }
    };

    // WHERE: drop equi-join conditions internal to a single view, re-qualify
    // the rest.
    let mut conditions: Vec<Condition> = Vec::new();
    for condition in &select.conditions {
        if condition.is_equi_join() {
            if let Expr::Column(right) = &condition.right {
                let left_view = condition
                    .left
                    .qualifier
                    .as_deref()
                    .and_then(|q| alias_to_view.get(q))
                    .map(|v| v.table_name());
                let right_view = right
                    .qualifier
                    .as_deref()
                    .and_then(|q| alias_to_view.get(q))
                    .map(|v| v.table_name());
                if let (Some(l), Some(r)) = (&left_view, &right_view) {
                    if l == r {
                        continue; // join is materialized inside the view
                    }
                }
            }
        }
        let right = match &condition.right {
            Expr::Column(c) => Expr::Column(requalify(c)),
            other => other.clone(),
        };
        conditions.push(Condition {
            left: requalify(&condition.left),
            op: condition.op,
            right,
        });
    }

    let items = select
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => SelectItem::Wildcard,
            SelectItem::Column { column, alias } => SelectItem::Column {
                column: requalify(column),
                alias: alias.clone(),
            },
            SelectItem::Aggregate {
                function,
                argument,
                alias,
            } => SelectItem::Aggregate {
                function: *function,
                argument: argument.as_ref().map(&requalify),
                alias: alias.clone(),
            },
        })
        .collect();

    SelectStatement {
        items,
        from,
        conditions,
        group_by: select.group_by.iter().map(&requalify).collect(),
        order_by: select
            .order_by
            .iter()
            .map(|k| OrderKey {
                column: requalify(&k.column),
                descending: k.descending,
            })
            .collect(),
        limit: select.limit,
    }
}

/// Rewrites an entire workload using a [`SelectionOutcome`]: statement `i` is
/// rewritten over `outcome.per_query[i]` when present, otherwise kept as is.
pub fn rewrite_workload(workload: &[Statement], outcome: &SelectionOutcome) -> Vec<Statement> {
    workload
        .iter()
        .enumerate()
        .map(|(idx, statement)| rewrite_statement(statement, outcome.per_query.get(&idx)))
        .collect()
}

/// Rewrites a single statement given the views selected for it (write
/// statements are returned unchanged — view maintenance handles them).
pub fn rewrite_statement(statement: &Statement, views: Option<&Vec<ViewDefinition>>) -> Statement {
    match (statement, views) {
        (Statement::Select(select), Some(views)) if !views.is_empty() => {
            Statement::Select(rewrite_query(select, views))
        }
        _ => statement.clone(),
    }
}

/// The Synergy view substitution as a planner rule
/// ([`query::PlanRewriter`]): workload statements use the views the §VI-A
/// selection already chose for them (looked up by statement text), ad-hoc
/// statements run the per-query marking procedure on the fly.
///
/// Installed on a [`query::Session`], the rule fires during statement
/// compilation — once per plan-cache miss, not per execution — and records
/// a `Rewrite` node naming the substituted views in the plan tree.
pub struct SynergyRewriter {
    candidates: CandidateViews,
    workload: Vec<Statement>,
    /// Views selected per workload statement, keyed by statement text
    /// (mirrors how the old per-statement rewrite cache was keyed).
    views_by_sql: BTreeMap<String, Vec<ViewDefinition>>,
}

impl SynergyRewriter {
    /// Builds the rule from the offline pipeline's outputs.
    pub fn new(
        candidates: CandidateViews,
        workload: Vec<Statement>,
        outcome: &SelectionOutcome,
    ) -> SynergyRewriter {
        let mut views_by_sql = BTreeMap::new();
        for (idx, statement) in workload.iter().enumerate() {
            if let Some(views) = outcome.per_query.get(&idx) {
                views_by_sql.insert(statement.to_string(), views.clone());
            }
        }
        SynergyRewriter {
            candidates,
            workload,
            views_by_sql,
        }
    }

    /// The views this rule would substitute into one SELECT (empty = the
    /// statement passes through unchanged).
    pub fn views_for(&self, select: &SelectStatement) -> Vec<ViewDefinition> {
        match self.views_by_sql.get(&select.to_string()) {
            Some(views) => views.clone(),
            None => select_views_for_query(&self.candidates, select, &self.workload),
        }
    }
}

impl PlanRewriter for SynergyRewriter {
    fn rule_name(&self) -> &str {
        "synergy-view-rewrite"
    }

    fn rewrite_select(&self, select: &SelectStatement) -> Option<(SelectStatement, String)> {
        let views = self.views_for(select);
        if views.is_empty() {
            return None;
        }
        let note = views
            .iter()
            .map(|v| format!("{} replaces {}", v.table_name(), v.relations.join(", ")))
            .collect::<Vec<_>>()
            .join("; ");
        Some((rewrite_query(select, &views), note))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::select_views;
    use crate::viewgen::generate_candidate_views;
    use relational::company;
    use sql::{parse_statement, parse_workload, Comparison};

    fn company_outcome() -> (Vec<Statement>, SelectionOutcome) {
        let schema = company::company_schema();
        let sql_texts = company::company_workload_sql();
        let workload = parse_workload(sql_texts.iter().map(String::as_str)).unwrap();
        let candidates = generate_candidate_views(&schema, &workload, &company::company_roots());
        let outcome = select_views(&schema, &candidates, &workload);
        (workload, outcome)
    }

    #[test]
    fn w1_is_rewritten_to_a_single_view_scan() {
        let (workload, outcome) = company_outcome();
        let rewritten = rewrite_workload(&workload, &outcome);
        let select = rewritten[0].as_select().unwrap();
        assert_eq!(select.from.len(), 1);
        assert_eq!(select.from[0].table, "V_Address__Employee");
        // The a.AID = e.EHome_AID join disappears; the EID filter survives,
        // re-qualified to the view.
        assert_eq!(select.conditions.len(), 1);
        assert_eq!(select.conditions[0].left.qualified_name(), "V_Address__Employee.EID");
        assert_eq!(select.conditions[0].op, Comparison::Eq);
    }

    #[test]
    fn w2_keeps_the_cross_tree_join_against_department() {
        let (workload, outcome) = company_outcome();
        let rewritten = rewrite_workload(&workload, &outcome);
        let select = rewritten[1].as_select().unwrap();
        // Employee⋈Works_On is folded into the view; Department remains a
        // base table joined against the view.
        assert_eq!(select.from.len(), 2);
        let tables: Vec<&str> = select.from.iter().map(|t| t.table.as_str()).collect();
        assert!(tables.contains(&"V_Employee__Works_On"));
        assert!(tables.contains(&"Department"));
        let joins: Vec<String> = select
            .conditions
            .iter()
            .filter(|c| c.is_equi_join())
            .map(|c| c.to_string())
            .collect();
        assert_eq!(joins.len(), 1);
        assert!(joins[0].contains("DNo"));
    }

    #[test]
    fn paper_figure_6_rewrite_shape() {
        // SELECT * FROM R2,R3,R4,R5,R6 WHERE ... rewritten over views
        // R2-R3-R4 and R5-R6 becomes a join of the two views on pk2 = fk5.
        let query = parse_statement(
            "SELECT * FROM R2, R3, R4, R5, R6 \
             WHERE R2.pk2 = R3.fk3 AND R3.pk3 = R4.fk4 AND R2.pk2 = R5.fk5 AND R5.pk5 = R6.fk6",
        )
        .unwrap();
        let edge = |from: &str, to: &str, pk: &str, fk: &str| relational::GraphEdge {
            from: from.into(),
            to: to.into(),
            pk: vec![pk.into()],
            fk: vec![fk.into()],
        };
        let v1 = ViewDefinition::from_edges(vec![
            edge("R2", "R3", "pk2", "fk3"),
            edge("R3", "R4", "pk3", "fk4"),
        ]);
        let v2 = ViewDefinition::from_edges(vec![edge("R5", "R6", "pk5", "fk6")]);
        let rewritten = rewrite_query(query.as_select().unwrap(), &[v1, v2]);
        assert_eq!(rewritten.from.len(), 2);
        assert_eq!(rewritten.conditions.len(), 1);
        let cond = &rewritten.conditions[0];
        assert_eq!(cond.left.qualified_name(), "V_R2__R3__R4.pk2");
        assert_eq!(
            cond.to_string(),
            "V_R2__R3__R4.pk2 = V_R5__R6.fk5"
        );
    }

    #[test]
    fn statements_without_views_pass_through_unchanged() {
        let (mut workload, outcome) = company_outcome();
        workload.push(parse_statement("UPDATE Employee SET EName = ? WHERE EID = ?").unwrap());
        workload.push(parse_statement("SELECT * FROM Department WHERE DNo = ?").unwrap());
        let rewritten = rewrite_workload(&workload, &outcome);
        assert_eq!(rewritten[3], workload[3]);
        assert_eq!(rewritten[4], workload[4]);
    }

    #[test]
    fn order_by_and_aggregates_are_requalified() {
        let (_, outcome) = company_outcome();
        let query = parse_statement(
            "SELECT wo.WO_EID, SUM(wo.Hours) AS h FROM Employee as e, Works_On as wo \
             WHERE e.EID = wo.WO_EID GROUP BY wo.WO_EID ORDER BY e.EName DESC LIMIT 3",
        )
        .unwrap();
        let views = outcome
            .view_by_table_name("V_Employee__Works_On")
            .cloned()
            .map(|v| vec![v])
            .unwrap();
        let rewritten = rewrite_query(query.as_select().unwrap(), &views);
        assert_eq!(rewritten.from.len(), 1);
        assert!(rewritten.conditions.is_empty());
        assert_eq!(rewritten.group_by[0].qualified_name(), "V_Employee__Works_On.WO_EID");
        assert_eq!(rewritten.order_by[0].column.qualified_name(), "V_Employee__Works_On.EName");
        assert_eq!(rewritten.limit, Some(3));
        let text = rewritten.to_string();
        assert!(text.contains("SUM(V_Employee__Works_On.Hours) AS h"));
    }
}
