//! **Partial view materialization** (the Noria model): residency tracking,
//! demand-fill bookkeeping and cold-key eviction for memory-bounded views.
//!
//! With a byte budget configured ([`crate::SynergyConfig::with_view_budget`])
//! views start empty and fill on demand: a read routed to a view first
//! consults the [`ViewResidency`] map; on a miss the system issues an
//! **upquery** — the view's defining join, parameterized on the missing key
//! range and executed through the ordinary session/plan-cache pipeline —
//! and installs the result here as resident rows.  Eviction keeps total
//! resident view bytes under the budget with a CLOCK/second-chance sweep
//! over view keys; evicting a key deletes its view rows through the charged
//! write path and clears residency.  The maintenance engine consults the
//! same map so deltas targeting non-resident keys are **annihilated**
//! (dropped) instead of maintained — write traffic on cold keys does zero
//! view work.
//!
//! The unit of residency is the encoded **leading key attribute** of a
//! view: for `V_Customer__Orders` (key `o_id`) one entry is one view row,
//! for `V_Customer__Orders__Order_line` (key `ol_o_id, ol_id`) one entry is
//! the whole order-line group of one order — exactly the slice one upquery
//! recomputes.  A key with zero matching rows is still installed (negative
//! caching), so repeated reads of an absent key stay hits.
//!
//! Concurrency model: one global mutex guards the residency map, and every
//! view-side store write in partial mode (install, evict, delta apply)
//! happens under it, so the store contents and the map never disagree.
//! Readers take a **pin** on each entry they depend on for the duration of
//! the rewritten query; pinned entries are exempt from eviction, so a scan
//! can never observe a half-deleted key.  A key being filled is in the
//! `Filling` state: concurrent readers spin until it becomes resident, and
//! maintenance deltas arriving mid-fill are queued and replayed (deferred)
//! on top of the installed upquery result, which is safe because every
//! delta write is a state overwrite (upsert / delete by key).

use query::{Executor, QueryError, TableDef};
use relational::{Row, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The outcome of a residency probe for one view key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The key is resident; a pin was taken — release it with
    /// [`ViewResidency::unpin`] after the read completes.
    Hit,
    /// The key was absent; a `Filling` placeholder is now registered and
    /// the caller owns the fill — it must call
    /// [`ViewResidency::complete_fill`] or [`ViewResidency::abort_fill`].
    Fill,
    /// Another caller is filling this key; retry the probe shortly.
    Wait,
}

/// A maintenance-delta write against one view row, routed through
/// [`ViewResidency::apply_view_write`] in partial mode.
#[derive(Debug, Clone)]
pub enum ViewWrite {
    /// Insert-or-overwrite one view row (covers delta inserts and staged
    /// rewrites; [`Executor::update_row`] keeps index entries correct in
    /// both cases).
    Upsert(Row),
    /// Delete one view row by its key attributes.
    Remove(Row),
}

/// What [`ViewResidency::apply_view_write`] did with a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintOutcome {
    /// The key was resident: the write went to the store; `touched` view
    /// rows changed.
    Applied {
        /// View rows written or removed (0 when a remove missed).
        touched: u64,
    },
    /// The key was mid-fill: the write was queued and will be replayed
    /// after the upquery result is installed.
    Deferred,
    /// The key was not resident: the delta was dropped.
    Annihilated,
}

/// Per-key residency entry.
#[derive(Debug)]
struct Entry {
    /// Resident view rows of the key: encoded row key → (key attributes,
    /// estimated resident bytes).  Empty while filling, and for resident
    /// keys with no matching rows (negative caching).
    rows: BTreeMap<String, (Row, u64)>,
    /// CLOCK reference bit: set on every hit, cleared by a sweep pass.
    referenced: bool,
    /// Readers currently depending on this key; pinned entries are exempt
    /// from eviction.
    pins: u32,
    /// Deltas that arrived while the key was being filled, replayed after
    /// install; `None` once resident.
    filling: Option<Vec<ViewWrite>>,
}

impl Entry {
    fn bytes(&self) -> u64 {
        self.rows.values().map(|(_, b)| *b).sum()
    }
}

#[derive(Debug, Default)]
struct ResidencyState {
    /// view table → encoded leading-key prefix → entry.
    views: BTreeMap<String, BTreeMap<String, Entry>>,
    /// CLOCK ring of `(view table, prefix)`; stale pairs (already evicted
    /// through another path) are dropped lazily as the hand meets them.
    ring: Vec<(String, String)>,
    /// CLOCK hand: index into `ring` of the next sweep candidate.
    hand: usize,
    /// Total resident view bytes across all views.
    total_bytes: u64,
    /// Total resident view rows across all views.
    total_rows: u64,
}

/// Counters and residency totals of one [`ViewResidency`] (see
/// [`ViewResidency::snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidencySnapshot {
    /// Resident view bytes (estimated, same model as table sizing).
    pub resident_bytes: u64,
    /// Resident view rows.
    pub resident_rows: u64,
    /// Resident view keys (residency entries).
    pub resident_keys: u64,
    /// Reads that found every view key resident.
    pub hits: u64,
    /// Reads that missed at least one view key.
    pub misses: u64,
    /// Upqueries issued (one per missing key).
    pub upqueries: u64,
    /// Keys evicted by the CLOCK sweep.
    pub evicted_keys: u64,
    /// View rows deleted by eviction.
    pub evicted_rows: u64,
    /// Maintenance deltas dropped because their key was not resident.
    pub annihilated: u64,
    /// Maintenance deltas queued mid-fill and replayed after install.
    pub deferred: u64,
    /// View-routed reads that bypassed the partial path (no key binding).
    pub bypasses: u64,
}

/// The partial-materialization residency map of one Synergy deployment
/// (see the module docs for the model).
#[derive(Debug)]
pub struct ViewResidency {
    /// Total resident-byte budget across all views (`u64::MAX` = bounded
    /// only by demand).
    budget: u64,
    state: Mutex<ResidencyState>,
    hits: AtomicU64,
    misses: AtomicU64,
    upqueries: AtomicU64,
    evicted_keys: AtomicU64,
    evicted_rows: AtomicU64,
    annihilated: AtomicU64,
    deferred: AtomicU64,
    bypasses: AtomicU64,
}

impl ViewResidency {
    /// Creates an empty residency map with the given byte budget.
    pub fn new(budget: u64) -> Self {
        ViewResidency {
            budget,
            state: Mutex::new(ResidencyState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            upqueries: AtomicU64::new(0),
            evicted_keys: AtomicU64::new(0),
            evicted_rows: AtomicU64::new(0),
            annihilated: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// The configured resident-byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The encoded leading-key prefix of `row` under `view_def` — the
    /// residency unit (see module docs).
    pub fn prefix_of(view_def: &TableDef, row: &Row) -> String {
        view_def.encode_key_prefix(row, 1)
    }

    /// The residency prefix for one bound leading-key value.
    pub fn prefix_of_value(value: &Value) -> String {
        relational::encode_key([value])
    }

    /// Probes residency of `prefix` in `view_table` (see [`Lookup`]).
    pub fn lookup(&self, view_table: &str, prefix: &str) -> Lookup {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match state.views.get_mut(view_table).and_then(|v| v.get_mut(prefix)) {
            Some(entry) if entry.filling.is_some() => Lookup::Wait,
            Some(entry) => {
                entry.referenced = true;
                entry.pins += 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit
            }
            None => {
                state.views.entry(view_table.to_string()).or_default().insert(
                    prefix.to_string(),
                    Entry {
                        rows: BTreeMap::new(),
                        referenced: true,
                        pins: 0,
                        filling: Some(Vec::new()),
                    },
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.upqueries.fetch_add(1, Ordering::Relaxed);
                Lookup::Fill
            }
        }
    }

    /// Installs the upquery result for a key this caller is filling, then
    /// replays any deltas deferred mid-fill (they are newer than the
    /// upquery's snapshot, so they win), marks the key resident with one
    /// pin held for the caller, and sweeps eviction if the install pushed
    /// residency over budget.
    pub fn complete_fill(
        &self,
        executor: &Executor,
        view_def: &TableDef,
        prefix: &str,
        rows: &[Row],
    ) -> Result<(), QueryError> {
        let view_table = view_def.name.as_str();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Install the recomputed rows through the charged write path.
        for row in rows {
            if let Err(e) = executor.insert_row(view_table, row) {
                drop_entry(&mut state, view_table, prefix);
                return Err(e);
            }
        }
        let entry = state
            .views
            .get_mut(view_table)
            .and_then(|v| v.get_mut(prefix))
            // lint-allow(panic-freedom): entry inserted as Filling by begin_fill above
            .expect("filling entry present");
        for row in rows {
            let key = view_def.encode_row_key(row);
            let bytes = view_def.estimate_row_bytes(row) as u64;
            entry.rows.insert(key, (key_row(view_def, row), bytes));
        }
        let deferred = entry.filling.take().unwrap_or_default();
        entry.pins += 1;
        let mut touched_totals = (entry.rows.len() as u64, entry.bytes());
        for write in deferred {
            let entry = state
                .views
                .get_mut(view_table)
                .and_then(|v| v.get_mut(prefix))
                // lint-allow(panic-freedom): entry made resident earlier in this locked section
                .expect("resident entry present");
            apply_write_to_entry(executor, view_def, entry, write)?;
            touched_totals = (entry.rows.len() as u64, entry.bytes());
        }
        state.total_rows += touched_totals.0;
        state.total_bytes += touched_totals.1;
        state.ring.push((view_table.to_string(), prefix.to_string()));
        self.evict_to_budget(&mut state, executor)?;
        Ok(())
    }

    /// Abandons a fill this caller started (upquery failed): the
    /// placeholder is removed and its deferred deltas are dropped as
    /// annihilated (their key ends up non-resident).
    pub fn abort_fill(&self, view_table: &str, prefix: &str) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = state.views.get_mut(view_table).and_then(|v| v.remove(prefix)) {
            let dropped = entry.filling.map(|d| d.len() as u64).unwrap_or(0);
            self.annihilated.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Releases one reader pin taken by a [`Lookup::Hit`] probe or a
    /// completed fill.
    pub fn unpin(&self, view_table: &str, prefix: &str) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = state.views.get_mut(view_table).and_then(|v| v.get_mut(prefix)) {
            entry.pins = entry.pins.saturating_sub(1);
        }
    }

    /// Routes one maintenance delta: applied when its key is resident,
    /// queued when the key is mid-fill, dropped (annihilated) otherwise.
    pub fn apply_view_write(
        &self,
        executor: &Executor,
        view_def: &TableDef,
        write: ViewWrite,
    ) -> Result<MaintOutcome, QueryError> {
        let view_table = view_def.name.as_str();
        let prefix = match &write {
            ViewWrite::Upsert(row) | ViewWrite::Remove(row) => Self::prefix_of(view_def, row),
        };
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(entry) = state.views.get_mut(view_table).and_then(|v| v.get_mut(&prefix))
        else {
            self.annihilated.fetch_add(1, Ordering::Relaxed);
            return Ok(MaintOutcome::Annihilated);
        };
        if let Some(pending) = &mut entry.filling {
            pending.push(write);
            self.deferred.fetch_add(1, Ordering::Relaxed);
            return Ok(MaintOutcome::Deferred);
        }
        let (rows_before, bytes_before) = (entry.rows.len() as u64, entry.bytes());
        let touched = apply_write_to_entry(executor, view_def, entry, write)?;
        let (rows_after, bytes_after) = (entry.rows.len() as u64, entry.bytes());
        state.total_rows = state.total_rows + rows_after - rows_before;
        state.total_bytes = state.total_bytes + bytes_after - bytes_before;
        if bytes_after > bytes_before {
            self.evict_to_budget(&mut state, executor)?;
        }
        Ok(MaintOutcome::Applied { touched })
    }

    /// True when `row`'s key is resident (not filling) — gates dirty
    /// marking: marking a non-resident key would create a marker-only
    /// remnant row outside residency accounting.
    pub fn is_resident_for_row(&self, view_def: &TableDef, row: &Row) -> bool {
        let prefix = Self::prefix_of(view_def, row);
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state
            .views
            .get(view_def.name.as_str())
            .and_then(|v| v.get(&prefix))
            .is_some_and(|e| e.filling.is_none())
    }

    /// Counts one view-routed read that bypassed the partial path (the
    /// statement binds no leading-key value, so it runs baseline).
    pub fn count_bypass(&self) {
        self.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops all residency state (recovery: the store-side view rows are
    /// wiped separately, so the cache restarts cold).  Counters persist.
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = ResidencyState::default();
    }

    /// Current totals and counters.
    pub fn snapshot(&self) -> ResidencySnapshot {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        ResidencySnapshot {
            resident_bytes: state.total_bytes,
            resident_rows: state.total_rows,
            resident_keys: state.views.values().map(|v| v.len() as u64).sum(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            upqueries: self.upqueries.load(Ordering::Relaxed),
            evicted_keys: self.evicted_keys.load(Ordering::Relaxed),
            evicted_rows: self.evicted_rows.load(Ordering::Relaxed),
            annihilated: self.annihilated.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// CLOCK/second-chance sweep: while residency exceeds the budget, the
    /// hand walks the ring; referenced entries lose their bit and get a
    /// second chance, pinned or filling entries are skipped, and anything
    /// else is evicted — its view rows deleted through the charged write
    /// path and its residency cleared.  Bails out after two full laps
    /// without an eviction (everything pinned), leaving residency
    /// transiently over budget rather than spinning.
    fn evict_to_budget(
        &self,
        state: &mut ResidencyState,
        executor: &Executor,
    ) -> Result<(), QueryError> {
        let mut fruitless = 0usize;
        while state.total_bytes > self.budget && !state.ring.is_empty() {
            if fruitless > 2 * state.ring.len() {
                break;
            }
            if state.hand >= state.ring.len() {
                state.hand = 0;
            }
            let (view_table, prefix) = state.ring[state.hand].clone();
            let Some(entry) = state.views.get_mut(&view_table).and_then(|v| v.get_mut(&prefix))
            else {
                // Stale ring slot (key already gone); drop it in place.
                state.ring.remove(state.hand);
                continue;
            };
            if entry.pins > 0 || entry.filling.is_some() {
                fruitless += 1;
                state.hand += 1;
                continue;
            }
            if entry.referenced {
                entry.referenced = false;
                fruitless += 1;
                state.hand += 1;
                continue;
            }
            // Evict: delete the key's view rows (charged, index-correct)
            // and clear its residency.
            let victims: Vec<Row> =
                entry.rows.values().map(|(key_attrs, _)| key_attrs.clone()).collect();
            let rows = entry.rows.len() as u64;
            let bytes = entry.bytes();
            for key_attrs in &victims {
                executor.delete_row_by_key(&view_table, key_attrs)?;
            }
            // lint-allow(panic-freedom): victim keys come from iterating this same map
            state.views.get_mut(&view_table).expect("view map").remove(&prefix);
            state.total_rows -= rows;
            state.total_bytes -= bytes;
            state.ring.remove(state.hand);
            self.evicted_keys.fetch_add(1, Ordering::Relaxed);
            self.evicted_rows.fetch_add(rows, Ordering::Relaxed);
            fruitless = 0;
        }
        Ok(())
    }
}

/// The key-attribute projection of a view row (what a later keyed delete
/// needs).
fn key_row(view_def: &TableDef, row: &Row) -> Row {
    Row::from_pairs(
        view_def
            .key
            .iter()
            .map(|k| (k.as_str(), row.get(k).cloned().unwrap_or(Value::Null))),
    )
}

/// Applies one delta write to a resident entry's store rows and byte map;
/// returns the rows touched.
fn apply_write_to_entry(
    executor: &Executor,
    view_def: &TableDef,
    entry: &mut Entry,
    write: ViewWrite,
) -> Result<u64, QueryError> {
    match write {
        ViewWrite::Upsert(row) => {
            executor.update_row(&view_def.name, &row)?;
            let key = view_def.encode_row_key(&row);
            let bytes = view_def.estimate_row_bytes(&row) as u64;
            entry.rows.insert(key, (key_row(view_def, &row), bytes));
            Ok(1)
        }
        ViewWrite::Remove(row) => {
            let removed = executor.delete_row_by_key(&view_def.name, &row)?;
            entry.rows.remove(&view_def.encode_row_key(&row));
            Ok(removed as u64)
        }
    }
}

/// Removes a (failed) entry without touching totals — used when an install
/// errors before the entry was accounted.
fn drop_entry(state: &mut ResidencyState, view_table: &str, prefix: &str) {
    if let Some(views) = state.views.get_mut(view_table) {
        views.remove(prefix);
    }
}
