//! The Synergy transaction layer (paper §VIII): write-ahead logging, the
//! plan generator, and the write transaction procedures that atomically
//! update base tables, views and indexes under a single hierarchical lock.

use crate::lock::LockManager;
use crate::maintenance::MaintenanceEngine;
use crate::viewgen::CandidateViews;
use nosql_store::{WalOp, WriteAheadLog};
use query::{Executor, QueryError, QueryResult};
use relational::{encode_key, Row, Schema, Value};
use sql::Statement;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

/// Errors raised by the transaction layer.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// The underlying query/store layer failed.
    Query(QueryError),
    /// The hierarchical lock could not be acquired (contention timeout).
    LockTimeout {
        /// Root relation whose lock was requested.
        root: String,
        /// Root-row key.
        key: String,
    },
    /// The statement shape is not supported by the Synergy system (§IV).
    Unsupported(String),
    /// The transaction was aborted by an injected interrupt (test hook
    /// [`TransactionLayer::inject_interrupt_after_step`], simulating a
    /// client crash mid-transaction: the lock stays held, dirty markers
    /// stay set).
    Interrupted {
        /// The last completed step of the §VIII-B update procedure.
        step: u8,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Query(e) => write!(f, "{e}"),
            TxnError::LockTimeout { root, key } => {
                write!(f, "could not acquire lock on {root}/{key}")
            }
            TxnError::Unsupported(s) => write!(f, "unsupported statement: {s}"),
            TxnError::Interrupted { step } => {
                write!(f, "transaction interrupted after step {step} (injected crash)")
            }
        }
    }
}

impl std::error::Error for TxnError {
    /// Exposes the query-layer error as the source, so callers walking a
    /// `Box<dyn Error>` chain (via `?`) reach the underlying cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for TxnError {
    fn from(e: QueryError) -> Self {
        TxnError::Query(e)
    }
}

impl From<nosql_store::StoreError> for TxnError {
    fn from(e: nosql_store::StoreError) -> Self {
        // Keep the structured store error: `source()` walks
        // TxnError → QueryError → StoreError → (the exhausted fault).
        TxnError::Query(QueryError::Store(e))
    }
}

/// The execution plan the plan generator produces for one write transaction
/// (paper Figure 7, "Plan Generator").  Exposed for inspection in tests and
/// examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// Base relation being written.
    pub relation: String,
    /// The root relation whose lock is taken, if the relation belongs to a
    /// rooted tree.
    pub lock_root: Option<String>,
    /// Views that must be maintained by this transaction.
    pub affected_views: Vec<String>,
    /// Whether the update path (mark → update → unmark) is needed.
    pub uses_dirty_marking: bool,
}

/// The Synergy transaction layer: one logical slave node with its
/// write-ahead log, plus the plan generator and transaction procedures.
#[derive(Clone)]
pub struct TransactionLayer {
    executor: Executor,
    schema: Schema,
    candidates: CandidateViews,
    locks: LockManager,
    maintainer: MaintenanceEngine,
    wal: WriteAheadLog,
    next_txn: Arc<AtomicU64>,
    locking_enabled: bool,
    /// One-shot fault-injection hook: abort the next update transaction
    /// after the given §VIII-B step completes (see
    /// [`TransactionLayer::inject_interrupt_after_step`]).
    interrupt_after: Arc<std::sync::Mutex<Option<u8>>>,
}

impl TransactionLayer {
    /// Assembles the transaction layer.
    pub fn new(
        executor: Executor,
        schema: Schema,
        candidates: CandidateViews,
        locks: LockManager,
        maintainer: MaintenanceEngine,
    ) -> Self {
        TransactionLayer {
            executor,
            schema,
            candidates,
            locks,
            maintainer,
            wal: WriteAheadLog::new(),
            next_txn: Arc::new(AtomicU64::new(1)),
            locking_enabled: true,
            interrupt_after: Arc::new(std::sync::Mutex::new(None)),
        }
    }

    /// Arms a one-shot interrupt that aborts the next *update* transaction
    /// right after the given step of the §VIII-B procedure completes,
    /// simulating a client crash at that point: the hierarchical lock is
    /// **not** released (its guard is leaked, exactly as a dead client's
    /// would be) and any dirty markers already set stay set.  Steps:
    ///
    /// * `3` — view rows are marked dirty; base row and views unchanged;
    /// * `4` — the base row is written, the staged view updates are **not**
    ///   applied (mid-step-4: the window where views lag their base table);
    /// * `5` — base and views are written, the dirty markers are **not**
    ///   cleared (a permanently dirty view, absent recovery).
    ///
    /// Used by the crash-recovery tests and the fault benchmarks; the hook
    /// disarms after firing once.
    pub fn inject_interrupt_after_step(&self, step: u8) {
        *self.interrupt_after.lock().unwrap_or_else(PoisonError::into_inner) = Some(step);
    }

    /// Fires (and disarms) the injected interrupt if it is armed for `step`.
    fn maybe_interrupt(&self, step: u8) -> Result<(), TxnError> {
        let mut armed = self.interrupt_after.lock().unwrap_or_else(PoisonError::into_inner);
        if *armed == Some(step) {
            *armed = None;
            return Err(TxnError::Interrupted { step });
        }
        Ok(())
    }

    /// Enables or disables the hierarchical single-lock protocol.  The MVCC
    /// comparison systems disable it; Synergy keeps it on.
    pub fn with_hierarchical_locking(mut self, enabled: bool) -> Self {
        self.locking_enabled = enabled;
        self
    }

    /// The statement-level write-ahead log (stored in HDFS in the paper).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// The relational schema the transaction layer operates over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The view-maintenance engine (delta plans, write batch, counters).
    pub fn maintainer(&self) -> &MaintenanceEngine {
        &self.maintainer
    }

    /// Flushes any writes coalescing in the maintenance batch.  Returns the
    /// number of view rows touched.
    pub fn flush_maintenance(&self) -> Result<usize, TxnError> {
        Ok(self.maintainer.flush()?)
    }

    /// Generates the execution plan for a write statement.
    pub fn plan(&self, statement: &Statement) -> Result<WritePlan, TxnError> {
        let relation = statement
            .write_target()
            .ok_or_else(|| TxnError::Unsupported("read statements are executed directly".into()))?
            .to_string();
        let lock_root = self
            .candidates
            .tree_containing(&relation)
            .map(|t| t.root.clone());
        let (affected_views, uses_dirty_marking) = match statement {
            Statement::Insert(_) | Statement::Delete(_) => (
                self.maintainer
                    .views_for_insert(&relation)
                    .map(|v| v.display_name())
                    .collect(),
                false,
            ),
            Statement::Update(_) => (
                self.maintainer
                    .views_for_update(&relation)
                    .map(|v| v.display_name())
                    .collect(),
                true,
            ),
            Statement::Select(_) => (Vec::new(), false),
        };
        Ok(WritePlan {
            relation,
            lock_root,
            affected_views,
            uses_dirty_marking,
        })
    }

    /// Executes a write statement as a Synergy transaction: assign an id,
    /// log it, acquire the single hierarchical lock, update base table +
    /// views + indexes, release the lock.
    pub fn execute_write(
        &self,
        statement: &Statement,
        params: &[Value],
    ) -> Result<QueryResult, TxnError> {
        let txn_id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        // The slave's transaction manager appends the statement to its WAL
        // (one durable append per transaction) before executing it.
        self.wal.append(
            format!("txn-{txn_id}"),
            WalOp::Logical {
                payload: statement.to_string(),
            },
        );
        self.wal.sync();
        let model = self.executor.cluster().cost_model().clone();
        self.executor
            .cluster()
            .clock()
            .charge(model.rpc_latency + model.effective_wal_sync());

        match statement {
            Statement::Insert(insert) => self.run_insert(insert, params),
            Statement::Delete(delete) => self.run_delete(delete, params),
            Statement::Update(update) => self.run_update(update, params),
            Statement::Select(_) => Err(TxnError::Unsupported(
                "SELECT statements are executed outside the transaction layer".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Root-key resolution
    // ------------------------------------------------------------------

    /// Resolves the root-row key associated with a row of `relation` by
    /// walking the rooted-tree path upwards through foreign keys, reading at
    /// most one ancestor row per level (the plan generator's lookups).
    fn resolve_root_key(&self, relation: &str, row: &Row) -> Result<Option<(String, String)>, TxnError> {
        let Some(tree) = self.candidates.tree_containing(relation) else {
            return Ok(None);
        };
        let root = tree.root.clone();
        if root.eq_ignore_ascii_case(relation) {
            let def = self
                .executor
                .catalog()
                .table_ci(relation)
                .ok_or_else(|| QueryError::UnknownTable(relation.to_string()))?;
            return Ok(Some((root, def.encode_row_key(row))));
        }
        let path = tree
            .path_from_root(relation)
            .ok_or_else(|| TxnError::Unsupported(format!("{relation} not reachable from {root}")))?;
        // Walk from the relation up to the root.
        let mut current = row.clone();
        for edge in path.iter().rev() {
            let parent_key_values: Vec<Value> = edge
                .fk
                .iter()
                .map(|fk| current.get(fk).cloned().unwrap_or(Value::Null))
                .collect();
            if parent_key_values.iter().any(Value::is_null) {
                return Ok(None); // dangling reference: nothing to lock above
            }
            if edge.from.eq_ignore_ascii_case(&root) {
                return Ok(Some((root, encode_key(parent_key_values.iter()))));
            }
            let mut parent_key = Row::new();
            for (pk, value) in edge.pk.iter().zip(parent_key_values.iter()) {
                parent_key.set(pk.clone(), value.clone());
            }
            match self.executor.get_row_by_key(&edge.from, &parent_key)? {
                Some(parent) => current = parent,
                None => return Ok(None),
            }
        }
        Ok(None)
    }

    fn acquire(&self, root_key: &Option<(String, String)>) -> Result<Option<crate::lock::LockGuard>, TxnError> {
        if !self.locking_enabled {
            return Ok(None);
        }
        match root_key {
            None => Ok(None),
            Some((root, key)) => match self.locks.acquire(root, key)? {
                Some(guard) => Ok(Some(guard)),
                None => Err(TxnError::LockTimeout {
                    root: root.clone(),
                    key: key.clone(),
                }),
            },
        }
    }

    fn release(&self, guard: Option<crate::lock::LockGuard>) -> Result<(), TxnError> {
        if let Some(guard) = guard {
            self.locks.release(guard)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transaction procedures (§VIII-B)
    // ------------------------------------------------------------------

    fn run_insert(
        &self,
        insert: &sql::InsertStatement,
        params: &[Value],
    ) -> Result<QueryResult, TxnError> {
        let def = self
            .executor
            .catalog()
            .table_ci(&insert.table)
            .ok_or_else(|| QueryError::UnknownTable(insert.table.clone()))?
            .clone();
        let mut row = Row::new();
        for (column, expr) in insert.columns.iter().zip(&insert.values) {
            row.set(column.clone(), bind(expr, params)?);
        }
        let root_key = if self.locking_enabled {
            self.resolve_root_key(&def.name, &row)?
        } else {
            None
        };
        let guard = self.acquire(&root_key)?;

        let result = (|| -> Result<QueryResult, TxnError> {
            self.executor.insert_row(&def.name, &row)?;
            // Inserting into a root relation creates its lock-table entry.
            if self.locking_enabled && self.candidates.tree_for_root(&def.name).is_some() {
                self.locks.create_lock_table(&def.name)?;
                self.locks.ensure_entry(&def.name, &def.encode_row_key(&row))?;
            }
            if self.maintainer.buffering() {
                self.maintainer.enqueue_insert(&def.name, &row)?;
            } else {
                self.maintainer.apply_insert(&def.name, &row)?;
            }
            Ok(QueryResult::affected(1))
        })();
        self.release(guard)?;
        result
    }

    fn run_delete(
        &self,
        delete: &sql::DeleteStatement,
        params: &[Value],
    ) -> Result<QueryResult, TxnError> {
        let def = self
            .executor
            .catalog()
            .table_ci(&delete.table)
            .ok_or_else(|| QueryError::UnknownTable(delete.table.clone()))?
            .clone();
        let key = key_from_eq_filters(&def.key, &delete.conditions, params)?;
        let Some(existing) = self.executor.get_row_by_key(&def.name, &key)? else {
            return Ok(QueryResult::affected(0));
        };
        let root_key = if self.locking_enabled {
            self.resolve_root_key(&def.name, &existing)?
        } else {
            None
        };
        let guard = self.acquire(&root_key)?;
        let result = (|| -> Result<QueryResult, TxnError> {
            if self.maintainer.buffering() {
                // Deferred maintenance: delete the base row now, coalesce
                // the retraction into the batch (an earlier buffered insert
                // of the same key annihilates with it).
                let removed = self.executor.delete_row_by_key(&def.name, &key)?;
                self.maintainer.enqueue_delete(&def.name, &existing)?;
                return Ok(QueryResult::affected(usize::from(removed)));
            }
            self.maintainer.apply_delete(&def.name, &key)?;
            let removed = self.executor.delete_row_by_key(&def.name, &key)?;
            Ok(QueryResult::affected(usize::from(removed)))
        })();
        self.release(guard)?;
        result
    }

    fn run_update(
        &self,
        update: &sql::UpdateStatement,
        params: &[Value],
    ) -> Result<QueryResult, TxnError> {
        let def = self
            .executor
            .catalog()
            .table_ci(&update.table)
            .ok_or_else(|| QueryError::UnknownTable(update.table.clone()))?
            .clone();
        let key = key_from_eq_filters(&def.key, &update.conditions, params)?;
        let Some(existing) = self.executor.get_row_by_key(&def.name, &key)? else {
            return Ok(QueryResult::affected(0));
        };
        let mut updated = existing.clone();
        for (column, expr) in &update.assignments {
            updated.set(column.clone(), bind(expr, params)?);
        }

        // Step 1: acquire the single hierarchical lock.
        let root_key = if self.locking_enabled {
            self.resolve_root_key(&def.name, &existing)?
        } else {
            None
        };
        let guard = self.acquire(&root_key)?;

        let result = (|| -> Result<QueryResult, TxnError> {
            if self.maintainer.buffering() {
                // Deferred maintenance: write the base row now (the
                // before-image rides the write), coalesce the delta into
                // the batch; propagation happens at flush.
                self.executor.update_row(&def.name, &updated)?;
                self.maintainer.enqueue_update(&def.name, &existing, &updated)?;
                return Ok(QueryResult::affected(1));
            }
            if self.maintainer.delta_enabled() {
                // Step 2 (delta): compute the view effects by propagating
                // the update through each view's delta plan (read-only
                // base-table probes, no view scanning).
                let staged = self
                    .maintainer
                    .stage_update(&def.name, &existing, &updated)?;
                // Step 3: mark the affected view rows dirty.
                self.maintainer.mark_staged(&staged)?;
                self.maybe_interrupt(3)?;
                // Step 4: issue the updates (base row first, then views).
                self.executor.update_row(&def.name, &updated)?;
                self.maybe_interrupt(4)?;
                self.maintainer.apply_staged(&staged)?;
                self.maybe_interrupt(5)?;
                // Step 5: un-mark the rewritten rows.
                self.maintainer.unmark_staged(&staged)?;
                return Ok(QueryResult::affected(1));
            }
            // Legacy scan path.
            // Step 2: read all the view rows that need to be updated.
            let views: Vec<_> = self
                .maintainer
                .views_for_update(&def.name)
                .cloned()
                .collect();
            let mut affected: Vec<(crate::viewgen::ViewDefinition, Vec<Row>)> = Vec::new();
            for view in views {
                let rows = self
                    .maintainer
                    .find_affected_view_rows(&view, &def.name, &key)?;
                affected.push((view, rows));
            }
            // Step 3: mark all rows that need to be updated.
            for (view, rows) in &affected {
                for row in rows {
                    self.maintainer.mark_dirty(view, row)?;
                }
            }
            // Step 4: issue the updates (base row first, then view rows).
            self.executor.execute(&Statement::Update(update.clone()), params)?;
            for (view, rows) in &affected {
                for row in rows {
                    self.maintainer.apply_update_to_view_row(view, row, &updated)?;
                }
            }
            // Step 5: un-mark all updated rows.
            for (view, rows) in &affected {
                for row in rows {
                    self.maintainer.unmark_dirty(view, row)?;
                }
            }
            Ok(QueryResult::affected(1))
        })();
        if let Err(TxnError::Interrupted { .. }) = result {
            // Simulated client crash: the dead client cannot release its
            // lock — leak the guard so the lock row stays held (recovery
            // reclaims it once the lease expires).
            if let Some(guard) = guard {
                std::mem::forget(guard);
            }
            return result;
        }
        // Step 6: release the lock.
        self.release(guard)?;
        result
    }
}

fn bind(expr: &sql::Expr, params: &[Value]) -> Result<Value, QueryError> {
    match expr {
        sql::Expr::Literal(v) => Ok(v.clone()),
        sql::Expr::Parameter(i) => params
            .get(*i)
            .cloned()
            .ok_or(QueryError::MissingParameter(*i)),
        sql::Expr::Column(c) => Err(QueryError::Unsupported(format!(
            "column {c} cannot be used as a scalar value"
        ))),
    }
}

/// Extracts the primary-key row from the equality filters of a write
/// statement (Synergy requires writes to specify every key attribute, §IV).
fn key_from_eq_filters(
    key_attributes: &[String],
    conditions: &[sql::Condition],
    params: &[Value],
) -> Result<Row, TxnError> {
    let mut key = Row::new();
    for attribute in key_attributes {
        let value = conditions
            .iter()
            .find(|c| {
                c.op == sql::Comparison::Eq && c.is_filter() && c.left.column == *attribute
            })
            .map(|c| bind(&c.right, params))
            .transpose()?;
        match value {
            Some(v) => {
                key.set(attribute.clone(), v);
            }
            None => {
                return Err(TxnError::Unsupported(format!(
                    "write statement must specify key attribute {attribute}"
                )))
            }
        }
    }
    Ok(key)
}
