//! Workload-driven view selection and view-index addition (paper §VI).
//!
//! For every equi-join query in the workload, the join conditions mark edges
//! and relations in the rooted trees; maximal marked paths are then peeled
//! off as the views selected for that query (§VI-A, illustrated by the
//! paper's Figure 6).  After the whole workload is processed, the union of
//! the selected views is added to the schema, and view-indexes are created
//! for queries whose filters are not covered by a view's key (§VI-C).

use crate::viewgen::{CandidateViews, RootedTree, ViewDefinition};
use relational::{GraphEdge, Schema};
use sql::{SelectStatement, Statement};
use std::collections::{BTreeMap, BTreeSet};

/// A covered index on a materialized view.
///
/// View-indexes serve two purposes in the paper: §VI-C adds them so that
/// queries filtering on a non-key view attribute avoid full view scans, and
/// §VII-C relies on additional indexes so that base-table updates can locate
/// the affected view rows efficiently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewIndexDefinition {
    /// Physical table name of the index.
    pub name: String,
    /// The view this index belongs to (its physical table name).
    pub view: String,
    /// Attribute(s) the index is keyed on (ahead of the view key).
    pub indexed_on: Vec<String>,
    /// True if the index exists to speed up view maintenance (locating view
    /// rows by a constituent relation's key) rather than workload queries.
    pub for_maintenance: bool,
}

/// The result of running view selection over a workload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelectionOutcome {
    /// The final set of selected views (deduplicated across queries).
    pub views: Vec<ViewDefinition>,
    /// For each workload index of an equi-join SELECT, the views selected
    /// for that query (in selection order).
    pub per_query: BTreeMap<usize, Vec<ViewDefinition>>,
    /// View-indexes added for query performance (§VI-C) and maintenance.
    pub view_indexes: Vec<ViewIndexDefinition>,
}

impl SelectionOutcome {
    /// Looks up a selected view by its physical table name.
    pub fn view_by_table_name(&self, table: &str) -> Option<&ViewDefinition> {
        self.views.iter().find(|v| v.table_name() == table)
    }

    /// The views that a given relation participates in.
    pub fn views_containing(&self, relation: &str) -> Vec<&ViewDefinition> {
        self.views.iter().filter(|v| v.contains(relation)).collect()
    }

    /// Indexes declared on a given view.
    pub fn indexes_of_view(&self, view_table: &str) -> Vec<&ViewIndexDefinition> {
        self.view_indexes.iter().filter(|i| i.view == view_table).collect()
    }
}

/// Marks on one rooted tree: which edges and relations the current query's
/// join conditions touched.
#[derive(Debug, Default, Clone)]
struct TreeMarks {
    edges: BTreeSet<usize>,
    relations: BTreeSet<String>,
}

/// Selects views for a single equi-join query against the rooted trees
/// (§VI-A, "Views selection for a Query").
pub fn select_views_for_query(
    candidates: &CandidateViews,
    select: &SelectStatement,
    workload: &[Statement],
) -> Vec<ViewDefinition> {
    if !select.is_join_query() {
        return Vec::new();
    }
    // Synergy does not support a relation being used more than once in a
    // query (§VIII-C); such queries keep using base tables.
    let mut seen_tables = BTreeSet::new();
    for table_ref in &select.from {
        if !seen_tables.insert(table_ref.table.to_ascii_lowercase()) {
            return Vec::new();
        }
    }

    let mut selected = Vec::new();
    for tree in &candidates.trees {
        let mut marks = mark_tree(tree, select);
        while let Some(path) = choose_marked_path(tree, &marks, workload) {
            // Un-mark the participating relations and the outgoing edges of
            // those relations.
            let on_path: BTreeSet<String> = path
                .iter()
                .map(|e| e.from.clone())
                .chain(path.iter().map(|e| e.to.clone()))
                .collect();
            for relation in &on_path {
                marks.relations.remove(relation);
                for (idx, edge) in tree.edges.iter().enumerate() {
                    if &edge.from == relation {
                        marks.edges.remove(&idx);
                    }
                }
            }
            selected.push(ViewDefinition::from_edges(path));
        }
    }
    selected
}

/// Marks the edges (and their endpoint relations) of a rooted tree that the
/// query's join conditions cover.
fn mark_tree(tree: &RootedTree, select: &SelectStatement) -> TreeMarks {
    let mut marks = TreeMarks::default();
    for condition in select.join_conditions() {
        let sql::Expr::Column(right) = &condition.right else {
            continue;
        };
        let left = &condition.left;
        let left_table = left
            .qualifier
            .as_deref()
            .and_then(|q| select.resolve_alias(q))
            .unwrap_or("");
        let right_table = right
            .qualifier
            .as_deref()
            .and_then(|q| select.resolve_alias(q))
            .unwrap_or("");
        for (idx, edge) in tree.edges.iter().enumerate() {
            for (pk, fk) in edge.pk.iter().zip(edge.fk.iter()) {
                let forward = left_table.eq_ignore_ascii_case(&edge.from)
                    && right_table.eq_ignore_ascii_case(&edge.to)
                    && left.column.eq_ignore_ascii_case(pk)
                    && right.column.eq_ignore_ascii_case(fk);
                let backward = right_table.eq_ignore_ascii_case(&edge.from)
                    && left_table.eq_ignore_ascii_case(&edge.to)
                    && right.column.eq_ignore_ascii_case(pk)
                    && left.column.eq_ignore_ascii_case(fk);
                if forward || backward {
                    marks.edges.insert(idx);
                    marks.relations.insert(edge.from.clone());
                    marks.relations.insert(edge.to.clone());
                }
            }
        }
    }
    marks
}

/// Chooses the next path to materialize: it must consist entirely of marked
/// nodes and edges, start at a marked node with no incoming marked edge, and
/// end at a node with no outgoing marked edge.  Among candidates the longest
/// path wins, ties broken by workload weight, so the maximum number of joins
/// is materialized.
fn choose_marked_path(
    tree: &RootedTree,
    marks: &TreeMarks,
    workload: &[Statement],
) -> Option<Vec<GraphEdge>> {
    let start_nodes: Vec<&String> = marks
        .relations
        .iter()
        .filter(|relation| {
            // No incoming marked edge.
            !tree
                .edges
                .iter()
                .enumerate()
                .any(|(idx, e)| marks.edges.contains(&idx) && &&e.to == relation)
        })
        .collect();

    let mut best: Option<Vec<GraphEdge>> = None;
    for start in start_nodes {
        let mut path = Vec::new();
        longest_marked_path(tree, marks, start, &mut path, workload, &mut best);
    }
    best
}

fn longest_marked_path(
    tree: &RootedTree,
    marks: &TreeMarks,
    node: &str,
    path: &mut Vec<GraphEdge>,
    workload: &[Statement],
    best: &mut Option<Vec<GraphEdge>>,
) {
    let mut extended = false;
    for (idx, edge) in tree.edges.iter().enumerate() {
        if edge.from == node
            && marks.edges.contains(&idx)
            && marks.relations.contains(&edge.to)
        {
            path.push(edge.clone());
            longest_marked_path(tree, marks, &edge.to, path, workload, best);
            path.pop();
            extended = true;
        }
    }
    if !extended && !path.is_empty() {
        let replace = match best {
            None => true,
            Some(current) => {
                path.len() > current.len()
                    || (path.len() == current.len()
                        && crate::viewgen::path_workload_weight(path, workload)
                            > crate::viewgen::path_workload_weight(current, workload))
            }
        };
        if replace {
            *best = Some(path.clone());
        }
    }
}

/// Runs view selection over the whole workload (§VI-A "Final View Set") and
/// adds view-indexes (§VI-C) plus the maintenance indexes §VII-C relies on.
pub fn select_views(
    schema: &Schema,
    candidates: &CandidateViews,
    workload: &[Statement],
) -> SelectionOutcome {
    let mut outcome = SelectionOutcome::default();
    for (idx, statement) in workload.iter().enumerate() {
        let Some(select) = statement.as_select() else {
            continue;
        };
        let views = select_views_for_query(candidates, select, workload);
        if views.is_empty() {
            continue;
        }
        for view in &views {
            if !outcome.views.contains(view) {
                outcome.views.push(view.clone());
            }
        }
        outcome.per_query.insert(idx, views);
    }

    add_query_view_indexes(schema, workload, &mut outcome);
    add_maintenance_indexes(schema, workload, &mut outcome);
    outcome
}

/// §VI-C: for each view and each conjunctive query using it, add a
/// view-index keyed on a filter attribute when neither the view key nor an
/// existing view-index covers any of the query's filter attributes.
fn add_query_view_indexes(
    schema: &Schema,
    workload: &[Statement],
    outcome: &mut SelectionOutcome,
) {
    let per_query = outcome.per_query.clone();
    for (query_idx, views) in &per_query {
        let Some(select) = workload[*query_idx].as_select() else {
            continue;
        };
        for view in views {
            let view_attributes = view.attributes(schema);
            let view_key = view.key_attributes(schema);
            let filter_attributes: Vec<String> = select
                .filter_conditions()
                .iter()
                .map(|c| c.left.column.clone())
                .filter(|column| view_attributes.iter().any(|a| a == column))
                .collect();
            if filter_attributes.is_empty() {
                continue;
            }
            let covered = filter_attributes.iter().any(|column| {
                view_key.first() == Some(column)
                    || outcome
                        .indexes_of_view(&view.table_name())
                        .iter()
                        .any(|i| i.indexed_on.first() == Some(column))
            });
            if covered {
                continue;
            }
            let attribute = filter_attributes[0].clone();
            let name = format!("{}__by__{}", view.table_name(), attribute);
            outcome.view_indexes.push(ViewIndexDefinition {
                name,
                view: view.table_name(),
                indexed_on: vec![attribute],
                for_maintenance: false,
            });
        }
    }
}

/// §VII-C: for each view and each non-terminal constituent relation that the
/// workload updates, add an index keyed on that relation's primary key so
/// the affected view rows can be located without scanning the view.
fn add_maintenance_indexes(
    schema: &Schema,
    workload: &[Statement],
    outcome: &mut SelectionOutcome,
) {
    let updated_relations: BTreeSet<String> = workload
        .iter()
        .filter_map(|s| match s {
            Statement::Update(u) => Some(u.table.clone()),
            _ => None,
        })
        .collect();
    let views = outcome.views.clone();
    for view in &views {
        for relation in &view.relations {
            if relation == view.last_relation() {
                continue; // located directly by the view key
            }
            if !updated_relations
                .iter()
                .any(|u| u.eq_ignore_ascii_case(relation))
            {
                continue;
            }
            let Some(rel) = schema.relation(relation) else {
                continue;
            };
            let indexed_on = rel.primary_key.clone();
            let exists = outcome
                .indexes_of_view(&view.table_name())
                .iter()
                .any(|i| i.indexed_on == indexed_on);
            if exists {
                continue;
            }
            let name = format!("{}__maint__{}", view.table_name(), relation);
            outcome.view_indexes.push(ViewIndexDefinition {
                name,
                view: view.table_name(),
                indexed_on,
                for_maintenance: true,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::viewgen::generate_candidate_views;
    use relational::company;
    use sql::{parse_statement, parse_workload};

    fn setup() -> (relational::Schema, CandidateViews, Vec<Statement>) {
        let schema = company::company_schema();
        let sql_texts = company::company_workload_sql();
        let workload = parse_workload(sql_texts.iter().map(String::as_str)).unwrap();
        let candidates = generate_candidate_views(&schema, &workload, &company::company_roots());
        (schema, candidates, workload)
    }

    #[test]
    fn w1_selects_address_employee_view() {
        let (_, candidates, workload) = setup();
        let select = workload[0].as_select().unwrap();
        let views = select_views_for_query(&candidates, select, &workload);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].display_name(), "Address-Employee");
    }

    #[test]
    fn w2_selects_employee_works_on_view_only() {
        // W2 joins Department⋈Employee⋈Works_On, but Department lives in a
        // different rooted tree than Employee, so only the
        // Employee-Works_On path can be materialized.
        let (_, candidates, workload) = setup();
        let select = workload[1].as_select().unwrap();
        let views = select_views_for_query(&candidates, select, &workload);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].display_name(), "Employee-Works_On");
    }

    #[test]
    fn figure_6_example_peels_two_views() {
        // Reconstruct the paper's Figure 6: a single rooted tree
        // R1→R2→R3→R4 with R2→R5→R6, and a query joining
        // R2⋈R3⋈R4 and R2⋈R5⋈R6.
        let edge = |from: &str, to: &str, pk: &str, fk: &str| GraphEdge {
            from: from.into(),
            to: to.into(),
            pk: vec![pk.into()],
            fk: vec![fk.into()],
        };
        let tree = RootedTree {
            root: "R1".into(),
            edges: vec![
                edge("R1", "R2", "pk1", "fk2"),
                edge("R2", "R3", "pk2", "fk3"),
                edge("R3", "R4", "pk3", "fk4"),
                edge("R2", "R5", "pk2", "fk5"),
                edge("R5", "R6", "pk5", "fk6"),
            ],
        };
        let candidates = CandidateViews {
            trees: vec![tree],
            dag: relational::SchemaGraph::default(),
            unassigned: vec![],
        };
        let query = parse_statement(
            "SELECT * FROM R2, R3, R4, R5, R6 \
             WHERE R2.pk2 = R3.fk3 AND R3.pk3 = R4.fk4 AND R2.pk2 = R5.fk5 AND R5.pk5 = R6.fk6",
        )
        .unwrap();
        let views = select_views_for_query(&candidates, query.as_select().unwrap(), &[]);
        let names: Vec<String> = views.iter().map(ViewDefinition::display_name).collect();
        assert_eq!(names, vec!["R2-R3-R4".to_string(), "R5-R6".to_string()]);
    }

    #[test]
    fn self_join_queries_are_not_materialized() {
        let (_, candidates, workload) = setup();
        let query = parse_statement(
            "SELECT * FROM Works_On as w1, Works_On as w2 WHERE w1.WO_PNo = w2.WO_PNo",
        )
        .unwrap();
        let views = select_views_for_query(&candidates, query.as_select().unwrap(), &workload);
        assert!(views.is_empty());
    }

    #[test]
    fn single_table_queries_select_no_views() {
        let (_, candidates, workload) = setup();
        let query = parse_statement("SELECT * FROM Employee WHERE EID = 1").unwrap();
        let views = select_views_for_query(&candidates, query.as_select().unwrap(), &workload);
        assert!(views.is_empty());
    }

    #[test]
    fn workload_selection_dedupes_views_across_queries() {
        let (schema, candidates, workload) = setup();
        let outcome = select_views(&schema, &candidates, &workload);
        // W2 and W3 both select Employee-Works_On; W1 selects
        // Address-Employee → two distinct views in total.
        assert_eq!(outcome.views.len(), 2);
        assert_eq!(outcome.per_query.len(), 3);
        let names: Vec<String> = outcome.views.iter().map(ViewDefinition::display_name).collect();
        assert!(names.contains(&"Address-Employee".to_string()));
        assert!(names.contains(&"Employee-Works_On".to_string()));
    }

    #[test]
    fn view_index_added_for_non_key_filter() {
        let (schema, candidates, workload) = setup();
        let outcome = select_views(&schema, &candidates, &workload);
        // W3 filters on wo.Hours, which is not the Employee-Works_On view's
        // key (WO_EID, WO_PNo) → a view-index on Hours must be added.
        let view_table = "V_Employee__Works_On";
        let indexes = outcome.indexes_of_view(view_table);
        assert!(
            indexes
                .iter()
                .any(|i| i.indexed_on == vec!["Hours".to_string()] && !i.for_maintenance),
            "expected a Hours view-index, got {indexes:?}"
        );
    }

    #[test]
    fn w1_key_filter_needs_no_view_index() {
        let (schema, candidates, workload) = setup();
        let outcome = select_views(&schema, &candidates, &workload);
        // W1 filters on e.EID which is the key of the Address-Employee view →
        // no query view-index for that view.
        let indexes = outcome.indexes_of_view("V_Address__Employee");
        assert!(indexes.iter().all(|i| i.for_maintenance));
    }

    #[test]
    fn maintenance_index_added_for_updated_interior_relation() {
        let (schema, candidates, mut workload) = setup();
        workload.push(parse_statement("UPDATE Employee SET EName = ? WHERE EID = ?").unwrap());
        let outcome = select_views(&schema, &candidates, &workload);
        // Employee is an interior relation of Employee-Works_On, and the
        // workload updates Employee → maintenance index on EID.
        let indexes = outcome.indexes_of_view("V_Employee__Works_On");
        assert!(indexes
            .iter()
            .any(|i| i.for_maintenance && i.indexed_on == vec!["EID".to_string()]));
    }

    #[test]
    fn selection_outcome_lookups() {
        let (schema, candidates, workload) = setup();
        let outcome = select_views(&schema, &candidates, &workload);
        assert!(outcome.view_by_table_name("V_Address__Employee").is_some());
        assert!(outcome.view_by_table_name("V_Nope").is_none());
        assert_eq!(outcome.views_containing("Employee").len(), 2);
        assert_eq!(outcome.views_containing("Department").len(), 0);
    }
}
