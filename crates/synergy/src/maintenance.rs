//! View maintenance (paper §VII): applicability tests and tuple construction
//! for keeping materialized views and view-indexes consistent with base-table
//! inserts, deletes and updates.

use crate::selection::ViewIndexDefinition;
use crate::viewgen::ViewDefinition;
use nosql_store::ops::{Put, Scan};
use query::{Executor, QueryError, FAMILY};
use relational::{encode_key, Row, Schema, Value, KEY_DELIMITER};

/// Re-export of the dirty-marker column name used by the executor's
/// read-committed scan-restart protocol.
pub use query::DIRTY_MARKER;

/// Maintains the selected views of a Synergy deployment.
#[derive(Clone)]
pub struct ViewMaintainer {
    executor: Executor,
    schema: Schema,
    views: Vec<ViewDefinition>,
    view_indexes: Vec<ViewIndexDefinition>,
}

impl ViewMaintainer {
    /// Creates a maintainer; `executor`'s catalog must already contain the
    /// view and view-index tables.
    pub fn new(
        executor: Executor,
        schema: Schema,
        views: Vec<ViewDefinition>,
        view_indexes: Vec<ViewIndexDefinition>,
    ) -> Self {
        ViewMaintainer {
            executor,
            schema,
            views,
            view_indexes,
        }
    }

    /// All maintained views.
    pub fn views(&self) -> &[ViewDefinition] {
        &self.views
    }

    // ------------------------------------------------------------------
    // Applicability tests (§VII-A/B/C, step 1)
    // ------------------------------------------------------------------

    /// Views to which an insert into `relation` applies: those whose *last*
    /// relation is `relation`.
    pub fn views_for_insert(&self, relation: &str) -> Vec<&ViewDefinition> {
        self.views
            .iter()
            .filter(|v| v.last_relation().eq_ignore_ascii_case(relation))
            .collect()
    }

    /// Views to which a delete from `relation` applies (same test as insert).
    pub fn views_for_delete(&self, relation: &str) -> Vec<&ViewDefinition> {
        self.views_for_insert(relation)
    }

    /// Views to which an update of `relation` applies: those containing
    /// `relation` anywhere in their sequence.
    pub fn views_for_update(&self, relation: &str) -> Vec<&ViewDefinition> {
        self.views
            .iter()
            .filter(|v| v.relations.iter().any(|r| r.eq_ignore_ascii_case(relation)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Insert (§VII-A)
    // ------------------------------------------------------------------

    /// Constructs the view tuple for a base-table insert into the view's
    /// last relation, by walking the key/foreign-key chain upwards and
    /// reading one related tuple per ancestor relation (k−1 reads for a view
    /// of k relations).  Returns `None` when an ancestor row is missing
    /// (foreign-key constraints are not enforced, §IV).
    pub fn construct_insert_tuple(
        &self,
        view: &ViewDefinition,
        inserted: &Row,
    ) -> Result<Option<Row>, QueryError> {
        let mut combined = inserted.unqualified();
        let mut current = inserted.unqualified();
        // Walk edges from the last relation up to the first.
        for edge in view.edges.iter().rev() {
            // The child row (`current`) holds FK attributes referencing the
            // parent's PK; read the parent row by primary key.
            let mut parent_key = Row::new();
            for (pk_attr, fk_attr) in edge.pk.iter().zip(edge.fk.iter()) {
                match current.get(fk_attr) {
                    Some(value) if !value.is_null() => {
                        parent_key.set(pk_attr.clone(), value.clone());
                    }
                    _ => return Ok(None),
                }
            }
            let Some(parent) = self.executor.get_row_by_key(&edge.from, &parent_key)? else {
                return Ok(None);
            };
            for (attribute, value) in parent.iter() {
                if combined.get(attribute).is_none() {
                    combined.set(attribute, value.clone());
                }
            }
            current = parent;
        }
        Ok(Some(combined))
    }

    /// Applies a base-table insert to every applicable view (and the views'
    /// indexes, which the executor maintains automatically).  Returns the
    /// number of view rows written.
    pub fn apply_insert(&self, relation: &str, inserted: &Row) -> Result<usize, QueryError> {
        let mut written = 0;
        for view in self.views_for_insert(relation) {
            if let Some(view_row) = self.construct_insert_tuple(view, inserted)? {
                self.executor.insert_row(&view.table_name(), &view_row)?;
                written += 1;
            }
        }
        Ok(written)
    }

    // ------------------------------------------------------------------
    // Delete (§VII-B)
    // ------------------------------------------------------------------

    /// Applies a base-table delete to every applicable view.  The view key
    /// equals the base key; the view row is read first so that view-index
    /// keys can be constructed (§VII-B2).  Returns the number of view rows
    /// removed.
    pub fn apply_delete(&self, relation: &str, base_key: &Row) -> Result<usize, QueryError> {
        let mut removed = 0;
        for view in self.views_for_delete(relation) {
            if self.executor.delete_row_by_key(&view.table_name(), base_key)? {
                removed += 1;
            }
        }
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Update (§VII-C)
    // ------------------------------------------------------------------

    /// Locates the view rows affected by an update of `relation` (identified
    /// by its primary-key values).  Uses the view key directly when
    /// `relation` is the view's last relation, a maintenance view-index when
    /// one exists, and a full view scan otherwise.
    pub fn find_affected_view_rows(
        &self,
        view: &ViewDefinition,
        relation: &str,
        relation_key: &Row,
    ) -> Result<Vec<Row>, QueryError> {
        let view_table = view.table_name();
        let relation_pk = self
            .schema
            .relation(relation)
            .map(|r| r.primary_key.clone())
            .unwrap_or_default();

        if view.last_relation().eq_ignore_ascii_case(relation) {
            return Ok(self
                .executor
                .get_row_by_key(&view_table, relation_key)?
                .into_iter()
                .collect());
        }

        // Prefer a maintenance index keyed on the relation's primary key.
        // The scan rides the executor's snapshot bound (if any), so
        // maintenance never observes index entries newer than the
        // statement's snapshot.
        let index = self.view_indexes.iter().find(|i| {
            i.view == view_table && i.indexed_on == relation_pk
        });
        if let Some(index) = index {
            let prefix_values: Vec<Value> = relation_pk
                .iter()
                .map(|a| relation_key.get(a).cloned().unwrap_or(Value::Null))
                .collect();
            let mut prefix = encode_key(prefix_values.iter());
            let index_def = self
                .executor
                .catalog()
                .table(&index.name)
                .ok_or_else(|| QueryError::UnknownTable(index.name.clone()))?;
            // When the index key *is* the relation's primary key, the prefix
            // is a full key: at most one entry can match, so the stream can
            // stop at the first hit.
            let full_key_match = index_def.key.len() == relation_pk.len();
            if !full_key_match {
                // Close the last component so item "42" does not also match
                // view rows of items 420, 421, ...
                prefix.push(KEY_DELIMITER);
            }
            let cursor = self.executor.cluster().scan_stream(
                &index.name,
                self.executor.bounded_scan(Scan::prefix(prefix)),
            )?;
            let mut out = Vec::new();
            for entry in cursor {
                let index_row = index_def.decode_row(&entry);
                if let Some(view_row) = self.executor.get_row_by_key(&view_table, &index_row)? {
                    out.push(view_row);
                }
                if full_key_match {
                    break;
                }
            }
            return Ok(out);
        }

        // Fall back to streaming the whole view and filtering client-side,
        // under the executor's snapshot bound: maintenance must not observe
        // view rows newer than the query snapshot.  The walk is
        // region-parallel at the executor's thread count (serial at 1), and
        // the decode + filter fans out over the same workers.
        let threads = self.executor.threads();
        let view_def = self
            .executor
            .catalog()
            .table(&view_table)
            .ok_or_else(|| QueryError::UnknownTable(view_table.clone()))?;
        let cursor = self.executor.cluster().par_scan_stream(
            &view_table,
            self.executor.bounded_scan(Scan::all()),
            threads,
        )?;
        Ok(query::par_decode_filtered(view_def, cursor, threads, |row| {
            relation_pk.iter().all(|a| match (row.get(a), relation_key.get(a)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            })
        }))
    }

    /// Marks a view row dirty (step 3 of the update transaction, §VIII-B).
    pub fn mark_dirty(&self, view: &ViewDefinition, view_row: &Row) -> Result<(), QueryError> {
        self.set_marker(view, view_row, "1")
    }

    /// Clears the dirty marker (step 5 of the update transaction).
    pub fn unmark_dirty(&self, view: &ViewDefinition, view_row: &Row) -> Result<(), QueryError> {
        self.set_marker(view, view_row, "0")
    }

    fn set_marker(
        &self,
        view: &ViewDefinition,
        view_row: &Row,
        value: &str,
    ) -> Result<(), QueryError> {
        let view_table = view.table_name();
        let def = self
            .executor
            .catalog()
            .table(&view_table)
            .ok_or_else(|| QueryError::UnknownTable(view_table.clone()))?;
        let key = def.encode_row_key(view_row);
        self.executor.cluster().put(
            &view_table,
            Put::new(key).with(FAMILY, DIRTY_MARKER, value),
        )?;
        Ok(())
    }

    /// Applies an update to a located view row: merges the updated base
    /// attributes into the view row and rewrites it (the executor keeps the
    /// view's indexes in sync).  Returns the updated view row.
    pub fn apply_update_to_view_row(
        &self,
        view: &ViewDefinition,
        view_row: &Row,
        updated_base: &Row,
    ) -> Result<Row, QueryError> {
        let mut merged = view_row.clone();
        for (attribute, value) in updated_base.iter() {
            // Only attributes that exist in the view are propagated.
            if view.attributes(&self.schema).iter().any(|a| a == attribute) {
                merged.set(attribute, value.clone());
            }
        }
        // Drop view-index entries whose key changes (e.g. an index on an
        // updated attribute), then re-insert through the executor so every
        // view-index reflects the new values.
        for index in self.executor.catalog().indexes_of(&view.table_name()) {
            let old_key = index.encode_row_key(view_row);
            let new_key = index.encode_row_key(&merged);
            if old_key != new_key {
                self.executor
                    .cluster()
                    .delete(&index.name, nosql_store::ops::Delete::row(old_key))?;
            }
        }
        self.executor.insert_row(&view.table_name(), &merged)?;
        Ok(merged)
    }
}
