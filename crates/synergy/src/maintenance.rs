//! View maintenance (paper §VII), rebuilt around **delta propagation
//! through the plan IR**.
//!
//! Every selected view carries a defining SELECT (its FK-join path,
//! [`ViewDefinition::defining_select`]).  The [`MaintenanceEngine`] compiles
//! that statement's [`query::LogicalPlan`] once into a [`query::DeltaPlan`]
//! — cached per view and invalidated by catalog version, exactly like the
//! read path's plan cache — and maintains the view by pushing the write's
//! signed row-deltas through it:
//!
//! * **insert** into the view's *last* relation: propagate `+row`; the
//!   join probes read one ancestor row per edge (the paper's k−1 reads);
//! * **delete** from the last relation: the view key *is* the base key, so
//!   the view row is deleted directly (no propagation needed);
//! * **update** of any member relation: propagate `[-old, +new]` and pair
//!   the resulting view-row deltas into in-place rewrites, removals and
//!   insertions.  When the update leaves every join attribute unchanged
//!   (the common case), only `+new` is propagated and every output is a
//!   rewrite.
//!
//! Join probes go through the same access-path selection as read planning
//! ([`query::select_probe_access`]), which additionally may use the
//! *maintenance indexes* (`MI_*` tables) the system creates for FK columns
//! that would otherwise force a full base-table scan — this is what replaces
//! the old "scan the whole view to find affected rows" strategy.
//!
//! The legacy scan-based procedures (`construct_insert_tuple`,
//! `find_affected_view_rows`, `apply_update_to_view_row`) are retained both
//! as the comparison path (`SynergyConfig::with_scan_maintenance`) and for
//! the paper-faithful applicability tests they document.
//!
//! A coalescing [`DeltaBuffer`] (capacity > 1 via
//! `SynergyConfig::with_write_batch`) defers propagation: consecutive
//! writes to the same base key merge (last-write-wins per column,
//! insert+delete annihilation) and flush as one propagated write.

use crate::partial::{MaintOutcome, ViewResidency, ViewWrite};
use crate::selection::ViewIndexDefinition;
use crate::viewgen::ViewDefinition;
use nosql_store::ops::{Put, Scan};
use query::{
    DeltaBuffer, DeltaPlan, DeltaSign, Executor, PendingWrite, QueryError, RowDelta, TableDef,
    FAMILY,
};
use relational::{encode_key, Row, Schema, Value, KEY_DELIMITER};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Re-export of the dirty-marker column name used by the executor's
/// read-committed scan-restart protocol.
pub use query::DIRTY_MARKER;

/// Compatibility alias for the pre-delta name of the engine.
pub type ViewMaintainer = MaintenanceEngine;

/// Counters the engine keeps while maintaining views (shared across clones).
#[derive(Debug, Default)]
pub struct MaintenanceStats {
    view_rows_touched: AtomicU64,
    deltas_propagated: AtomicU64,
    flushes: AtomicU64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceStatsSnapshot {
    /// View rows written, rewritten or removed by maintenance.
    pub view_rows_touched: u64,
    /// View-row deltas produced by delta propagation.
    pub deltas_propagated: u64,
    /// Write-batch flushes performed.
    pub flushes: u64,
    /// Writes merged away by the coalescing buffer.
    pub coalesced_merges: u64,
}

/// The staged effect of one base-table update on one view: computed by
/// delta propagation *before* the base write, applied after it (steps 2–5
/// of the update transaction, §VIII-B).
#[derive(Debug, Clone)]
pub struct StagedViewUpdate {
    view: ViewDefinition,
    /// New full view-row images whose keys already exist (in-place rewrite).
    rewrites: Vec<Row>,
    /// Old view rows whose keys disappear (join attribute changed away).
    removes: Vec<Row>,
    /// New view rows at keys that did not exist before.
    inserts: Vec<Row>,
}

impl StagedViewUpdate {
    /// The view this staged update maintains.
    pub fn view(&self) -> &ViewDefinition {
        &self.view
    }

    /// Number of view rows this staged update will touch.
    pub fn touched(&self) -> usize {
        self.rewrites.len() + self.removes.len() + self.inserts.len()
    }
}

/// Maintains the selected views of a Synergy deployment.
#[derive(Clone)]
pub struct MaintenanceEngine {
    executor: Executor,
    schema: Schema,
    views: Vec<ViewDefinition>,
    view_indexes: Vec<ViewIndexDefinition>,
    /// Precomputed applicability index: relation → views whose *last*
    /// relation it is (insert/delete applicability, §VII-A/B).
    by_last: Vec<(String, Vec<usize>)>,
    /// Precomputed applicability index: relation → views containing it
    /// anywhere (update applicability, §VII-C).
    by_member: Vec<(String, Vec<usize>)>,
    delta_enabled: bool,
    /// Compiled delta plans, keyed by view table name; entries whose
    /// catalog version is stale are recompiled lazily.
    plans: Arc<Mutex<BTreeMap<String, Arc<DeltaPlan>>>>,
    /// The coalescing write batch (capacity 1 = propagate per write).
    buffer: Arc<Mutex<DeltaBuffer>>,
    stats: Arc<MaintenanceStats>,
    /// Partial-materialization residency (`None` = views fully
    /// materialized): view-row writes are routed through it so deltas
    /// targeting non-resident keys are **annihilated** and deltas racing a
    /// fill are deferred (see [`ViewResidency::apply_view_write`]).
    residency: Option<Arc<ViewResidency>>,
}

impl MaintenanceEngine {
    /// Creates an engine; `executor`'s catalog must already contain the
    /// view and view-index tables.  Delta propagation is enabled and the
    /// write batch holds one write (no coalescing) by default.
    pub fn new(
        executor: Executor,
        schema: Schema,
        views: Vec<ViewDefinition>,
        view_indexes: Vec<ViewIndexDefinition>,
    ) -> Self {
        let mut by_last: Vec<(String, Vec<usize>)> = Vec::new();
        let mut by_member: Vec<(String, Vec<usize>)> = Vec::new();
        for (i, view) in views.iter().enumerate() {
            push_id(&mut by_last, view.last_relation(), i);
            for relation in &view.relations {
                push_id(&mut by_member, relation, i);
            }
        }
        MaintenanceEngine {
            executor,
            schema,
            views,
            view_indexes,
            by_last,
            by_member,
            delta_enabled: true,
            plans: Arc::new(Mutex::new(BTreeMap::new())),
            buffer: Arc::new(Mutex::new(DeltaBuffer::new(1))),
            stats: Arc::new(MaintenanceStats::default()),
            residency: None,
        }
    }

    /// Routes view-row writes through a partial-materialization residency
    /// map (see [`ViewResidency`]).
    pub fn with_residency(mut self, residency: Arc<ViewResidency>) -> Self {
        self.residency = Some(residency);
        self
    }

    /// Enables or disables delta propagation (disabled = the legacy
    /// scan-based maintenance procedures).
    pub fn with_delta(mut self, enabled: bool) -> Self {
        self.delta_enabled = enabled;
        self
    }

    /// Sets the coalescing write-batch capacity (1 = flush per write).
    pub fn with_write_batch(self, capacity: usize) -> Self {
        *self.buffer.lock().unwrap_or_else(PoisonError::into_inner) = DeltaBuffer::new(capacity);
        self
    }

    /// True when delta propagation (rather than scanning) maintains views.
    pub fn delta_enabled(&self) -> bool {
        self.delta_enabled
    }

    /// True when writes are deferred into the coalescing batch.
    pub fn buffering(&self) -> bool {
        self.buffer.lock().unwrap_or_else(PoisonError::into_inner).capacity() > 1
    }

    /// All maintained views.
    pub fn views(&self) -> &[ViewDefinition] {
        &self.views
    }

    /// A snapshot of the maintenance counters.
    pub fn stats(&self) -> MaintenanceStatsSnapshot {
        MaintenanceStatsSnapshot {
            view_rows_touched: self.stats.view_rows_touched.load(Ordering::Relaxed),
            deltas_propagated: self.stats.deltas_propagated.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            coalesced_merges: self.buffer.lock().unwrap_or_else(PoisonError::into_inner).merges(),
        }
    }

    // ------------------------------------------------------------------
    // Applicability tests (§VII-A/B/C, step 1) — precomputed
    // ------------------------------------------------------------------

    /// Views to which an insert into `relation` applies: those whose *last*
    /// relation is `relation`.  Served from the precomputed index — no
    /// allocation per write.
    pub fn views_for_insert(&self, relation: &str) -> impl Iterator<Item = &ViewDefinition> {
        ids_for(&self.by_last, relation).iter().map(|&i| &self.views[i])
    }

    /// Views to which a delete from `relation` applies (same test as insert).
    pub fn views_for_delete(&self, relation: &str) -> impl Iterator<Item = &ViewDefinition> {
        self.views_for_insert(relation)
    }

    /// Views to which an update of `relation` applies: those containing
    /// `relation` anywhere in their sequence.
    pub fn views_for_update(&self, relation: &str) -> impl Iterator<Item = &ViewDefinition> {
        ids_for(&self.by_member, relation).iter().map(|&i| &self.views[i])
    }

    // ------------------------------------------------------------------
    // Delta plans
    // ------------------------------------------------------------------

    /// The compiled delta plan of a view, compiled from its defining SELECT
    /// through the regular planner on first use and cached until the
    /// catalog version changes (mirrors the read path's plan cache).
    pub fn delta_plan(&self, view: &ViewDefinition) -> Result<Arc<DeltaPlan>, QueryError> {
        let key = view.table_name();
        let version = self.executor.catalog().version();
        {
            let plans = self.plans.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(plan) = plans.get(&key) {
                if plan.catalog_version() == version {
                    return Ok(plan.clone());
                }
            }
        }
        let statement = sql::parse_statement(&view.defining_select())
            .map_err(|e| QueryError::Unsupported(format!("view defining statement: {e}")))?;
        let sql::Statement::Select(select) = statement else {
            return Err(QueryError::Unsupported(
                "view defining statement must be a SELECT".into(),
            ));
        };
        let physical = self.executor.plan_select(&select)?;
        let plan = Arc::new(
            DeltaPlan::compile(self.executor.catalog(), physical.logical())?
                .with_state_table(&key),
        );
        self.plans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, plan.clone());
        Ok(plan)
    }

    /// Renders the delta-operator tree maintaining `view` (EXPLAIN-style).
    pub fn explain_delta_plan(&self, view: &ViewDefinition) -> Result<String, QueryError> {
        Ok(self.delta_plan(view)?.render())
    }

    // ------------------------------------------------------------------
    // Residency-aware view writes (partial materialization)
    // ------------------------------------------------------------------

    fn catalog_view_def(&self, view: &ViewDefinition) -> Result<TableDef, QueryError> {
        let table = view.table_name();
        self.executor
            .catalog()
            .table(&table)
            .cloned()
            .ok_or(QueryError::UnknownTable(table))
    }

    /// Writes one view row (insert or in-place rewrite).  In partial mode
    /// the write routes through residency: annihilated for a cold key,
    /// deferred mid-fill, applied as an upsert otherwise.
    fn route_view_upsert(
        &self,
        view: &ViewDefinition,
        row: &Row,
        insert: bool,
    ) -> Result<usize, QueryError> {
        match &self.residency {
            Some(residency) => {
                let def = self.catalog_view_def(view)?;
                match residency.apply_view_write(
                    &self.executor,
                    &def,
                    ViewWrite::Upsert(row.clone()),
                )? {
                    MaintOutcome::Applied { touched } => Ok(touched as usize),
                    MaintOutcome::Deferred | MaintOutcome::Annihilated => Ok(0),
                }
            }
            None => {
                if insert {
                    self.executor.insert_row(&view.table_name(), row)?;
                } else {
                    self.executor.update_row(&view.table_name(), row)?;
                }
                Ok(1)
            }
        }
    }

    /// Removes one view row by key, routed through residency in partial
    /// mode (same annihilate/defer/apply rules as the upsert path).
    fn route_view_remove(&self, view: &ViewDefinition, key: &Row) -> Result<usize, QueryError> {
        match &self.residency {
            Some(residency) => {
                let def = self.catalog_view_def(view)?;
                match residency.apply_view_write(
                    &self.executor,
                    &def,
                    ViewWrite::Remove(key.clone()),
                )? {
                    MaintOutcome::Applied { touched } => Ok(touched as usize),
                    MaintOutcome::Deferred | MaintOutcome::Annihilated => Ok(0),
                }
            }
            None => Ok(self.executor.delete_row_by_key(&view.table_name(), key)? as usize),
        }
    }

    /// True when `view_row` should carry dirty markers: always in full
    /// materialization; only while its key is resident in partial mode
    /// (marking a cold key would create a marker-only remnant row outside
    /// residency accounting).
    fn marker_applies(&self, view: &ViewDefinition, view_row: &Row) -> Result<bool, QueryError> {
        let Some(residency) = &self.residency else {
            return Ok(true);
        };
        let def = self.catalog_view_def(view)?;
        Ok(residency.is_resident_for_row(&def, view_row))
    }

    // ------------------------------------------------------------------
    // Insert (§VII-A)
    // ------------------------------------------------------------------

    /// Applies a base-table insert to every applicable view (and the views'
    /// indexes, which the executor maintains automatically).  Returns the
    /// number of view rows written.
    pub fn apply_insert(&self, relation: &str, inserted: &Row) -> Result<usize, QueryError> {
        let mut written = 0;
        for view in self.views_for_insert(relation) {
            if self.delta_enabled {
                let plan = self.delta_plan(view)?;
                let deltas = [RowDelta::plus(inserted.unqualified())];
                let out = plan.propagate(&self.executor, relation, &deltas)?;
                self.stats
                    .deltas_propagated
                    .fetch_add(out.len() as u64, Ordering::Relaxed);
                for delta in out {
                    debug_assert_eq!(delta.sign, DeltaSign::Plus);
                    written += self.route_view_upsert(view, &delta.row, true)?;
                }
            } else if let Some(view_row) = self.construct_insert_tuple(view, inserted)? {
                written += self.route_view_upsert(view, &view_row, true)?;
            }
        }
        self.stats
            .view_rows_touched
            .fetch_add(written as u64, Ordering::Relaxed);
        Ok(written)
    }

    /// Constructs the view tuple for a base-table insert into the view's
    /// last relation, by walking the key/foreign-key chain upwards and
    /// reading one related tuple per ancestor relation (k−1 reads for a view
    /// of k relations).  Returns `None` when an ancestor row is missing
    /// (foreign-key constraints are not enforced, §IV).  This is the legacy
    /// scan-mode procedure; the delta path obtains the same tuple from the
    /// join probes of the view's delta plan.
    pub fn construct_insert_tuple(
        &self,
        view: &ViewDefinition,
        inserted: &Row,
    ) -> Result<Option<Row>, QueryError> {
        let mut combined = inserted.unqualified();
        let mut current = inserted.unqualified();
        // Walk edges from the last relation up to the first.
        for edge in view.edges.iter().rev() {
            // The child row (`current`) holds FK attributes referencing the
            // parent's PK; read the parent row by primary key.
            let mut parent_key = Row::new();
            for (pk_attr, fk_attr) in edge.pk.iter().zip(edge.fk.iter()) {
                match current.get(fk_attr) {
                    Some(value) if !value.is_null() => {
                        parent_key.set(pk_attr.clone(), value.clone());
                    }
                    _ => return Ok(None),
                }
            }
            let Some(parent) = self.executor.get_row_by_key(&edge.from, &parent_key)? else {
                return Ok(None);
            };
            for (attribute, value) in parent.iter() {
                if combined.get(attribute).is_none() {
                    combined.set(attribute, value.clone());
                }
            }
            current = parent;
        }
        Ok(Some(combined))
    }

    // ------------------------------------------------------------------
    // Delete (§VII-B)
    // ------------------------------------------------------------------

    /// Applies a base-table delete to every applicable view.  The view key
    /// equals the base key (the last relation's primary key), so no
    /// propagation is needed in either mode.  Returns the number of view
    /// rows removed.
    pub fn apply_delete(&self, relation: &str, base_key: &Row) -> Result<usize, QueryError> {
        let mut removed = 0;
        for view in self.views_for_delete(relation) {
            removed += self.route_view_remove(view, base_key)?;
        }
        self.stats
            .view_rows_touched
            .fetch_add(removed as u64, Ordering::Relaxed);
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // Update (§VII-C) — delta staging
    // ------------------------------------------------------------------

    /// Computes the staged effect of updating one row of `relation` (from
    /// `before` to `after`) on every applicable view, by delta propagation.
    /// Runs *before* the base write: the join probes read the other
    /// relations' current rows.
    pub fn stage_update(
        &self,
        relation: &str,
        before: &Row,
        after: &Row,
    ) -> Result<Vec<StagedViewUpdate>, QueryError> {
        let mut staged = Vec::new();
        for view in self.views_for_update(relation) {
            let plan = self.delta_plan(view)?;
            let mut update = StagedViewUpdate {
                view: view.clone(),
                rewrites: Vec::new(),
                removes: Vec::new(),
                inserts: Vec::new(),
            };
            if self.join_attributes_changed(view, relation, before, after) {
                // The update moves rows between join groups: propagate both
                // images and pair the resulting deltas by view key.
                let deltas = [
                    RowDelta::minus(before.unqualified()),
                    RowDelta::plus(after.unqualified()),
                ];
                let out = plan.propagate(&self.executor, relation, &deltas)?;
                self.stats
                    .deltas_propagated
                    .fetch_add(out.len() as u64, Ordering::Relaxed);
                let view_def = self
                    .executor
                    .catalog()
                    .table(&view.table_name())
                    .ok_or_else(|| QueryError::UnknownTable(view.table_name()))?;
                // BTreeMap: deterministic apply order (deterministic sim).
                let mut paired: std::collections::BTreeMap<String, (Option<Row>, Option<Row>)> =
                    std::collections::BTreeMap::new();
                for delta in out {
                    let key = view_def.encode_row_key(&delta.row);
                    let entry = paired.entry(key).or_default();
                    match delta.sign {
                        DeltaSign::Minus => entry.0 = Some(delta.row),
                        DeltaSign::Plus => entry.1 = Some(delta.row),
                    }
                }
                for (_, pair) in paired {
                    match pair {
                        (Some(_), Some(new)) => update.rewrites.push(new),
                        (Some(old), None) => update.removes.push(old),
                        (None, Some(new)) => update.inserts.push(new),
                        // lint-allow(panic-freedom): pair_deltas never yields (None, None)
                        (None, None) => unreachable!("empty delta pair"),
                    }
                }
            } else {
                // Join attributes unchanged: the affected view keys are
                // exactly the keys of the propagated new image — every
                // output is an in-place rewrite.
                let deltas = [RowDelta::plus(after.unqualified())];
                let out = plan.propagate(&self.executor, relation, &deltas)?;
                self.stats
                    .deltas_propagated
                    .fetch_add(out.len() as u64, Ordering::Relaxed);
                update.rewrites.extend(out.into_iter().map(|d| d.row));
            }
            if update.touched() > 0 {
                staged.push(update);
            }
        }
        Ok(staged)
    }

    /// Marks every currently existing view row a staged update will touch
    /// as dirty (step 3 of the update transaction).  Rows the update
    /// *inserts* do not exist yet and are not marked (matching the insert
    /// procedure, which never marks).
    pub fn mark_staged(&self, staged: &[StagedViewUpdate]) -> Result<(), QueryError> {
        for update in staged {
            for row in update.rewrites.iter().chain(&update.removes) {
                if self.marker_applies(&update.view, row)? {
                    self.mark_dirty(&update.view, row)?;
                }
            }
        }
        Ok(())
    }

    /// Applies a staged update to the view tables (step 4: runs after the
    /// base write).  Removals go first, then in-place rewrites (the
    /// executor rewrites view-index entries from the stored before-image),
    /// then insertions.  Returns the number of view rows touched.
    pub fn apply_staged(&self, staged: &[StagedViewUpdate]) -> Result<usize, QueryError> {
        let mut touched = 0;
        for update in staged {
            if self.residency.is_some() {
                // Partial mode: every write routes through residency
                // (annihilate / defer / apply); rewrites and inserts are
                // both upserts there.
                for old in &update.removes {
                    touched += self.route_view_remove(&update.view, old)?;
                }
                for new in update.rewrites.iter().chain(&update.inserts) {
                    touched += self.route_view_upsert(&update.view, new, false)?;
                }
                continue;
            }
            let table = update.view.table_name();
            for old in &update.removes {
                self.executor.delete_row_by_key(&table, old)?;
                touched += 1;
            }
            for new in &update.rewrites {
                self.executor.update_row(&table, new)?;
                touched += 1;
            }
            for new in &update.inserts {
                self.executor.insert_row(&table, new)?;
                touched += 1;
            }
        }
        self.stats
            .view_rows_touched
            .fetch_add(touched as u64, Ordering::Relaxed);
        Ok(touched)
    }

    /// Clears the dirty markers a staged update set (step 5).  Removed rows
    /// are gone — unmarking them would resurrect a marker-only row — so
    /// only rewritten rows are unmarked.
    pub fn unmark_staged(&self, staged: &[StagedViewUpdate]) -> Result<(), QueryError> {
        for update in staged {
            for row in &update.rewrites {
                if self.marker_applies(&update.view, row)? {
                    self.unmark_dirty(&update.view, row)?;
                }
            }
        }
        Ok(())
    }

    /// True when the update changes any attribute of `relation` that
    /// participates in one of the view's join edges — in which case rows
    /// can enter or leave the view, and both images must be propagated.
    fn join_attributes_changed(
        &self,
        view: &ViewDefinition,
        relation: &str,
        before: &Row,
        after: &Row,
    ) -> bool {
        for edge in &view.edges {
            let attrs: &[String] = if edge.from.eq_ignore_ascii_case(relation) {
                &edge.pk
            } else if edge.to.eq_ignore_ascii_case(relation) {
                &edge.fk
            } else {
                continue;
            };
            for attribute in attrs {
                if before.get(attribute) != after.get(attribute) {
                    return true;
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Write batching
    // ------------------------------------------------------------------

    /// Buffers an insert for deferred propagation; flushes the batch when
    /// it reaches capacity.  Returns the number of view rows touched by a
    /// triggered flush (0 when the write was merely buffered).
    pub fn enqueue_insert(&self, relation: &str, row: &Row) -> Result<usize, QueryError> {
        if ids_for(&self.by_last, relation).is_empty() {
            return Ok(0);
        }
        self.enqueue(relation, row, PendingWrite::Insert(row.unqualified()))
    }

    /// Buffers a delete (`before` is the deleted row's image).
    pub fn enqueue_delete(&self, relation: &str, before: &Row) -> Result<usize, QueryError> {
        if ids_for(&self.by_last, relation).is_empty() {
            return Ok(0);
        }
        self.enqueue(relation, before, PendingWrite::Delete(before.unqualified()))
    }

    /// Buffers an update (both images).
    pub fn enqueue_update(
        &self,
        relation: &str,
        before: &Row,
        after: &Row,
    ) -> Result<usize, QueryError> {
        if ids_for(&self.by_member, relation).is_empty() {
            return Ok(0);
        }
        self.enqueue(
            relation,
            after,
            PendingWrite::Update {
                before: before.unqualified(),
                after: after.unqualified(),
            },
        )
    }

    fn enqueue(
        &self,
        relation: &str,
        keyed_by: &Row,
        write: PendingWrite,
    ) -> Result<usize, QueryError> {
        let def = self
            .executor
            .catalog()
            .table_ci(relation)
            .ok_or_else(|| QueryError::UnknownTable(relation.to_string()))?;
        let key = def.encode_row_key(keyed_by);
        let relation = def.name.clone();
        let full = {
            let mut buffer = self.buffer.lock().unwrap_or_else(PoisonError::into_inner);
            buffer.record(&relation, key, write);
            buffer.is_full()
        };
        if full {
            self.flush()
        } else {
            Ok(0)
        }
    }

    /// Discards every write still coalescing in the batch without
    /// propagating it.  Run by crash recovery: buffered deltas describe
    /// base writes that may not have survived the crash, so propagating
    /// them would corrupt the recovered views — the views are instead
    /// consistent with the replayed base tables already.  Returns the
    /// number of pending writes dropped.
    pub fn discard_pending(&self) -> usize {
        self.buffer.lock().unwrap_or_else(PoisonError::into_inner).drain().len()
    }

    /// Propagates every buffered (coalesced) write, in arrival order, with
    /// the same mark → apply → unmark discipline per update.  Returns the
    /// number of view rows touched.
    pub fn flush(&self) -> Result<usize, QueryError> {
        let drained = self.buffer.lock().unwrap_or_else(PoisonError::into_inner).drain();
        if drained.is_empty() {
            return Ok(0);
        }
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let mut touched = 0;
        for (relation, write) in drained {
            match write {
                PendingWrite::Insert(row) => {
                    touched += self.apply_insert(&relation, &row)?;
                }
                PendingWrite::Delete(before) => {
                    touched += self.apply_delete(&relation, &before)?;
                }
                PendingWrite::Update { before, after } => {
                    let staged = self.stage_update(&relation, &before, &after)?;
                    self.mark_staged(&staged)?;
                    touched += self.apply_staged(&staged)?;
                    self.unmark_staged(&staged)?;
                }
            }
        }
        Ok(touched)
    }

    // ------------------------------------------------------------------
    // Legacy scan-based update path (§VII-C as originally implemented)
    // ------------------------------------------------------------------

    /// Locates the view rows affected by an update of `relation` (identified
    /// by its primary-key values).  Uses the view key directly when
    /// `relation` is the view's last relation, a maintenance view-index when
    /// one exists, and a full view scan otherwise.  This is the scan-mode
    /// strategy the delta path replaces with base-table join probes.
    pub fn find_affected_view_rows(
        &self,
        view: &ViewDefinition,
        relation: &str,
        relation_key: &Row,
    ) -> Result<Vec<Row>, QueryError> {
        let view_table = view.table_name();
        let relation_pk = self
            .schema
            .relation(relation)
            .map(|r| r.primary_key.clone())
            .unwrap_or_default();

        if view.last_relation().eq_ignore_ascii_case(relation) {
            return Ok(self
                .executor
                .get_row_by_key(&view_table, relation_key)?
                .into_iter()
                .collect());
        }

        // Prefer a maintenance index keyed on the relation's primary key.
        // The scan rides the executor's snapshot bound (if any), so
        // maintenance never observes index entries newer than the
        // statement's snapshot.
        let index = self.view_indexes.iter().find(|i| {
            i.view == view_table && i.indexed_on == relation_pk
        });
        if let Some(index) = index {
            let prefix_values: Vec<Value> = relation_pk
                .iter()
                .map(|a| relation_key.get(a).cloned().unwrap_or(Value::Null))
                .collect();
            let mut prefix = encode_key(prefix_values.iter());
            let index_def = self
                .executor
                .catalog()
                .table(&index.name)
                .ok_or_else(|| QueryError::UnknownTable(index.name.clone()))?;
            // When the index key *is* the relation's primary key, the prefix
            // is a full key: at most one entry can match, so the stream can
            // stop at the first hit.
            let full_key_match = index_def.key.len() == relation_pk.len();
            if !full_key_match {
                // Close the last component so item "42" does not also match
                // view rows of items 420, 421, ...
                prefix.push(KEY_DELIMITER);
            }
            let cursor = self.executor.cluster().scan_stream(
                &index.name,
                self.executor.bounded_scan(Scan::prefix(prefix)),
            )?;
            let mut out = Vec::new();
            for entry in cursor {
                let index_row = index_def.decode_row(&entry);
                if let Some(view_row) = self.executor.get_row_by_key(&view_table, &index_row)? {
                    out.push(view_row);
                }
                if full_key_match {
                    break;
                }
            }
            return Ok(out);
        }

        // Fall back to streaming the whole view and filtering client-side,
        // under the executor's snapshot bound: maintenance must not observe
        // view rows newer than the query snapshot.  The walk is
        // region-parallel at the executor's thread count (serial at 1), and
        // the decode + filter fans out over the same workers.
        let threads = self.executor.threads();
        let view_def = self
            .executor
            .catalog()
            .table(&view_table)
            .ok_or_else(|| QueryError::UnknownTable(view_table.clone()))?;
        let cursor = self.executor.cluster().par_scan_stream(
            &view_table,
            self.executor.bounded_scan(Scan::all()),
            threads,
        )?;
        Ok(query::par_decode_filtered(view_def, cursor, threads, |row| {
            relation_pk.iter().all(|a| match (row.get(a), relation_key.get(a)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            })
        }))
    }

    /// Marks a view row dirty (step 3 of the update transaction, §VIII-B).
    pub fn mark_dirty(&self, view: &ViewDefinition, view_row: &Row) -> Result<(), QueryError> {
        self.set_marker(view, view_row, "1")
    }

    /// Clears the dirty marker (step 5 of the update transaction).
    pub fn unmark_dirty(&self, view: &ViewDefinition, view_row: &Row) -> Result<(), QueryError> {
        self.set_marker(view, view_row, "0")
    }

    fn set_marker(
        &self,
        view: &ViewDefinition,
        view_row: &Row,
        value: &str,
    ) -> Result<(), QueryError> {
        let view_table = view.table_name();
        let def = self
            .executor
            .catalog()
            .table(&view_table)
            .ok_or_else(|| QueryError::UnknownTable(view_table.clone()))?;
        let key = def.encode_row_key(view_row);
        self.executor.cluster().put(
            &view_table,
            Put::new(key).with(FAMILY, DIRTY_MARKER, value),
        )?;
        Ok(())
    }

    /// Applies an update to a located view row: merges the updated base
    /// attributes into the view row and rewrites it (the executor keeps the
    /// view's indexes in sync).  Returns the updated view row.  Scan-mode
    /// counterpart of [`MaintenanceEngine::apply_staged`]'s rewrites.
    pub fn apply_update_to_view_row(
        &self,
        view: &ViewDefinition,
        view_row: &Row,
        updated_base: &Row,
    ) -> Result<Row, QueryError> {
        let mut merged = view_row.clone();
        for (attribute, value) in updated_base.iter() {
            // Only attributes that exist in the view are propagated.
            if view.attributes(&self.schema).iter().any(|a| a == attribute) {
                merged.set(attribute, value.clone());
            }
        }
        // Drop view-index entries whose key changes (e.g. an index on an
        // updated attribute), then re-insert through the executor so every
        // view-index reflects the new values.
        for index in self.executor.catalog().indexes_of(&view.table_name()) {
            let old_key = index.encode_row_key(view_row);
            let new_key = index.encode_row_key(&merged);
            if old_key != new_key {
                self.executor
                    .cluster()
                    .delete(&index.name, nosql_store::ops::Delete::row(old_key))?;
            }
        }
        self.executor.insert_row(&view.table_name(), &merged)?;
        self.stats.view_rows_touched.fetch_add(1, Ordering::Relaxed);
        Ok(merged)
    }
}

fn push_id(index: &mut Vec<(String, Vec<usize>)>, relation: &str, id: usize) {
    match index
        .iter_mut()
        .find(|(r, _)| r.eq_ignore_ascii_case(relation))
    {
        Some((_, ids)) => {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        None => index.push((relation.to_string(), vec![id])),
    }
}

fn ids_for<'a>(index: &'a [(String, Vec<usize>)], relation: &str) -> &'a [usize] {
    index
        .iter()
        .find(|(r, _)| r.eq_ignore_ascii_case(relation))
        .map(|(_, ids)| ids.as_slice())
        .unwrap_or(&[])
}
