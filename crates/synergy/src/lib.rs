//! **Synergy**: schema-based, workload-driven materialized-view selection and
//! single-lock hierarchical concurrency control on top of a NoSQL store.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Tapdiya, Xue, Fabbri — *A Comparative Analysis of Materialized Views
//! Selection and Concurrency Control Mechanisms in NoSQL Databases*, IEEE
//! CLUSTER 2017).  The pipeline mirrors Figure 3 of the paper:
//!
//! 1. **Baseline transformation** (provided by the `query` crate): the
//!    relational schema and workload are mapped onto NoSQL tables.
//! 2. **Candidate view generation** ([`viewgen`]): the schema graph is turned
//!    into a DAG, relations are assigned to roots in topological order, and
//!    each rooted graph is reduced to a rooted tree; every path in a rooted
//!    tree is a candidate view (§V).
//! 3. **View selection** ([`selection`]): a workload-driven marking procedure
//!    picks views for every equi-join query (§VI-A).
//! 4. **Query rewriting** ([`rewrite`]) and **view-indexes** ([`selection`]):
//!    queries are rewritten over the selected views and supplemented with
//!    covered view-indexes for their filter columns (§VI-B, §VI-C).
//! 5. **View maintenance** ([`maintenance`]): each view's defining join is
//!    compiled into an incremental delta plan; writes propagate as signed
//!    row-deltas through it (with an optional coalescing write batch),
//!    keeping views consistent under inserts, deletes and updates (§VII).
//! 6. **Concurrency control** ([`lock`], [`txn`]): one lock table per root
//!    relation, a single hierarchical lock per write transaction, dirty-row
//!    marking with scan restart for read-committed isolation (§VIII).
//!
//! [`SynergySystem`] assembles the whole stack; [`advisor`] implements the
//! schema-oblivious, purely workload-based view selector used as the
//! MVCC-UA comparison system.

// Library code of this crate must not panic on fault paths (the lint
// crate's panic-freedom rule is the authority; clippy backs it up in CI).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod advisor;
pub mod lock;
pub mod maintenance;
pub mod partial;
pub mod rewrite;
pub mod selection;
pub mod system;
pub mod txn;
pub mod viewgen;

pub use lock::{LockGuard, LockManager};
pub use maintenance::{
    MaintenanceEngine, MaintenanceStatsSnapshot, StagedViewUpdate, ViewMaintainer,
};
pub use partial::{MaintOutcome, ResidencySnapshot, ViewResidency};
pub use rewrite::SynergyRewriter;
pub use selection::{SelectionOutcome, ViewIndexDefinition};
pub use system::{Materialization, SynergyConfig, SynergyRecovery, SynergySystem};
pub use txn::{TransactionLayer, TxnError, WritePlan};
pub use viewgen::{CandidateViews, RootedTree, ViewDefinition};
