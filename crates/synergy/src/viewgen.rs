//! Candidate views generation (paper §V).
//!
//! The mechanism takes the schema graph, the workload and a set of root
//! relations and produces one rooted tree per root:
//!
//! 1. **Graph → DAG**: keep at most one edge between any pair of relations,
//!    choosing the edge with the highest workload weight (number of
//!    overlapping joins), e.g. dropping `(AID, EOffice_AID)` in the Company
//!    example.
//! 2. **Topological order** of the DAG.
//! 3. **Assign relations to roots**: in topological order, each non-root
//!    relation is assigned to at most one root by selecting the
//!    highest-weight root-to-relation path whose relations are not already
//!    owned by a different root; the path is added to that root's *rooted
//!    graph*.
//! 4. **Rooted graph → rooted tree**: walking non-root relations in reverse
//!    topological order, repeatedly keep the highest-weight root-to-relation
//!    path, so that exactly one path connects the root to every assigned
//!    relation.
//!
//! Every path in a rooted tree is a candidate view (Definition 5); the view
//! is stored physically as a table whose attributes are the union of the
//! participating relations' attributes and whose key is the key of the last
//! relation in the path.

use relational::{GraphEdge, Schema, SchemaGraph};
use sql::Statement;
use std::collections::{BTreeMap, BTreeSet};

/// A rooted tree produced by the candidate views generation mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    /// The root relation.
    pub root: String,
    /// Tree edges, each from a parent relation to a child relation.
    pub edges: Vec<GraphEdge>,
}

impl RootedTree {
    /// Every relation in the tree (root first, then children in edge order).
    pub fn nodes(&self) -> Vec<String> {
        let mut nodes = vec![self.root.clone()];
        for e in &self.edges {
            if !nodes.contains(&e.to) {
                nodes.push(e.to.clone());
            }
        }
        nodes
    }

    /// True if the relation belongs to this tree.
    pub fn contains(&self, relation: &str) -> bool {
        self.root == relation || self.edges.iter().any(|e| e.to == relation)
    }

    /// The edge whose child is `relation`, if any.
    pub fn edge_into(&self, relation: &str) -> Option<&GraphEdge> {
        self.edges.iter().find(|e| e.to == relation)
    }

    /// Edges whose parent is `relation`.
    pub fn children(&self, relation: &str) -> Vec<&GraphEdge> {
        self.edges.iter().filter(|e| e.from == relation).collect()
    }

    /// The unique path of edges from the root down to `relation`
    /// (empty for the root itself, `None` if the relation is not in the tree).
    pub fn path_from_root(&self, relation: &str) -> Option<Vec<GraphEdge>> {
        if relation == self.root {
            return Some(Vec::new());
        }
        let mut path = Vec::new();
        let mut current = relation.to_string();
        while current != self.root {
            let edge = self.edge_into(&current)?.clone();
            current = edge.from.clone();
            path.push(edge);
        }
        path.reverse();
        Some(path)
    }

    /// Enumerates every downward path of length ≥ 1 in the tree — the
    /// candidate views rooted anywhere in the tree (Definition 5).
    pub fn all_paths(&self) -> Vec<ViewDefinition> {
        let mut out = Vec::new();
        for start in self.nodes() {
            self.extend_paths(&start, &mut vec![], &mut out);
        }
        out
    }

    fn extend_paths(
        &self,
        node: &str,
        prefix: &mut Vec<GraphEdge>,
        out: &mut Vec<ViewDefinition>,
    ) {
        for edge in self.children(node) {
            prefix.push(edge.clone());
            out.push(ViewDefinition::from_edges(prefix.clone()));
            self.extend_paths(&edge.to, prefix, out);
            prefix.pop();
        }
    }
}

/// A candidate or selected materialized view: a path of key/foreign-key
/// edges.  The view's attributes are the union of the participating
/// relations' attributes; its key is the key of the last relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDefinition {
    /// Relations in path order (first → last).
    pub relations: Vec<String>,
    /// The edges connecting consecutive relations (`relations.len() - 1`).
    pub edges: Vec<GraphEdge>,
}

impl ViewDefinition {
    /// Builds a view definition from a non-empty edge path.
    pub fn from_edges(edges: Vec<GraphEdge>) -> Self {
        assert!(!edges.is_empty(), "a view path needs at least one edge");
        let mut relations = vec![edges[0].from.clone()];
        for e in &edges {
            relations.push(e.to.clone());
        }
        ViewDefinition { relations, edges }
    }

    /// The physical table name of the view, e.g. `V_Customer__Orders`.
    pub fn table_name(&self) -> String {
        format!("V_{}", self.relations.join("__"))
    }

    /// Display name matching the paper's `Customer-Order-Order_line` style.
    pub fn display_name(&self) -> String {
        self.relations.join("-")
    }

    /// The last relation of the path (whose key becomes the view key).
    pub fn last_relation(&self) -> &str {
        // lint-allow(panic-freedom): JoinPath::new rejects empty relation lists
        self.relations.last().expect("non-empty path")
    }

    /// The first relation of the path.
    pub fn first_relation(&self) -> &str {
        // lint-allow(panic-freedom): JoinPath::new rejects empty relation lists
        self.relations.first().expect("non-empty path")
    }

    /// True if `relation` participates in the view.
    pub fn contains(&self, relation: &str) -> bool {
        self.relations.iter().any(|r| r == relation)
    }

    /// Number of relations in the view.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Views always span at least two relations.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The SELECT statement defining this view's contents: the natural
    /// FK-join of its relations.  The maintenance engine compiles this
    /// through the regular planner into the view's delta plan.
    pub fn defining_select(&self) -> String {
        let mut conditions = Vec::new();
        for edge in &self.edges {
            for (pk, fk) in edge.pk.iter().zip(edge.fk.iter()) {
                conditions.push(format!("{}.{pk} = {}.{fk}", edge.from, edge.to));
            }
        }
        format!(
            "SELECT * FROM {} WHERE {}",
            self.relations.join(", "),
            conditions.join(" AND ")
        )
    }

    /// The view's key attributes: the primary key of the last relation.
    pub fn key_attributes(&self, schema: &Schema) -> Vec<String> {
        schema
            .relation(self.last_relation())
            .map(|r| r.primary_key.clone())
            .unwrap_or_default()
    }

    /// The view's attributes: the union of the participating relations'
    /// attributes, in relation-path order.
    pub fn attributes(&self, schema: &Schema) -> Vec<String> {
        let mut out = Vec::new();
        for relation in &self.relations {
            if let Some(r) = schema.relation(relation) {
                for a in &r.attributes {
                    if !out.contains(a) {
                        out.push(a.clone());
                    }
                }
            }
        }
        out
    }
}

/// Output of the candidate views generation mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateViews {
    /// One rooted tree per root that received at least one relation.
    pub trees: Vec<RootedTree>,
    /// The intermediate DAG (schema graph with parallel edges pruned),
    /// exposed for inspection and tests.
    pub dag: SchemaGraph,
    /// Relations that could not be assigned to any root (no path from a
    /// root reaches them); their writes need no hierarchical lock.
    pub unassigned: Vec<String>,
}

impl CandidateViews {
    /// The tree whose root is `root`, if any.
    pub fn tree_for_root(&self, root: &str) -> Option<&RootedTree> {
        self.trees.iter().find(|t| t.root == root)
    }

    /// The tree containing `relation`, if any.  Because each relation is
    /// assigned to at most one root, there is at most one.
    pub fn tree_containing(&self, relation: &str) -> Option<&RootedTree> {
        self.trees.iter().find(|t| t.contains(relation))
    }

    /// Every candidate view across all rooted trees.
    pub fn all_candidate_views(&self) -> Vec<ViewDefinition> {
        self.trees.iter().flat_map(RootedTree::all_paths).collect()
    }
}

/// The workload-aware heuristic of §V-B2: the weight of an edge is the number
/// of join conditions in the workload that join exactly that `(PK, FK)`
/// attribute pair between the edge's two relations.
pub fn edge_workload_weight(edge: &GraphEdge, workload: &[Statement]) -> usize {
    let mut weight = 0;
    for statement in workload {
        let Some(select) = statement.as_select() else {
            continue;
        };
        for condition in select.join_conditions() {
            let sql::Expr::Column(right) = &condition.right else {
                continue;
            };
            let left = &condition.left;
            let left_table = left
                .qualifier
                .as_deref()
                .and_then(|q| select.resolve_alias(q))
                .unwrap_or("");
            let right_table = right
                .qualifier
                .as_deref()
                .and_then(|q| select.resolve_alias(q))
                .unwrap_or("");
            let pairs = edge.pk.iter().zip(edge.fk.iter());
            for (pk, fk) in pairs {
                let forward = left_table.eq_ignore_ascii_case(&edge.from)
                    && right_table.eq_ignore_ascii_case(&edge.to)
                    && left.column.eq_ignore_ascii_case(pk)
                    && right.column.eq_ignore_ascii_case(fk);
                let backward = right_table.eq_ignore_ascii_case(&edge.from)
                    && left_table.eq_ignore_ascii_case(&edge.to)
                    && right.column.eq_ignore_ascii_case(pk)
                    && left.column.eq_ignore_ascii_case(fk);
                if forward || backward {
                    weight += 1;
                }
            }
        }
    }
    weight
}

/// Weight of a path: the sum of its edge weights (the number of workload
/// joins the path overlaps).
pub fn path_workload_weight(path: &[GraphEdge], workload: &[Statement]) -> usize {
    path.iter().map(|e| edge_workload_weight(e, workload)).sum()
}

/// Number of workload queries that contain at least one join condition
/// overlapping one of the path's edges.  This is the "number of overlapping
/// joins" heuristic used when assigning relations to roots: counting
/// *queries* (rather than raw conditions) keeps one query with many joins
/// from dominating the assignment.
pub fn path_query_overlap(path: &[GraphEdge], workload: &[Statement]) -> usize {
    workload
        .iter()
        .filter(|statement| {
            path.iter()
                .any(|edge| edge_workload_weight(edge, std::slice::from_ref(*statement)) > 0)
        })
        .count()
}

/// Runs the candidate views generation mechanism (§V-B) and returns the
/// rooted trees.
pub fn generate_candidate_views(
    schema: &Schema,
    workload: &[Statement],
    roots: &[String],
) -> CandidateViews {
    let graph = SchemaGraph::from_schema(schema);

    // Step 1: prune parallel edges, keeping the highest-weight edge between
    // any ordered pair of relations.
    let mut kept: BTreeMap<(String, String), GraphEdge> = BTreeMap::new();
    for edge in graph.edges() {
        let key = (edge.from.clone(), edge.to.clone());
        match kept.get(&key) {
            Some(existing)
                if edge_workload_weight(existing, workload)
                    >= edge_workload_weight(edge, workload) => {}
            _ => {
                kept.insert(key, edge.clone());
            }
        }
    }
    let dag = SchemaGraph::from_parts(graph.nodes().to_vec(), kept.into_values().collect());
    debug_assert!(dag.is_acyclic(), "schema must be free of circular references");

    // Step 2: topological order of the DAG.
    let topo = dag
        .topological_order()
        // lint-allow(panic-freedom): schema validation rejects cyclic FK graphs at load
        .expect("schema graph free of circular references");

    // Step 3: assign non-root relations to roots in topological order.
    let mut assignment: BTreeMap<String, String> = BTreeMap::new(); // relation -> root
    for root in roots {
        assignment.insert(root.clone(), root.clone());
    }
    let mut rooted_graph_edges: BTreeMap<String, Vec<GraphEdge>> = BTreeMap::new();
    let mut unassigned = Vec::new();
    for relation in &topo {
        if roots.contains(relation) {
            continue;
        }
        // 3a: identify paths from every root to this relation.
        let mut candidate_paths: Vec<(usize, usize, String, Vec<GraphEdge>)> = Vec::new();
        for root in roots {
            for path in dag.all_paths(root, relation) {
                // 3b: the path must include a single root and no relation
                // already owned by a different root.
                let contains_other_root = path
                    .iter()
                    .any(|e| roots.contains(&e.to) && &e.to != relation);
                if contains_other_root {
                    continue;
                }
                let conflicting = path.iter().any(|e| {
                    assignment
                        .get(&e.to)
                        .is_some_and(|owner| owner != root)
                });
                if conflicting {
                    continue;
                }
                let overlap = path_query_overlap(&path, workload);
                candidate_paths.push((overlap, path.len(), root.clone(), path));
            }
        }
        // Highest query overlap first; shorter paths win ties (cheaper view
        // maintenance); remaining ties fall back to root declaration order.
        candidate_paths.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let Some((_, _, root, path)) = candidate_paths.into_iter().next() else {
            unassigned.push(relation.clone());
            continue;
        };
        // 3c: add the path to the root's rooted graph and record ownership.
        let edges = rooted_graph_edges.entry(root.clone()).or_default();
        for edge in path {
            assignment.insert(edge.to.clone(), root.clone());
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }
    }

    // Step 4: reduce each rooted graph to a rooted tree.
    let mut trees = Vec::new();
    for root in roots {
        let Some(edges) = rooted_graph_edges.get(root) else {
            continue;
        };
        let nodes: Vec<String> = {
            let mut nodes = vec![root.clone()];
            for e in edges {
                if !nodes.contains(&e.from) {
                    nodes.push(e.from.clone());
                }
                if !nodes.contains(&e.to) {
                    nodes.push(e.to.clone());
                }
            }
            nodes
        };
        let rooted_graph = SchemaGraph::from_parts(nodes.clone(), edges.clone());
        let topo_non_roots: Vec<String> = rooted_graph
            .topological_order()
            // lint-allow(panic-freedom): subgraph of the validated acyclic schema graph
            .expect("rooted graph is a sub-DAG")
            .into_iter()
            .filter(|n| n != root)
            .collect();

        let mut remaining: Vec<String> = topo_non_roots;
        let mut tree_edges: Vec<GraphEdge> = Vec::new();
        // Reverse topological order keeps the paths that materialize the
        // largest number of workload joins (§V-B2, step 4 discussion).
        while let Some(last) = remaining.last().cloned() {
            let mut paths = rooted_graph.all_paths(root, &last);
            if paths.is_empty() {
                // Unreachable within the rooted graph (should not happen) —
                // drop the relation defensively.
                remaining.pop();
                continue;
            }
            paths.sort_by_key(|p| std::cmp::Reverse(path_workload_weight(p, workload)));
            let best = paths.swap_remove(0);
            let on_path: BTreeSet<String> = best.iter().map(|e| e.to.clone()).collect();
            for edge in best {
                if !tree_edges.iter().any(|e| e.to == edge.to) {
                    tree_edges.push(edge);
                }
            }
            remaining.retain(|r| !on_path.contains(r));
        }
        trees.push(RootedTree {
            root: root.clone(),
            edges: tree_edges,
        });
    }

    CandidateViews {
        trees,
        dag,
        unassigned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relational::company;
    use sql::parse_workload;

    fn company_candidates() -> CandidateViews {
        let schema = company::company_schema();
        let workload_sql = company::company_workload_sql();
        let workload =
            parse_workload(workload_sql.iter().map(String::as_str)).expect("workload parses");
        generate_candidate_views(&schema, &workload, &company::company_roots())
    }

    #[test]
    fn dag_prunes_the_office_address_edge() {
        let candidates = company_candidates();
        // Figure 5(a): only one Address→Employee edge survives, the home
        // address one (it overlaps workload query W1).
        let edges = candidates.dag.edges_between("Address", "Employee");
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].fk, vec!["EHome_AID"]);
        assert_eq!(candidates.dag.edge_count(), 8);
    }

    #[test]
    fn rooted_trees_match_figure_4b() {
        let candidates = company_candidates();
        assert_eq!(candidates.trees.len(), 2);

        // Address tree: Address → Employee → {Works_On, Dependent}.
        let address = candidates.tree_for_root("Address").unwrap();
        assert!(address.contains("Employee"));
        assert!(address.contains("Works_On"));
        assert!(address.contains("Dependent"));
        assert_eq!(address.edge_into("Employee").unwrap().from, "Address");
        assert_eq!(address.edge_into("Works_On").unwrap().from, "Employee");
        assert_eq!(address.edge_into("Dependent").unwrap().from, "Employee");

        // Department tree: Department → {Department_Location, Project}.
        let dept = candidates.tree_for_root("Department").unwrap();
        assert!(dept.contains("Department_Location"));
        assert!(dept.contains("Project"));
        assert!(!dept.contains("Employee"), "Employee is owned by the Address root");

        // Every non-root relation is assigned to exactly one tree.
        for relation in ["Employee", "Works_On", "Dependent", "Project", "Department_Location"] {
            let owners = candidates
                .trees
                .iter()
                .filter(|t| t.contains(relation))
                .count();
            assert_eq!(owners, 1, "{relation} must belong to exactly one tree");
        }
        assert!(candidates.unassigned.is_empty());
    }

    #[test]
    fn paths_from_root_are_unique_and_correct() {
        let candidates = company_candidates();
        let address = candidates.tree_for_root("Address").unwrap();
        let path = address.path_from_root("Works_On").unwrap();
        let relations: Vec<&str> = path.iter().map(|e| e.to.as_str()).collect();
        assert_eq!(relations, vec!["Employee", "Works_On"]);
        assert_eq!(address.path_from_root("Address").unwrap().len(), 0);
        assert!(address.path_from_root("Project").is_none());
    }

    #[test]
    fn candidate_views_enumerate_all_tree_paths() {
        let candidates = company_candidates();
        let views = candidates.all_candidate_views();
        let names: Vec<String> = views.iter().map(ViewDefinition::display_name).collect();
        // Address tree paths.
        assert!(names.contains(&"Address-Employee".to_string()));
        assert!(names.contains(&"Address-Employee-Works_On".to_string()));
        assert!(names.contains(&"Employee-Works_On".to_string()));
        assert!(names.contains(&"Employee-Dependent".to_string()));
        // Department tree paths.
        assert!(names.contains(&"Department-Project".to_string()));
        assert!(names.contains(&"Department-Department_Location".to_string()));
        // No view crosses trees.
        assert!(!names.iter().any(|n| n.contains("Department") && n.contains("Employee")));
    }

    #[test]
    fn view_definition_metadata() {
        let schema = company::company_schema();
        let candidates = company_candidates();
        let address = candidates.tree_for_root("Address").unwrap();
        let path = address.path_from_root("Works_On").unwrap();
        let view = ViewDefinition::from_edges(path);
        assert_eq!(view.display_name(), "Address-Employee-Works_On");
        assert_eq!(view.table_name(), "V_Address__Employee__Works_On");
        assert_eq!(view.last_relation(), "Works_On");
        assert_eq!(view.first_relation(), "Address");
        assert_eq!(view.key_attributes(&schema), vec!["WO_EID", "WO_PNo"]);
        let attrs = view.attributes(&schema);
        assert!(attrs.contains(&"City".to_string()));
        assert!(attrs.contains(&"EName".to_string()));
        assert!(attrs.contains(&"Hours".to_string()));
        assert_eq!(view.len(), 3);
    }

    #[test]
    fn edge_weights_reflect_workload_joins() {
        let schema = company::company_schema();
        let graph = SchemaGraph::from_schema(&schema);
        let workload_sql = company::company_workload_sql();
        let workload = parse_workload(workload_sql.iter().map(String::as_str)).unwrap();
        let home_edge = graph
            .edges_between("Address", "Employee")
            .into_iter()
            .find(|e| e.fk == vec!["EHome_AID"])
            .unwrap();
        let office_edge = graph
            .edges_between("Address", "Employee")
            .into_iter()
            .find(|e| e.fk == vec!["EOffice_AID"])
            .unwrap();
        assert_eq!(edge_workload_weight(home_edge, &workload), 1);
        assert_eq!(edge_workload_weight(office_edge, &workload), 0);
        let emp_wo = graph.edges_between("Employee", "Works_On")[0];
        // Appears in W2 and W3.
        assert_eq!(edge_workload_weight(emp_wo, &workload), 2);
    }

    #[test]
    fn relations_unreachable_from_roots_are_reported() {
        let schema = company::company_schema();
        let workload = [];
        // Only Department as root: Address, Employee-subtree relations that
        // depend on Address/Employee paths from Department are reachable via
        // Department → Employee, but Address itself is unreachable.
        let candidates =
            generate_candidate_views(&schema, &workload, &["Department".to_string()]);
        assert!(candidates.unassigned.contains(&"Address".to_string()));
        let tree = candidates.tree_for_root("Department").unwrap();
        assert!(tree.contains("Employee"));
    }

    #[test]
    fn empty_roots_produce_no_trees() {
        let schema = company::company_schema();
        let candidates = generate_candidate_views(&schema, &[], &[]);
        assert!(candidates.trees.is_empty());
        assert_eq!(candidates.unassigned.len(), 7);
    }
}
