//! The assembled Synergy system (paper Figure 3 and Figure 7).
//!
//! [`SynergySystem::build`] runs the whole offline pipeline — baseline
//! transformation, candidate view generation, view selection, query
//! rewriting, view-index addition, table and lock-table creation — and the
//! resulting object executes the online workload: reads go straight to the
//! store through the rewritten queries (with dirty-read protection), writes
//! go through the transaction layer's single-lock procedures.

use crate::lock::LockManager;
use crate::maintenance::{MaintenanceEngine, MaintenanceStatsSnapshot};
use crate::partial::{Lookup, ResidencySnapshot, ViewResidency};
use crate::rewrite::SynergyRewriter;
use crate::selection::{select_views, SelectionOutcome, ViewIndexDefinition};
use crate::txn::{TransactionLayer, TxnError, WritePlan};
use crate::viewgen::{generate_candidate_views, CandidateViews, ViewDefinition};
use nosql_store::Cluster;
use query::baseline::{baseline_catalog_with_types, create_tables, TypeHint};
use query::{
    Catalog, ColumnType, Executor, PlanCacheStats, PlanRewriter, QueryError, QueryResult, Session,
    TableDef, TableKind,
};
use relational::{Row, Schema, Value};
use sql::Statement;
use std::collections::{BTreeMap, HashMap}; // lint-allow(determinism): HashMap only for the probe-only FK table below
use std::sync::Arc;

/// Configuration for building a [`SynergySystem`].
pub struct SynergyConfig<'a> {
    /// The relational schema.
    pub schema: Schema,
    /// The workload (used to drive view selection and query rewriting).
    pub workload: Vec<Statement>,
    /// The roots set Q (provided by the database designer, §V-A).
    pub roots: Vec<String>,
    /// Column-type hints for the baseline transformation.
    pub types: TypeHint<'a>,
    /// Overrides the candidate views (skipping §V's generation mechanism).
    /// Used to build the comparison systems: the Baseline system passes an
    /// empty candidate set (no views) and MVCC-UA passes the advisor's
    /// schema-oblivious views.
    pub candidate_override: Option<CandidateViews>,
    /// When false, write transactions skip the hierarchical lock.  The
    /// MVCC-based comparison systems disable it because their concurrency
    /// control is the MVCC transaction server, not Synergy's locks.
    pub hierarchical_locking: bool,
    /// Degree of region-parallel execution for reads and batch view
    /// refreshes (1 = fully serial, the default).
    pub threads: usize,
    /// When true (the default), views are maintained by propagating write
    /// deltas through each view's compiled plan; when false, the legacy
    /// scan-based procedures locate affected view rows.
    pub delta_maintenance: bool,
    /// Capacity of the coalescing maintenance write batch (1 = propagate
    /// per write, the default; larger values defer and merge deltas until
    /// the batch fills or a read flushes it).
    pub write_batch: usize,
    /// Restart budget for scans that keep observing dirty markers (default
    /// [`query::DIRTY_RETRY_LIMIT`]).  Fault harnesses use a small limit so
    /// a permanently dirty view degrades to the baseline plan quickly.
    pub dirty_retry_limit: usize,
    /// Lock-lease length override (default
    /// [`crate::lock::DEFAULT_LOCK_LEASE`]).
    pub lock_lease: Option<simclock::SimDuration>,
    /// Resident-byte budget for **partial view materialization** (`None`,
    /// the default, keeps the classic fully-materialized behavior).  With a
    /// budget set, views start empty and fill on demand through upqueries;
    /// a CLOCK sweep evicts cold keys to keep total resident view bytes
    /// under the budget (see [`crate::partial::ViewResidency`]).
    pub view_budget: Option<u64>,
}

impl<'a> SynergyConfig<'a> {
    /// A standard Synergy configuration (candidate generation from `roots`,
    /// hierarchical locking enabled).
    pub fn new(
        schema: Schema,
        workload: Vec<Statement>,
        roots: Vec<String>,
        types: TypeHint<'a>,
    ) -> Self {
        SynergyConfig {
            schema,
            workload,
            roots,
            types,
            candidate_override: None,
            hierarchical_locking: true,
            threads: 1,
            delta_maintenance: true,
            write_batch: 1,
            dirty_retry_limit: query::DIRTY_RETRY_LIMIT,
            lock_lease: None,
            view_budget: None,
        }
    }

    /// Enables partial view materialization with the given resident-byte
    /// budget (`u64::MAX` = demand-filled but never evicted).  Views are no
    /// longer pre-filled by [`SynergySystem::materialize_views`]; reads fill
    /// them key-by-key through upqueries and a CLOCK sweep evicts cold keys
    /// to stay under the budget.
    pub fn with_view_budget(mut self, bytes: u64) -> Self {
        self.view_budget = Some(bytes);
        self
    }

    /// Overrides the dirty-scan restart budget (see
    /// [`query::Executor::with_dirty_retry_limit`]).
    pub fn with_dirty_retry_limit(mut self, limit: usize) -> Self {
        self.dirty_retry_limit = limit.max(1);
        self
    }

    /// Overrides the lock-lease length (see
    /// [`crate::lock::LockManager::with_lease`]).
    pub fn with_lock_lease(mut self, lease: simclock::SimDuration) -> Self {
        self.lock_lease = Some(lease);
        self
    }

    /// Runs reads and batch view refreshes with up to `threads` parallel
    /// workers (see [`query::Executor::with_threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Uses the given candidate views instead of running §V's generation.
    pub fn with_candidate_override(mut self, candidates: CandidateViews) -> Self {
        self.candidate_override = Some(candidates);
        self
    }

    /// Disables the hierarchical single-lock protocol (the MVCC comparison
    /// systems rely on their transaction server instead).
    pub fn without_hierarchical_locking(mut self) -> Self {
        self.hierarchical_locking = false;
        self
    }

    /// Coalesces up to `capacity` writes in the maintenance batch before
    /// propagating their deltas (reads flush the batch first).
    pub fn with_write_batch(mut self, capacity: usize) -> Self {
        self.write_batch = capacity.max(1);
        self
    }

    /// Uses the legacy scan-based view maintenance instead of delta
    /// propagation (the paper's original §VII procedures; kept as the
    /// comparison path for the write benchmarks).
    pub fn with_scan_maintenance(mut self) -> Self {
        self.delta_maintenance = false;
        self
    }
}

/// A fully assembled Synergy deployment over a NoSQL cluster.
#[derive(Clone)]
pub struct SynergySystem {
    schema: Schema,
    workload: Vec<Statement>,
    candidates: CandidateViews,
    selection: SelectionOutcome,
    executor: Executor,
    /// The read path: a planner session whose rewriter rule substitutes the
    /// selected views, with a plan cache keyed by statement text.
    session: Session,
    /// The view-substitution rule the session plans through (also answers
    /// [`SynergySystem::rewrite`] directly).
    rewriter: Arc<SynergyRewriter>,
    txn: TransactionLayer,
    locks: LockManager,
    hierarchical_locking: bool,
    /// Reads answered by falling back to the baseline (view-free) plan
    /// because the rewritten plan exhausted its dirty-scan restarts.
    dirty_fallbacks: Arc<std::sync::atomic::AtomicU64>,
    /// Partial-materialization residency map (`None` without a view budget:
    /// views are fully materialized and every read is a hit by construction).
    residency: Option<Arc<ViewResidency>>,
    /// A second, rewriter-free session for upqueries: the missing-key join
    /// must plan against the **base** tables — the main session's rewrite
    /// rule would route it back onto the very view being filled.
    upquery_session: Session,
}

/// What the offline view-population step wrote (see
/// [`SynergySystem::materialize_views`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Materialization {
    /// View rows materialized across all selected views.
    pub rows: usize,
    /// Estimated bytes of those rows (the catalog's storage-size model).
    pub bytes: u64,
}

/// How one read is admitted under partial materialization (see
/// [`SynergySystem::execute`]).
enum PartialRoute {
    /// Every routed view key is resident with a reader pin held (empty when
    /// partial mode is off or the read touches no view).
    Pinned(Vec<(String, String)>),
    /// A routed view has no leading-key binding: answer over base tables.
    Bypass,
}

/// What [`SynergySystem::recover`] did to bring the deployment back to a
/// consistent state after a cluster crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynergyRecovery {
    /// The store-level WAL replay report.
    pub cluster: nosql_store::RecoveryReport,
    /// Hierarchical locks whose leases had expired (held by transactions
    /// killed by the crash) that were force-released.
    pub locks_reclaimed: usize,
    /// Dirty view rows recomputed from their surviving base row (the
    /// interrupted transaction is rolled forward).
    pub view_rows_rolled_forward: usize,
    /// Dirty view rows whose base row did not survive, deleted (the
    /// interrupted transaction is rolled back).
    pub view_rows_removed: usize,
    /// Writes still coalescing in the maintenance batch at the crash,
    /// discarded (their base writes may not have survived).
    pub pending_writes_discarded: usize,
}

impl SynergySystem {
    /// Runs the offline pipeline and creates every table (base, index, view,
    /// view-index, lock) in the cluster.
    pub fn build(cluster: Cluster, config: SynergyConfig<'_>) -> Result<Self, QueryError> {
        let SynergyConfig {
            schema,
            workload,
            roots,
            types,
            candidate_override,
            hierarchical_locking,
            threads,
            delta_maintenance,
            write_batch,
            dirty_retry_limit,
            lock_lease,
            view_budget,
        } = config;

        // 1. Baseline schema transformation.
        let mut catalog = baseline_catalog_with_types(&schema, types);

        // 2–3. Candidate view generation + workload-driven selection.
        let candidates = candidate_override
            .unwrap_or_else(|| generate_candidate_views(&schema, &workload, &roots));
        let selection = select_views(&schema, &candidates, &workload);

        // 4. Extend the catalog with views and view-indexes.
        for view in &selection.views {
            catalog.add_table(view_table_def(view, &schema, &catalog));
        }
        for index in &selection.view_indexes {
            catalog.add_table(view_index_table_def(index, &selection, &schema, &catalog));
        }

        // 4b. Maintenance indexes for delta join probes: for every view
        // edge whose child-side FK probe would otherwise be a full base-
        // table scan, add a covered index keyed `fk ++ child pk`.  The
        // catalog marks them maintenance-only, so the read optimizer never
        // selects them and read plans stay exactly as without them; every
        // write path maintains them like any other index.
        if delta_maintenance {
            for view in &selection.views {
                for edge in &view.edges {
                    let Some(child) = catalog.table_ci(&edge.to).cloned() else {
                        continue;
                    };
                    if query::select_probe_access(&catalog, &child, &edge.fk)
                        != query::AccessPath::FullScan
                    {
                        continue;
                    }
                    let name = format!("MI_{}__{}", child.name, edge.fk.join("_"));
                    if catalog.table(&name).is_some() {
                        continue;
                    }
                    let mut key = edge.fk.clone();
                    for k in &child.key {
                        if !key.contains(k) {
                            key.push(k.clone());
                        }
                    }
                    catalog.add_table(TableDef::new(
                        name.clone(),
                        child.columns.clone(),
                        key,
                        TableKind::Index {
                            of: child.name.clone(),
                        },
                    ));
                    catalog.mark_maintenance_index(&name);
                }
            }
        }

        // 5. Create all physical tables, plus one lock table per rooted tree.
        create_tables(&cluster, &catalog)?;
        let mut locks = LockManager::new(cluster.clone());
        if let Some(lease) = lock_lease {
            locks = locks.with_lease(lease);
        }
        if hierarchical_locking {
            for tree in &candidates.trees {
                locks.create_lock_table(&tree.root)?;
            }
        }

        // Reads restart when they observe a dirty marker (§VIII-C).
        let executor = Executor::new(cluster, catalog)
            .with_dirty_read_protection()
            .with_dirty_retry_limit(dirty_retry_limit)
            .with_threads(threads);
        let residency = view_budget.map(|budget| Arc::new(ViewResidency::new(budget)));
        let mut maintainer = MaintenanceEngine::new(
            executor.clone(),
            schema.clone(),
            selection.views.clone(),
            selection.view_indexes.clone(),
        )
        .with_delta(delta_maintenance)
        .with_write_batch(write_batch);
        if let Some(residency) = &residency {
            maintainer = maintainer.with_residency(residency.clone());
        }
        let txn = TransactionLayer::new(
            executor.clone(),
            schema.clone(),
            candidates.clone(),
            locks.clone(),
            maintainer,
        )
        .with_hierarchical_locking(hierarchical_locking);

        // 6. The read path: a planner session whose rewrite rule
        // substitutes the selected views per workload statement (ad-hoc
        // statements run the marking procedure on the fly).  The rewrite
        // fires at plan-compile time — once per plan-cache miss — and is
        // visible in `EXPLAIN` as a `Rewrite` node.
        let rewriter = Arc::new(SynergyRewriter::new(
            candidates.clone(),
            workload.clone(),
            &selection,
        ));
        let session =
            Session::new(executor.clone()).with_rewriter(rewriter.clone() as Arc<dyn PlanRewriter>);
        let upquery_session = Session::new(executor.clone());

        Ok(SynergySystem {
            schema,
            workload,
            candidates,
            selection,
            executor,
            session,
            rewriter,
            txn,
            locks,
            hierarchical_locking,
            dirty_fallbacks: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            residency,
            upquery_session,
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        self.executor.cluster()
    }

    /// The relational schema this deployment was built from.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The workload the views were selected for.
    pub fn workload(&self) -> &[Statement] {
        &self.workload
    }

    /// The catalog (base tables, indexes, views, view-indexes).
    pub fn catalog(&self) -> &Catalog {
        self.executor.catalog()
    }

    /// The executor used for reads (dirty-read protection enabled).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The rooted trees produced by candidate view generation.
    pub fn candidates(&self) -> &CandidateViews {
        &self.candidates
    }

    /// The selected views and view-indexes.
    pub fn selection(&self) -> &SelectionOutcome {
        &self.selection
    }

    /// The hierarchical lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The transaction layer (exposed for plan inspection).
    pub fn transaction_layer(&self) -> &TransactionLayer {
        &self.txn
    }

    /// The planner session serving reads: view-rewrite rule installed,
    /// plan cache keyed by statement text.  Exposed so callers can prepare
    /// statements against the Synergy read path or inspect cache counters.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// A snapshot of the read path's plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.session.plan_cache_stats()
    }

    /// Renders the plan tree of a statement as Synergy executes it (view
    /// rewrite applied; the substitution appears as a `Rewrite` node).
    pub fn explain(&self, statement: &Statement) -> Result<String, QueryError> {
        self.session.explain_statement(statement)
    }

    /// Rewrites a statement over the selected views: the precomputed
    /// workload selection for workload statements, the per-query marking
    /// procedure on the fly otherwise.
    pub fn rewrite(&self, statement: &Statement) -> Statement {
        match statement {
            Statement::Select(select) => match self.rewriter.rewrite_select(select) {
                Some((rewritten, _)) => Statement::Select(rewritten),
                None => statement.clone(),
            },
            other => other.clone(),
        }
    }

    /// The plan the transaction layer would execute for a write statement.
    pub fn plan_write(&self, statement: &Statement) -> Result<WritePlan, TxnError> {
        self.txn.plan(statement)
    }

    /// Executes one workload statement: reads go through the planner
    /// session (view rewrite as a compile-time rule, plan served from the
    /// cache on repetition); writes run as single-lock transactions in the
    /// transaction layer.
    pub fn execute(&self, statement: &Statement, params: &[Value]) -> Result<QueryResult, TxnError> {
        if statement.is_read() {
            // Reads observe maintained views: drain any writes still
            // coalescing in the maintenance batch first.
            self.txn.flush_maintenance()?;
            match self.route_partial(statement, params)? {
                // Partial mode, but the statement binds no leading-key
                // value: the demand-filled view holds only the hot slice,
                // so the rewritten plan would answer incompletely.  Run
                // the baseline (view-free) plan instead.
                PartialRoute::Bypass => Ok(self.executor.execute(statement, params)?),
                PartialRoute::Pinned(pins) => {
                    let result = self.read_through_session(statement, params);
                    if let Some(residency) = &self.residency {
                        for (table, prefix) in &pins {
                            residency.unpin(table, prefix);
                        }
                    }
                    result
                }
            }
        } else {
            self.txn.execute_write(statement, params)
        }
    }

    fn read_through_session(
        &self,
        statement: &Statement,
        params: &[Value],
    ) -> Result<QueryResult, TxnError> {
        match self.session.execute_statement(statement, params) {
            // Graceful degradation: a view left permanently dirty (a
            // transaction that crashed before unmarking) starves the
            // rewritten plan's scan restarts.  Rather than failing the
            // read, answer it through the baseline (view-free) plan —
            // base tables never carry dirty markers — and count the
            // fallback on the result.
            Err(QueryError::DirtyReadRetriesExhausted) => {
                let mut result = self.executor.execute(statement, params)?;
                result.dirty_fallbacks = 1;
                self.dirty_fallbacks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Ok(result)
            }
            other => Ok(other?),
        }
    }

    /// Partial-materialization admission for one read: resolves the views
    /// the rewriter routes the statement to, extracts the bound leading-key
    /// value per view, and makes every such key resident (issuing upqueries
    /// for misses) with a reader pin held.  Returns the pins to release
    /// after the read, or [`PartialRoute::Bypass`] when a routed view has no
    /// key binding.  A no-op (empty pin set) without a view budget.
    fn route_partial(
        &self,
        statement: &Statement,
        params: &[Value],
    ) -> Result<PartialRoute, TxnError> {
        let Some(residency) = &self.residency else {
            return Ok(PartialRoute::Pinned(Vec::new()));
        };
        let Statement::Select(select) = statement else {
            return Ok(PartialRoute::Pinned(Vec::new()));
        };
        let mut pins: Vec<(String, String)> = Vec::new();
        for view in self.rewriter.views_for(select) {
            let table = view.table_name();
            let def = self
                .executor
                .catalog()
                .table(&table)
                .ok_or_else(|| QueryError::UnknownTable(table.clone()))?
                .clone();
            let Some(key) = leading_key_binding(select, &def.key[0], params) else {
                residency.count_bypass();
                for (table, prefix) in &pins {
                    residency.unpin(table, prefix);
                }
                return Ok(PartialRoute::Bypass);
            };
            let prefix = ViewResidency::prefix_of_value(&key);
            self.ensure_resident(residency, &view, &def, &prefix, &key)?;
            pins.push((table, prefix));
        }
        Ok(PartialRoute::Pinned(pins))
    }

    /// Spins until `prefix` is resident in `view`'s table, filling it with
    /// an upquery if this caller wins the fill race.  On return a reader pin
    /// is held on the entry.
    fn ensure_resident(
        &self,
        residency: &Arc<ViewResidency>,
        view: &ViewDefinition,
        def: &TableDef,
        prefix: &str,
        key: &Value,
    ) -> Result<(), TxnError> {
        loop {
            match residency.lookup(&def.name, prefix) {
                Lookup::Hit => return Ok(()),
                // Another reader is mid-fill on this key: its install is a
                // short critical section, so spin rather than queueing.
                Lookup::Wait => std::thread::yield_now(),
                Lookup::Fill => {
                    let sql_text = upquery_sql(view, &def.key[0]);
                    match self
                        .upquery_session
                        .execute_sql(&sql_text, &[key.clone(), key.clone()])
                    {
                        Ok(result) => {
                            let rows: Vec<Row> =
                                result.rows.iter().map(Row::unqualified).collect();
                            residency.complete_fill(&self.executor, def, prefix, &rows)?;
                            return Ok(());
                        }
                        Err(e) => {
                            residency.abort_fill(&def.name, prefix);
                            return Err(e.into());
                        }
                    }
                }
            }
        }
    }

    /// Total reads answered through the baseline-plan fallback since this
    /// system was built (see [`SynergySystem::execute`]).
    pub fn dirty_fallbacks(&self) -> u64 {
        self.dirty_fallbacks.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The partial-materialization residency map (`None` without a view
    /// budget).
    pub fn residency(&self) -> Option<&Arc<ViewResidency>> {
        self.residency.as_ref()
    }

    /// A snapshot of the partial-materialization counters and residency
    /// totals (`None` without a view budget).
    pub fn residency_snapshot(&self) -> Option<ResidencySnapshot> {
        self.residency.as_ref().map(|r| r.snapshot())
    }

    /// Flushes writes coalescing in the maintenance batch (no-op without
    /// `with_write_batch`).  Returns the number of view rows touched.
    pub fn flush_maintenance(&self) -> Result<usize, TxnError> {
        self.txn.flush_maintenance()
    }

    /// A snapshot of the maintenance counters (view rows touched, deltas
    /// propagated, batch flushes, coalesced merges).
    pub fn maintenance_stats(&self) -> MaintenanceStatsSnapshot {
        self.txn.maintainer().stats()
    }

    /// Recovers the deployment after a cluster crash
    /// ([`nosql_store::Cluster::crash`]):
    ///
    /// 1. replays the store's WAL back to the acked-synced state
    ///    ([`nosql_store::Cluster::recover`]);
    /// 2. discards writes still coalescing in the maintenance batch (their
    ///    base writes may not have survived);
    /// 3. force-releases hierarchical locks whose leases expired — every
    ///    lock held by a transaction the crash killed, since recovery
    ///    charges more simulated time than a live holder's remaining lease;
    /// 4. repairs the `_dirty` markers of interrupted update transactions:
    ///    a dirty view row whose base row survived is **rolled forward**
    ///    (recomputed from the base tables and unmarked); one whose base
    ///    row is gone is **rolled back** (deleted).  Either way no view row
    ///    outlives its base row and no view stays permanently dirty.
    pub fn recover(&self) -> Result<SynergyRecovery, TxnError> {
        let cluster_report = self.cluster().recover();
        let pending_writes_discarded = self.txn.maintainer().discard_pending();

        let mut locks_reclaimed = 0;
        if self.hierarchical_locking {
            for tree in &self.candidates.trees {
                locks_reclaimed += self
                    .locks
                    .reclaim_expired(&tree.root)
                    .map_err(QueryError::from)?;
            }
        }

        let mut view_rows_rolled_forward = 0;
        let mut view_rows_removed = 0;

        // Partial mode restarts cold: a crash can leave a key's view rows
        // half-synced (some rows' WAL records acked, others lost), and
        // unlike the dirty-marker protocol there is no per-row marker to
        // say which keys were mid-fill.  Wipe every view and view-index
        // row raw and clear residency — the hot set refills on demand.
        if let Some(residency) = &self.residency {
            for view in &self.selection.views {
                view_rows_removed += self.wipe_table_raw(&view.table_name())?;
            }
            for index in &self.selection.view_indexes {
                self.wipe_table_raw(&index.name)?;
            }
            residency.clear();
            return Ok(SynergyRecovery {
                cluster: cluster_report,
                locks_reclaimed,
                view_rows_rolled_forward,
                view_rows_removed,
                pending_writes_discarded,
            });
        }

        for view in &self.selection.views {
            let table = view.table_name();
            let def = self
                .executor
                .catalog()
                .table(&table)
                .ok_or_else(|| QueryError::UnknownTable(table.clone()))?
                .clone();
            let stored = self
                .cluster()
                .scan(&table, nosql_store::ops::Scan::all())
                .map_err(QueryError::from)?;
            for row in stored {
                if row.value(query::FAMILY, query::DIRTY_MARKER) != Some(b"1".as_slice()) {
                    continue;
                }
                let view_row = def.decode_row(&row);
                // The view key is the last relation's primary key: project
                // it out to locate the base row.
                let mut base_key = Row::new();
                let mut complete = true;
                for attribute in &def.key {
                    match view_row.get(attribute) {
                        Some(value) => {
                            base_key.set(attribute.clone(), value.clone());
                        }
                        None => complete = false,
                    }
                }
                if !complete {
                    // A marker-only remnant: the row's data cells did not
                    // survive the crash (only the synced dirty marker did).
                    // It cannot be decoded, so drop it by its raw key.
                    self.cluster()
                        .delete(&table, nosql_store::ops::Delete::row(row.key.to_vec()))
                        .map_err(QueryError::from)?;
                    view_rows_removed += 1;
                    continue;
                }
                let rolled_forward = match self
                    .executor
                    .get_row_by_key(view.last_relation(), &base_key)?
                {
                    // Base row survived: recompute the view row from the
                    // base tables (k−1 ancestor reads) and unmark it.
                    Some(base_row) => {
                        match self.txn.maintainer().construct_insert_tuple(view, &base_row)? {
                            Some(full) => {
                                self.executor.insert_row(&table, &full)?;
                                self.txn.maintainer().unmark_dirty(view, &full)?;
                                true
                            }
                            // An ancestor row is missing: the join no
                            // longer produces this view row.
                            None => false,
                        }
                    }
                    // Base row gone: the interrupted transaction rolls back.
                    None => false,
                };
                if rolled_forward {
                    view_rows_rolled_forward += 1;
                } else {
                    self.executor.delete_row_by_key(&table, &base_key)?;
                    view_rows_removed += 1;
                }
            }
        }

        Ok(SynergyRecovery {
            cluster: cluster_report,
            locks_reclaimed,
            view_rows_rolled_forward,
            view_rows_removed,
            pending_writes_discarded,
        })
    }

    /// Deletes every stored row of `table` by its raw key (markers and
    /// undecodable remnants included); returns the rows removed.
    fn wipe_table_raw(&self, table: &str) -> Result<usize, TxnError> {
        let stored = self
            .cluster()
            .scan(table, nosql_store::ops::Scan::all())
            .map_err(QueryError::from)?;
        let mut removed = 0;
        for row in stored {
            self.cluster()
                .delete(table, nosql_store::ops::Delete::row(row.key.to_vec()))
                .map_err(QueryError::from)?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Renders the delta-operator tree maintaining `view` (EXPLAIN-style,
    /// see [`query::DeltaPlan::render`]).
    pub fn explain_delta_plan(&self, view: &ViewDefinition) -> Result<String, TxnError> {
        Ok(self.txn.maintainer().explain_delta_plan(view)?)
    }

    /// Parses and executes a SQL string.
    pub fn execute_sql(&self, sql_text: &str, params: &[Value]) -> Result<QueryResult, TxnError> {
        // A leading EXPLAIN renders the (view-rewritten) plan tree instead
        // of executing; the session returns it as `plan` rows.
        if sql::strip_explain(sql_text).is_some() {
            return Ok(self.session.execute_sql(sql_text, params)?);
        }
        let statement = sql::parse_statement(sql_text)
            .map_err(|e| TxnError::Unsupported(e.to_string()))?;
        self.execute(&statement, params)
    }

    /// Bulk-loads base rows (offline population; no simulated cost).  Lock
    /// table entries are created for root-relation rows.
    pub fn bulk_load(&self, relation: &str, rows: &[Row]) -> Result<usize, TxnError> {
        let loaded = self.executor.bulk_load_rows(relation, rows)?;
        if self.hierarchical_locking && self.candidates.tree_for_root(relation).is_some() {
            let def = self
                .executor
                .catalog()
                .table_ci(relation)
                .ok_or_else(|| QueryError::UnknownTable(relation.to_string()))?;
            let puts: Vec<nosql_store::ops::Put> = rows
                .iter()
                .map(|row| {
                    nosql_store::ops::Put::new(def.encode_row_key(row)).with(
                        crate::lock::LOCK_FAMILY,
                        crate::lock::LOCK_COLUMN,
                        "0",
                    )
                })
                .collect();
            self.cluster()
                .bulk_load(&crate::lock::lock_table_name(relation), puts)
                .map_err(QueryError::from)?;
        }
        Ok(loaded)
    }

    /// Computes the contents of every selected view from the already loaded
    /// base tables and bulk-loads them (the offline view-population step that
    /// precedes the paper's measurements).  Returns the view rows **and**
    /// estimated bytes written.  With a view budget configured this is a
    /// no-op returning zeros: partial views start empty and fill on demand.
    pub fn materialize_views(&self) -> Result<Materialization, TxnError> {
        let mut total = Materialization::default();
        if self.residency.is_some() {
            return Ok(total);
        }
        for view in &self.selection.views {
            let one = self.materialize_view(view)?;
            total.rows += one.rows;
            total.bytes += one.bytes;
        }
        Ok(total)
    }

    fn materialize_view(&self, view: &ViewDefinition) -> Result<Materialization, TxnError> {
        let table = view.table_name();
        let def = self
            .executor
            .catalog()
            .table(&table)
            .ok_or_else(|| QueryError::UnknownTable(table.clone()))?
            .clone();
        let combined = self.recompute_view_rows(view)?;
        let bytes = combined
            .iter()
            .map(|row| def.estimate_row_bytes(row) as u64)
            .sum();
        self.executor.bulk_load_rows(&table, &combined)?;
        Ok(Materialization {
            rows: combined.len(),
            bytes,
        })
    }

    /// Recomputes a view's contents from its base tables (the full-join
    /// ground truth).  Used by the offline population step and by the
    /// delta-vs-recompute equivalence tests.
    pub fn recompute_view_rows(&self, view: &ViewDefinition) -> Result<Vec<Row>, TxnError> {
        // Load each participating relation into memory once, through the
        // region-parallel scan (serial when the executor runs 1 thread) with
        // the decode fanned out over the same worker count.
        let threads = self.executor.threads();
        let mut relation_rows: BTreeMap<String, Vec<Row>> = BTreeMap::new();
        for relation in &view.relations {
            let def = self
                .executor
                .catalog()
                .table_ci(relation)
                .ok_or_else(|| QueryError::UnknownTable(relation.clone()))?;
            let cursor = self
                .cluster()
                .par_scan_stream(&def.name, nosql_store::ops::Scan::all(), threads)
                .map_err(QueryError::from)?;
            relation_rows.insert(relation.clone(), query::par_decode_rows(def, cursor, threads));
        }

        // Join along the path: parent → child on (pk = fk).
        let mut combined: Vec<Row> = relation_rows[&view.relations[0]].clone();
        for edge in &view.edges {
            let children = &relation_rows[&edge.to];
            // Hash children by their FK tuple.  (`Value` has no `Ord`, and
            // the table is probe-only: output order follows `combined`.)
            let mut by_fk: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new(); // lint-allow(determinism): probe-only
            for child in children {
                let fk: Option<Vec<Value>> =
                    edge.fk.iter().map(|a| child.get(a).cloned()).collect();
                if let Some(fk) = fk {
                    by_fk.entry(fk).or_default().push(child);
                }
            }
            let mut next = Vec::new();
            for row in &combined {
                let pk: Option<Vec<Value>> = edge.pk.iter().map(|a| row.get(a).cloned()).collect();
                let Some(pk) = pk else { continue };
                if let Some(matches) = by_fk.get(&pk) {
                    for child in matches {
                        let mut merged = row.clone();
                        for (k, v) in child.iter() {
                            merged.set(k, v.clone());
                        }
                        next.push(merged);
                    }
                }
            }
            combined = next;
        }
        Ok(combined)
    }

    /// Total stored bytes across every table of this deployment (base,
    /// index, view, view-index, lock) — the quantity behind the paper's
    /// Table III.
    pub fn database_size_bytes(&self) -> u64 {
        self.cluster().metrics().total_bytes()
    }
}

/// The bound value of an equality filter on the view's leading key
/// attribute, if the statement has one.  Attribute names are globally
/// unique across the schema (the baseline transformation relies on this),
/// so matching on the bare column name is unambiguous regardless of
/// qualifier.
fn leading_key_binding(
    select: &sql::SelectStatement,
    lead_key: &str,
    params: &[Value],
) -> Option<Value> {
    for condition in &select.conditions {
        if condition.op != sql::Comparison::Eq
            || !condition.left.column.eq_ignore_ascii_case(lead_key)
        {
            continue;
        }
        match &condition.right {
            sql::Expr::Literal(value) => return Some(value.clone()),
            sql::Expr::Parameter(i) => return params.get(*i).cloned(),
            sql::Expr::Column(_) => {}
        }
    }
    None
}

/// The upquery recomputing one missing view key: the view's defining join,
/// constrained to the missing leading-key range (both parameters bind the
/// same value for a single-key fill).  The planner serves the range with a
/// `key-range` access path on the view's last relation; the plan is cached
/// like any prepared statement, so repeated misses replan nothing.
fn upquery_sql(view: &ViewDefinition, lead_key: &str) -> String {
    format!(
        "{} AND {rel}.{col} >= ? AND {rel}.{col} <= ?",
        view.defining_select(),
        rel = view.last_relation(),
        col = lead_key,
    )
}

/// Builds the physical table definition of a view: columns are the union of
/// the participating relations' attributes (typed from the base catalog),
/// the key is the key of the last relation.
fn view_table_def(view: &ViewDefinition, schema: &Schema, base_catalog: &Catalog) -> TableDef {
    let mut columns: Vec<(String, ColumnType)> = Vec::new();
    for attribute in view.attributes(schema) {
        let ty = column_type_from_base(view, &attribute, base_catalog);
        columns.push((attribute, ty));
    }
    TableDef::new(
        view.table_name(),
        columns,
        view.key_attributes(schema),
        TableKind::View,
    )
}

/// Builds the physical table definition of a view-index: a covered index
/// over all view columns, keyed on `indexed_on ++ view key`.
fn view_index_table_def(
    index: &ViewIndexDefinition,
    selection: &SelectionOutcome,
    schema: &Schema,
    base_catalog: &Catalog,
) -> TableDef {
    let view = selection
        .view_by_table_name(&index.view)
        // lint-allow(panic-freedom): selection validated to cover every view index it emits
        .expect("view-index references a selected view");
    let mut columns: Vec<(String, ColumnType)> = Vec::new();
    for attribute in view.attributes(schema) {
        let ty = column_type_from_base(view, &attribute, base_catalog);
        columns.push((attribute, ty));
    }
    let mut key = index.indexed_on.clone();
    for k in view.key_attributes(schema) {
        if !key.contains(&k) {
            key.push(k);
        }
    }
    TableDef::new(
        index.name.clone(),
        columns,
        key,
        TableKind::Index {
            of: index.view.clone(),
        },
    )
}

fn column_type_from_base(view: &ViewDefinition, attribute: &str, catalog: &Catalog) -> ColumnType {
    for relation in &view.relations {
        if let Some(def) = catalog.table_ci(relation) {
            if let Some(ty) = def.column_type(attribute) {
                return ty;
            }
        }
    }
    ColumnType::Str
}
