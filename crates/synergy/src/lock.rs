//! The hierarchical locking mechanism (paper §VIII-A), with lock *leases*
//! for crash recovery.
//!
//! One lock table is created per root relation.  The lock-table row key has
//! the same attributes as the root relation's key, and a single boolean
//! column records whether the lock is held.  To update a row of any relation
//! in a rooted tree, the transaction acquires the lock on the key of the
//! associated row of the *root* relation — and because every relation
//! belongs to at most one rooted tree, a single lock suffices per write
//! transaction.  Locks are implemented with HBase `checkAndPut`, exactly as
//! in the paper's §IX-C locking-overhead experiment.
//!
//! Every acquisition additionally records a **lease expiry** (simulated
//! time).  A client that crashes mid-transaction leaves its lock row at
//! `held = 1` forever; the lease bounds the damage.  Contending writers
//! never steal a held lock — with a single shared simulated clock, their
//! own spinning advances time and could expire a perfectly live holder —
//! so the lease is purely a *recovery fencing* mechanism:
//! [`LockManager::reclaim_expired`], run by Synergy crash recovery, first
//! waits out the latest outstanding lease (charging the simulated clock,
//! the fencing interval that guarantees no zombie holder can still act)
//! and then force-releases every expired lock in one sweep.

use nosql_store::ops::{CheckAndPut, Expectation, Put, Scan};
use nosql_store::{Cluster, StoreResult, TableSchema};
use simclock::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Column family used by lock tables.
pub const LOCK_FAMILY: &str = "l";
/// Column storing the boolean "lock in use" flag.
pub const LOCK_COLUMN: &str = "held";
/// Column storing the lease expiry (simulated nanoseconds since the epoch,
/// decimal).  Present on every row written by [`LockManager::acquire`].
pub const LOCK_EXPIRY_COLUMN: &str = "exp";

/// Default lock-lease length.  Healthy transactions hold their lock for
/// milliseconds of simulated time (a handful of store round trips, plus at
/// worst the retry policy's total fault backoff), so one simulated second
/// comfortably bounds any live holder; recovery waits it out (the fencing
/// interval) before reclaiming a crashed holder's lock.
pub const DEFAULT_LOCK_LEASE: SimDuration = SimDuration::from_secs(1);

/// Name of the lock table for a root relation, e.g. `L_Customer`.
pub fn lock_table_name(root: &str) -> String {
    format!("L_{root}")
}

/// Manages the per-root lock tables.
///
/// Two fencing mechanisms compose here.  The lock *lease* fences in time: a
/// crashed holder's lock becomes reclaimable once its lease has been waited
/// out.  The region *epoch* (see `nosql_store::Cluster::region_epoch_for`)
/// fences in space: when the lock table's region fails over to another
/// server, the epoch bumps, and the old primary can no longer serve writes
/// for it.  A held lock survives a region failover — the `checkAndPut`
/// release simply lands on the new primary — and the manager counts those
/// survivals so tests and benchmarks can observe the composition working.
#[derive(Clone)]
pub struct LockManager {
    cluster: Cluster,
    /// How many acquisition attempts before giving up (a failed transaction).
    max_attempts: usize,
    /// Lease length written into every acquired lock row.
    lease: SimDuration,
    /// Locks released under a different region epoch than they were acquired
    /// under — i.e. held straight through a region failover.  Shared across
    /// clones of the manager.
    survivals: Arc<AtomicU64>,
}

/// A held hierarchical lock.  Release it with [`LockManager::release`]; the
/// guard also releases on drop as a safety net (best effort).
pub struct LockGuard {
    cluster: Cluster,
    table: String,
    key: String,
    /// Epoch of the lock row's region at acquisition time (0 when region
    /// replication is off).  Compared at release to detect a failover the
    /// lock lived through.
    region_epoch: u64,
    released: bool,
}

impl LockGuard {
    /// The lock-table row key this guard holds.
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        if !self.released {
            let release = Put::new(self.key.clone())
                .with(LOCK_FAMILY, LOCK_COLUMN, "0")
                .with(LOCK_FAMILY, LOCK_EXPIRY_COLUMN, "0");
            let _ = self.cluster.check_and_put(
                &self.table,
                CheckAndPut::new(
                    self.key.clone(),
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Equals(b"1".to_vec()),
                    release,
                ),
            );
        }
    }
}

impl LockManager {
    /// Creates a lock manager over `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        LockManager {
            cluster,
            max_attempts: 10_000,
            lease: DEFAULT_LOCK_LEASE,
            survivals: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of locks that were released under a different region epoch
    /// than they were acquired under — i.e. held straight through a region
    /// failover.  Always 0 when region replication is off.
    pub fn failover_survivals(&self) -> u64 {
        self.survivals.load(Ordering::Relaxed)
    }

    /// Overrides the maximum number of acquisition attempts (tests use small
    /// values to exercise the failure path).
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Overrides the lock-lease length (default [`DEFAULT_LOCK_LEASE`]).
    /// Tests use short leases to exercise expiry without advancing the
    /// simulated clock far.
    pub fn with_lease(mut self, lease: SimDuration) -> Self {
        self.lease = lease;
        self
    }

    /// The configured lock-lease length.
    pub fn lease(&self) -> SimDuration {
        self.lease
    }

    /// Creates the lock table for a root relation (idempotent).
    pub fn create_lock_table(&self, root: &str) -> StoreResult<()> {
        let name = lock_table_name(root);
        if !self.cluster.table_exists(&name) {
            self.cluster
                .create_table(TableSchema::new(name).with_family(LOCK_FAMILY))?;
        }
        Ok(())
    }

    /// Creates a lock-table entry for a root row ("a lock table entry is
    /// created when a tuple is inserted into the root table", §VIII-A).
    pub fn ensure_entry(&self, root: &str, key: &str) -> StoreResult<()> {
        let table = lock_table_name(root);
        self.cluster.put(
            &table,
            Put::new(key.to_string()).with(LOCK_FAMILY, LOCK_COLUMN, "0"),
        )
    }

    /// The `held = 1` put for an acquisition at the current simulated time,
    /// stamping the lease expiry.
    fn held_put(&self, key: &str) -> Put {
        let expiry = self.cluster.clock().now() + self.lease;
        Put::new(key.to_string())
            .with(LOCK_FAMILY, LOCK_COLUMN, "1")
            .with(LOCK_FAMILY, LOCK_EXPIRY_COLUMN, expiry.as_nanos().to_string())
    }

    /// Acquires the hierarchical lock for root row `key`, spinning (with a
    /// simulated backoff charge) until it succeeds or `max_attempts` is
    /// exhausted.  A held lock is never stolen, whatever its lease says —
    /// only [`LockManager::reclaim_expired`] (crash recovery) breaks one.
    pub fn acquire(&self, root: &str, key: &str) -> StoreResult<Option<LockGuard>> {
        let table = lock_table_name(root);
        for attempt in 0..self.max_attempts {
            let put = self.held_put(key);
            // Fast path: the entry exists and is free.
            let acquired = self.cluster.check_and_put(
                &table,
                CheckAndPut::new(
                    key.to_string(),
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Equals(b"0".to_vec()),
                    put.clone(),
                ),
            )?;
            if acquired {
                return Ok(Some(self.guard(&table, key)));
            }
            // The entry may not exist yet (root row never inserted through
            // Synergy); create-and-acquire atomically.
            let acquired = self.cluster.check_and_put(
                &table,
                CheckAndPut::new(
                    key.to_string(),
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Absent,
                    put,
                ),
            )?;
            if acquired {
                return Ok(Some(self.guard(&table, key)));
            }
            // Contended: back off.  The charge models the client-side wait;
            // the yield lets the holder (another thread) make progress.
            self.cluster.clock().charge(SimDuration::from_micros(200));
            if attempt % 16 == 15 {
                std::thread::yield_now();
            }
        }
        Ok(None)
    }

    /// Releases a previously acquired lock.  If the lock row's region failed
    /// over while the lock was held (its epoch moved on), the release still
    /// succeeds — `checkAndPut` routes to the new primary — and the survival
    /// is counted in [`LockManager::failover_survivals`].
    pub fn release(&self, mut guard: LockGuard) -> StoreResult<()> {
        let release = Put::new(guard.key.clone())
            .with(LOCK_FAMILY, LOCK_COLUMN, "0")
            .with(LOCK_FAMILY, LOCK_EXPIRY_COLUMN, "0");
        self.cluster.check_and_put(
            &guard.table,
            CheckAndPut::new(
                guard.key.clone(),
                LOCK_FAMILY,
                LOCK_COLUMN,
                Expectation::Equals(b"1".to_vec()),
                release,
            ),
        )?;
        if self.region_epoch(&guard.table, &guard.key) != guard.region_epoch {
            self.survivals.fetch_add(1, Ordering::Relaxed);
        }
        guard.released = true;
        Ok(())
    }

    /// Force-releases every held lock in `root`'s lock table, first
    /// *waiting out* the latest outstanding lease by charging the simulated
    /// clock — the fencing interval after which no holder, dead or alive,
    /// can still act on its lock.  Run by Synergy crash recovery, where
    /// every pre-crash holder is known dead; the wait makes the sweep safe
    /// even against a holder that somehow survived.  Returns the number of
    /// locks reclaimed.
    pub fn reclaim_expired(&self, root: &str) -> StoreResult<usize> {
        let table = lock_table_name(root);
        if !self.cluster.table_exists(&table) {
            return Ok(0);
        }
        // Collect the held lock rows and the latest lease expiry among them.
        let mut held: Vec<String> = Vec::new();
        let mut latest_expiry: u64 = 0;
        for row in self.cluster.scan(&table, Scan::all())? {
            if row.value(LOCK_FAMILY, LOCK_COLUMN) != Some(b"1".as_slice()) {
                continue;
            }
            let expiry = row
                .value(LOCK_FAMILY, LOCK_EXPIRY_COLUMN)
                .and_then(|bytes| std::str::from_utf8(bytes).ok())
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0);
            latest_expiry = latest_expiry.max(expiry);
            held.push(row.key_str());
        }
        if held.is_empty() {
            return Ok(0);
        }
        // Fencing: wait until every outstanding lease is expired.
        let now = self.cluster.clock().now().as_nanos();
        if latest_expiry > now {
            self.cluster
                .clock()
                .charge(SimDuration::from_nanos(latest_expiry - now));
        }
        let mut reclaimed = 0;
        for key in held {
            let release = Put::new(key.clone())
                .with(LOCK_FAMILY, LOCK_COLUMN, "0")
                .with(LOCK_FAMILY, LOCK_EXPIRY_COLUMN, "0");
            if self.cluster.check_and_put(
                &table,
                CheckAndPut::new(
                    key,
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Equals(b"1".to_vec()),
                    release,
                ),
            )? {
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }

    /// True if the lock for `key` is currently held.
    pub fn is_held(&self, root: &str, key: &str) -> StoreResult<bool> {
        let table = lock_table_name(root);
        Ok(self
            .cluster
            .get(&table, nosql_store::ops::Get::new(key.to_string()))?
            .and_then(|row| row.value(LOCK_FAMILY, LOCK_COLUMN).map(|v| v == b"1"))
            .unwrap_or(false))
    }

    /// Current replication epoch of the region holding `key`'s lock row
    /// (0 when replication is off or the table is unknown — both sides of a
    /// survival comparison then read 0 and no survival is counted).
    fn region_epoch(&self, table: &str, key: &str) -> u64 {
        self.cluster
            .region_epoch_for(table, key.as_bytes())
            .map(|(_, epoch)| epoch)
            .unwrap_or(0)
    }

    fn guard(&self, table: &str, key: &str) -> LockGuard {
        LockGuard {
            cluster: self.cluster.clone(),
            table: table.to_string(),
            key: key.to_string(),
            region_epoch: self.region_epoch(table, key),
            released: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosql_store::ClusterConfig;

    fn manager() -> LockManager {
        let cluster = Cluster::new(ClusterConfig::default());
        let m = LockManager::new(cluster);
        m.create_lock_table("Customer").unwrap();
        m
    }

    #[test]
    fn acquire_and_release_round_trip() {
        let m = manager();
        m.ensure_entry("Customer", "42").unwrap();
        let guard = m.acquire("Customer", "42").unwrap().unwrap();
        assert!(m.is_held("Customer", "42").unwrap());
        m.release(guard).unwrap();
        assert!(!m.is_held("Customer", "42").unwrap());
    }

    #[test]
    fn acquire_creates_missing_entries() {
        let m = manager();
        let guard = m.acquire("Customer", "never-inserted").unwrap().unwrap();
        assert!(m.is_held("Customer", "never-inserted").unwrap());
        m.release(guard).unwrap();
    }

    #[test]
    fn contended_lock_times_out_after_max_attempts() {
        let m = manager().with_max_attempts(3);
        let _held = m.acquire("Customer", "7").unwrap().unwrap();
        let second = m.acquire("Customer", "7").unwrap();
        assert!(second.is_none());
    }

    #[test]
    fn dropping_a_guard_releases_the_lock() {
        let m = manager();
        {
            let _guard = m.acquire("Customer", "9").unwrap().unwrap();
            assert!(m.is_held("Customer", "9").unwrap());
        }
        assert!(!m.is_held("Customer", "9").unwrap());
    }

    #[test]
    fn concurrent_writers_serialize_on_the_same_root_key() {
        let m = manager();
        m.ensure_entry("Customer", "1").unwrap();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let guard = m.acquire("Customer", "1").unwrap().unwrap();
                        // Critical section: read-modify-write a shared counter
                        // non-atomically; correctness requires mutual exclusion.
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        std::thread::yield_now();
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        m.release(guard).unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 80);
    }

    #[test]
    fn distinct_root_keys_do_not_contend() {
        let m = manager();
        let g1 = m.acquire("Customer", "1").unwrap().unwrap();
        let g2 = m.acquire("Customer", "2").unwrap().unwrap();
        m.release(g1).unwrap();
        m.release(g2).unwrap();
    }

    #[test]
    fn orphaned_locks_block_contenders_but_are_never_stolen() {
        let m = manager();
        let orphan = m.acquire("Customer", "12").unwrap().unwrap();
        // Simulate the holder crashing: the guard is forgotten, the lock
        // row stays held.
        std::mem::forget(orphan);
        assert!(m.is_held("Customer", "12").unwrap());
        // Contenders spin out without stealing, however long they wait.
        let blocked = m.clone().with_max_attempts(3).acquire("Customer", "12").unwrap();
        assert!(blocked.is_none());
        assert!(m.is_held("Customer", "12").unwrap());
    }

    #[test]
    fn reclaim_waits_out_the_lease_and_frees_orphaned_locks() {
        let m = manager().with_lease(SimDuration::from_millis(250));
        let orphan = m.acquire("Customer", "a").unwrap().unwrap();
        std::mem::forget(orphan);
        let before = m.cluster.clock().now();
        assert_eq!(m.reclaim_expired("Customer").unwrap(), 1);
        // The sweep charged the fencing wait: most of the orphan's 250ms
        // lease was still outstanding (acquisition itself costs only a few
        // simulated milliseconds).
        assert!(m.cluster.clock().now() - before >= SimDuration::from_millis(200));
        assert!(!m.is_held("Customer", "a").unwrap());
        // The lock is usable again, and an empty sweep is a no-op.
        let again = m.acquire("Customer", "a").unwrap().unwrap();
        m.release(again).unwrap();
        assert_eq!(m.reclaim_expired("Customer").unwrap(), 0);
    }

    #[test]
    fn lock_survives_region_failover_with_bumped_epoch() {
        use nosql_store::FaultPlan;
        // Lock table's region lands on server 0 (first table created);
        // the first scheduled crash also hits server 0, so the lock row's
        // region fails over to server 1 while the lock is held.
        let cluster = Cluster::new(ClusterConfig {
            region_servers: 2,
            replication_factor: 2,
            fault_plan: Some(FaultPlan::new(11).with_crashes(
                vec![SimDuration::from_millis(30)],
                SimDuration::from_millis(50),
            )),
            ..ClusterConfig::default()
        });
        let m = LockManager::new(cluster);
        m.create_lock_table("Customer").unwrap();
        m.ensure_entry("Customer", "42").unwrap();

        let guard = m.acquire("Customer", "42").unwrap().unwrap();
        assert_eq!(guard.region_epoch, 0, "acquired before any failover");
        // Hold the lock across the scheduled crash; the release's
        // checkAndPut advances faults, fails the region over to server 1,
        // and still lands — the lease fences time, the epoch fences space,
        // and neither invalidates a healthy holder.
        m.cluster.clock().charge(SimDuration::from_millis(40));
        m.release(guard).unwrap();

        let stats = m.cluster.replication_stats();
        assert!(stats.failovers >= 1, "no failover fired: {stats:?}");
        assert_eq!(m.failover_survivals(), 1);
        assert!(!m.is_held("Customer", "42").unwrap());
        // A lock without replication enabled never counts survivals.
        let plain = manager();
        let g = plain.acquire("Customer", "1").unwrap().unwrap();
        plain.release(g).unwrap();
        assert_eq!(plain.failover_survivals(), 0);
    }

    #[test]
    fn lock_acquisition_charges_simulated_time() {
        let m = manager();
        let clock = {
            // Reach the clock through a fresh cluster handle used by the
            // manager itself.
            let guard = m.acquire("Customer", "5").unwrap().unwrap();
            let clock = guard.cluster.clock().clone();
            m.release(guard).unwrap();
            clock
        };
        let before = clock.now();
        let guard = m.acquire("Customer", "5").unwrap().unwrap();
        m.release(guard).unwrap();
        let elapsed = clock.now() - before;
        assert!(elapsed > SimDuration::ZERO);
    }
}
