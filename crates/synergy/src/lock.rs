//! The hierarchical locking mechanism (paper §VIII-A).
//!
//! One lock table is created per root relation.  The lock-table row key has
//! the same attributes as the root relation's key, and a single boolean
//! column records whether the lock is held.  To update a row of any relation
//! in a rooted tree, the transaction acquires the lock on the key of the
//! associated row of the *root* relation — and because every relation
//! belongs to at most one rooted tree, a single lock suffices per write
//! transaction.  Locks are implemented with HBase `checkAndPut`, exactly as
//! in the paper's §IX-C locking-overhead experiment.

use nosql_store::ops::{CheckAndPut, Expectation, Put};
use nosql_store::{Cluster, StoreResult, TableSchema};
use simclock::SimDuration;

/// Column family used by lock tables.
pub const LOCK_FAMILY: &str = "l";
/// Column storing the boolean "lock in use" flag.
pub const LOCK_COLUMN: &str = "held";

/// Name of the lock table for a root relation, e.g. `L_Customer`.
pub fn lock_table_name(root: &str) -> String {
    format!("L_{root}")
}

/// Manages the per-root lock tables.
#[derive(Clone)]
pub struct LockManager {
    cluster: Cluster,
    /// How many acquisition attempts before giving up (a failed transaction).
    max_attempts: usize,
}

/// A held hierarchical lock.  Release it with [`LockManager::release`]; the
/// guard also releases on drop as a safety net (best effort).
pub struct LockGuard {
    cluster: Cluster,
    table: String,
    key: String,
    released: bool,
}

impl LockGuard {
    /// The lock-table row key this guard holds.
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        if !self.released {
            let release = Put::new(self.key.clone()).with(LOCK_FAMILY, LOCK_COLUMN, "0");
            let _ = self.cluster.check_and_put(
                &self.table,
                CheckAndPut::new(
                    self.key.clone(),
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Equals(b"1".to_vec()),
                    release,
                ),
            );
        }
    }
}

impl LockManager {
    /// Creates a lock manager over `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        LockManager {
            cluster,
            max_attempts: 10_000,
        }
    }

    /// Overrides the maximum number of acquisition attempts (tests use small
    /// values to exercise the failure path).
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Creates the lock table for a root relation (idempotent).
    pub fn create_lock_table(&self, root: &str) -> StoreResult<()> {
        let name = lock_table_name(root);
        if !self.cluster.table_exists(&name) {
            self.cluster
                .create_table(TableSchema::new(name).with_family(LOCK_FAMILY))?;
        }
        Ok(())
    }

    /// Creates a lock-table entry for a root row ("a lock table entry is
    /// created when a tuple is inserted into the root table", §VIII-A).
    pub fn ensure_entry(&self, root: &str, key: &str) -> StoreResult<()> {
        let table = lock_table_name(root);
        self.cluster.put(
            &table,
            Put::new(key.to_string()).with(LOCK_FAMILY, LOCK_COLUMN, "0"),
        )
    }

    /// Acquires the hierarchical lock for root row `key`, spinning (with a
    /// simulated backoff charge) until it succeeds or `max_attempts` is
    /// exhausted.
    pub fn acquire(&self, root: &str, key: &str) -> StoreResult<Option<LockGuard>> {
        let table = lock_table_name(root);
        for attempt in 0..self.max_attempts {
            let put = Put::new(key.to_string()).with(LOCK_FAMILY, LOCK_COLUMN, "1");
            // Fast path: the entry exists and is free.
            let acquired = self.cluster.check_and_put(
                &table,
                CheckAndPut::new(
                    key.to_string(),
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Equals(b"0".to_vec()),
                    put.clone(),
                ),
            )?;
            if acquired {
                return Ok(Some(self.guard(&table, key)));
            }
            // The entry may not exist yet (root row never inserted through
            // Synergy); create-and-acquire atomically.
            let acquired = self.cluster.check_and_put(
                &table,
                CheckAndPut::new(
                    key.to_string(),
                    LOCK_FAMILY,
                    LOCK_COLUMN,
                    Expectation::Absent,
                    put,
                ),
            )?;
            if acquired {
                return Ok(Some(self.guard(&table, key)));
            }
            // Contended: back off.  The charge models the client-side wait;
            // the yield lets the holder (another thread) make progress.
            self.cluster.clock().charge(SimDuration::from_micros(200));
            if attempt % 16 == 15 {
                std::thread::yield_now();
            }
        }
        Ok(None)
    }

    /// Releases a previously acquired lock.
    pub fn release(&self, mut guard: LockGuard) -> StoreResult<()> {
        let release = Put::new(guard.key.clone()).with(LOCK_FAMILY, LOCK_COLUMN, "0");
        self.cluster.check_and_put(
            &guard.table,
            CheckAndPut::new(
                guard.key.clone(),
                LOCK_FAMILY,
                LOCK_COLUMN,
                Expectation::Equals(b"1".to_vec()),
                release,
            ),
        )?;
        guard.released = true;
        Ok(())
    }

    /// True if the lock for `key` is currently held.
    pub fn is_held(&self, root: &str, key: &str) -> StoreResult<bool> {
        let table = lock_table_name(root);
        Ok(self
            .cluster
            .get(&table, nosql_store::ops::Get::new(key.to_string()))?
            .and_then(|row| row.value(LOCK_FAMILY, LOCK_COLUMN).map(|v| v == b"1"))
            .unwrap_or(false))
    }

    fn guard(&self, table: &str, key: &str) -> LockGuard {
        LockGuard {
            cluster: self.cluster.clone(),
            table: table.to_string(),
            key: key.to_string(),
            released: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosql_store::ClusterConfig;

    fn manager() -> LockManager {
        let cluster = Cluster::new(ClusterConfig::default());
        let m = LockManager::new(cluster);
        m.create_lock_table("Customer").unwrap();
        m
    }

    #[test]
    fn acquire_and_release_round_trip() {
        let m = manager();
        m.ensure_entry("Customer", "42").unwrap();
        let guard = m.acquire("Customer", "42").unwrap().unwrap();
        assert!(m.is_held("Customer", "42").unwrap());
        m.release(guard).unwrap();
        assert!(!m.is_held("Customer", "42").unwrap());
    }

    #[test]
    fn acquire_creates_missing_entries() {
        let m = manager();
        let guard = m.acquire("Customer", "never-inserted").unwrap().unwrap();
        assert!(m.is_held("Customer", "never-inserted").unwrap());
        m.release(guard).unwrap();
    }

    #[test]
    fn contended_lock_times_out_after_max_attempts() {
        let m = manager().with_max_attempts(3);
        let _held = m.acquire("Customer", "7").unwrap().unwrap();
        let second = m.acquire("Customer", "7").unwrap();
        assert!(second.is_none());
    }

    #[test]
    fn dropping_a_guard_releases_the_lock() {
        let m = manager();
        {
            let _guard = m.acquire("Customer", "9").unwrap().unwrap();
            assert!(m.is_held("Customer", "9").unwrap());
        }
        assert!(!m.is_held("Customer", "9").unwrap());
    }

    #[test]
    fn concurrent_writers_serialize_on_the_same_root_key() {
        let m = manager();
        m.ensure_entry("Customer", "1").unwrap();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        let guard = m.acquire("Customer", "1").unwrap().unwrap();
                        // Critical section: read-modify-write a shared counter
                        // non-atomically; correctness requires mutual exclusion.
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        std::thread::yield_now();
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        m.release(guard).unwrap();
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 80);
    }

    #[test]
    fn distinct_root_keys_do_not_contend() {
        let m = manager();
        let g1 = m.acquire("Customer", "1").unwrap().unwrap();
        let g2 = m.acquire("Customer", "2").unwrap().unwrap();
        m.release(g1).unwrap();
        m.release(g2).unwrap();
    }

    #[test]
    fn lock_acquisition_charges_simulated_time() {
        let m = manager();
        let clock = {
            // Reach the clock through a fresh cluster handle used by the
            // manager itself.
            let guard = m.acquire("Customer", "5").unwrap().unwrap();
            let clock = guard.cluster.clock().clone();
            m.release(guard).unwrap();
            clock
        };
        let before = clock.now();
        let guard = m.acquire("Customer", "5").unwrap().unwrap();
        m.release(guard).unwrap();
        let elapsed = clock.now() - before;
        assert!(elapsed > SimDuration::ZERO);
    }
}
