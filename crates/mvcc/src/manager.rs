//! The transaction manager: ids, snapshots, conflict detection, costs.

use nosql_store::{Cluster, Timestamp};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of an MVCC transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// A transaction in flight: its snapshot and accumulated write set.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Transaction id.
    pub id: TxId,
    /// Snapshot timestamp: reads see only versions at or below this.
    pub snapshot: Timestamp,
    /// Keys written so far, as `(table, row key)` pairs.
    pub write_set: BTreeSet<(String, String)>,
}

impl Transaction {
    /// Records a write so commit-time conflict detection can see it.
    pub fn record_write(&mut self, table: impl Into<String>, row_key: impl Into<String>) {
        self.write_set.insert((table.into(), row_key.into()));
    }
}

/// Why a commit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// Another transaction that committed after this transaction's snapshot
    /// wrote an overlapping key (first committer wins).
    WriteConflict {
        /// The conflicting `(table, row key)`.
        key: (String, String),
    },
    /// The transaction id is unknown (already committed or aborted).
    UnknownTransaction(TxId),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::WriteConflict { key } => {
                write!(f, "write-write conflict on {}/{}", key.0, key.1)
            }
            CommitError::UnknownTransaction(id) => write!(f, "unknown transaction {}", id.0),
        }
    }
}

impl std::error::Error for CommitError {}

#[derive(Debug, Default)]
struct ManagerState {
    /// Snapshots of transactions still in flight.
    active: BTreeMap<u64, Timestamp>,
    /// Write sets of committed transactions, keyed by commit timestamp.
    committed: BTreeMap<Timestamp, BTreeSet<(String, String)>>,
}

/// The Tephra-like transaction server.
///
/// Cloning shares the underlying state (all clients talk to the same
/// server).  Every begin and commit charges the transaction-server round
/// trips from the cluster's cost model into the shared clock; reads executed
/// under a transaction charge per-cell version-filtering via
/// [`TransactionManager::charge_version_filtering`].
#[derive(Clone)]
pub struct TransactionManager {
    cluster: Cluster,
    next_id: Arc<AtomicU64>,
    state: Arc<Mutex<ManagerState>>,
}

impl TransactionManager {
    /// Creates a transaction manager charging costs through `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        TransactionManager {
            cluster,
            next_id: Arc::new(AtomicU64::new(1)),
            state: Arc::new(Mutex::new(ManagerState::default())),
        }
    }

    /// The cluster this manager charges costs through.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Begins a transaction: one transaction-server round trip, returns a
    /// handle carrying a fresh snapshot.
    pub fn begin(&self) -> Transaction {
        let model = self.cluster.cost_model().clone();
        self.cluster.clock().charge(model.mvcc_begin);
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let snapshot = self.cluster.next_timestamp();
        self.state.lock().active.insert(id, snapshot);
        Transaction {
            id: TxId(id),
            snapshot,
            write_set: BTreeSet::new(),
        }
    }

    /// Charges the cost of filtering `cells` cell versions against a
    /// snapshot.  Callers invoke this after executing a statement's reads,
    /// passing the number of cells the statement touched.
    pub fn charge_version_filtering(&self, cells: u64) {
        let cost = self.cluster.cost_model().mvcc_filter_cost(cells);
        self.cluster.clock().charge(cost);
    }

    /// Commits a transaction: one transaction-server round trip including
    /// conflict detection (first committer wins) and commit-record
    /// persistence.
    pub fn commit(&self, tx: Transaction) -> Result<Timestamp, CommitError> {
        let model = self.cluster.cost_model().clone();
        self.cluster.clock().charge(model.mvcc_commit);
        let mut state = self.state.lock();
        if state.active.remove(&tx.id.0).is_none() {
            return Err(CommitError::UnknownTransaction(tx.id));
        }
        // Detect overlap with any write set committed after our snapshot.
        for (commit_ts, write_set) in state.committed.range((tx.snapshot + 1)..) {
            let _ = commit_ts;
            if let Some(key) = write_set.intersection(&tx.write_set).next() {
                return Err(CommitError::WriteConflict { key: key.clone() });
            }
        }
        let commit_ts = self.cluster.next_timestamp();
        if !tx.write_set.is_empty() {
            state.committed.insert(commit_ts, tx.write_set);
        }
        Self::prune(&mut state);
        Ok(commit_ts)
    }

    /// Aborts a transaction: its writes are forgotten (the layered executor
    /// only applies writes after a successful commit, mirroring Tephra's
    /// client-buffered writes).
    pub fn abort(&self, tx: Transaction) {
        self.state.lock().active.remove(&tx.id.0);
    }

    /// Number of transactions currently in flight.
    pub fn active_count(&self) -> usize {
        self.state.lock().active.len()
    }

    /// Number of committed write sets currently retained for conflict
    /// detection.
    pub fn retained_write_sets(&self) -> usize {
        self.state.lock().committed.len()
    }

    /// Drops committed write sets older than every active snapshot — they can
    /// no longer conflict with anything.
    fn prune(state: &mut ManagerState) {
        let oldest_active = state.active.values().min().copied();
        match oldest_active {
            Some(oldest) => state.committed.retain(|ts, _| *ts > oldest),
            None => state.committed.clear(),
        }
        // Hard cap as a backstop so the retained history cannot grow without
        // bound under a pathological workload.
        const MAX_RETAINED: usize = 10_000;
        while state.committed.len() > MAX_RETAINED {
            let first = *state.committed.keys().next().expect("non-empty");
            state.committed.remove(&first);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nosql_store::ClusterConfig;
    use simclock::SimDuration;

    fn manager() -> TransactionManager {
        TransactionManager::new(Cluster::new(ClusterConfig::default()))
    }

    #[test]
    fn begin_and_commit_charge_the_tephra_overhead() {
        let m = manager();
        let clock = m.cluster().clock().clone();
        let start = clock.now();
        let tx = m.begin();
        m.commit(tx).unwrap();
        let elapsed = clock.now() - start;
        let expected = m.cluster().cost_model().mvcc_overhead();
        assert!(elapsed >= expected);
        // The paper measures this overhead at 800-900 ms per statement.
        assert!(elapsed >= SimDuration::from_millis(800));
        assert!(elapsed <= SimDuration::from_millis(950));
    }

    #[test]
    fn non_overlapping_writes_both_commit() {
        let m = manager();
        let mut t1 = m.begin();
        let mut t2 = m.begin();
        t1.record_write("Orders", "1");
        t2.record_write("Orders", "2");
        m.commit(t1).unwrap();
        m.commit(t2).unwrap();
    }

    #[test]
    fn overlapping_write_after_snapshot_conflicts() {
        let m = manager();
        let mut t1 = m.begin();
        let mut t2 = m.begin();
        t1.record_write("Orders", "42");
        t2.record_write("Orders", "42");
        m.commit(t1).unwrap();
        let err = m.commit(t2).unwrap_err();
        assert!(matches!(err, CommitError::WriteConflict { .. }));
    }

    #[test]
    fn writes_committed_before_snapshot_do_not_conflict() {
        let m = manager();
        let mut t1 = m.begin();
        t1.record_write("Orders", "42");
        m.commit(t1).unwrap();
        // t2 begins after t1 committed, so its snapshot already covers t1.
        let mut t2 = m.begin();
        t2.record_write("Orders", "42");
        m.commit(t2).unwrap();
    }

    #[test]
    fn aborted_transactions_do_not_conflict() {
        let m = manager();
        let mut t1 = m.begin();
        let mut t2 = m.begin();
        t1.record_write("Item", "7");
        t2.record_write("Item", "7");
        m.abort(t1);
        m.commit(t2).unwrap();
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn double_commit_is_rejected() {
        let m = manager();
        let tx = m.begin();
        let duplicate = tx.clone();
        m.commit(tx).unwrap();
        assert!(matches!(
            m.commit(duplicate),
            Err(CommitError::UnknownTransaction(_))
        ));
    }

    #[test]
    fn read_only_transactions_leave_no_retained_state() {
        let m = manager();
        for _ in 0..10 {
            let tx = m.begin();
            m.commit(tx).unwrap();
        }
        assert_eq!(m.retained_write_sets(), 0);
    }

    #[test]
    fn committed_history_is_pruned_once_snapshots_advance() {
        let m = manager();
        for i in 0..50 {
            let mut tx = m.begin();
            tx.record_write("Orders", format!("{i}"));
            m.commit(tx).unwrap();
        }
        // No active transactions remain, so nothing needs to be retained.
        assert_eq!(m.retained_write_sets(), 0);
    }

    #[test]
    fn version_filtering_charges_per_cell() {
        let m = manager();
        let clock = m.cluster().clock().clone();
        let before = clock.now();
        m.charge_version_filtering(10_000);
        assert!(clock.now() > before);
    }

    #[test]
    fn concurrent_transactions_from_multiple_threads() {
        let m = manager();
        let conflicts = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = m.clone();
                let conflicts = &conflicts;
                s.spawn(move || {
                    for i in 0..50 {
                        let mut tx = m.begin();
                        // Threads deliberately collide on every 10th key.
                        let key = if i % 10 == 0 { 0 } else { t * 1000 + i };
                        tx.record_write("Orders", format!("{key}"));
                        if m.commit(tx).is_err() {
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(m.active_count(), 0);
    }
}
