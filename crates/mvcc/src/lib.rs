//! A Tephra-like multi-version concurrency control (MVCC) transaction
//! manager layered on top of the NoSQL store.
//!
//! In the paper, the Baseline, MVCC-A and MVCC-UA systems run the workload
//! through Phoenix with the Tephra transaction server enabled: every SQL
//! statement becomes a transaction that (1) contacts the transaction server
//! to begin and obtain a snapshot, (2) executes its reads against that
//! snapshot, filtering cell versions, and (3) contacts the server again to
//! commit, where write-write conflicts are detected.  The paper measures
//! this machinery at **800–900 ms of overhead per statement** (§IX-D4),
//! which is the single largest contributor to the Baseline/MVCC systems'
//! write latencies (Fig. 14) and to their full-benchmark times (Table II).
//!
//! This crate reproduces exactly those mechanisms:
//!
//! * [`TransactionManager`] — issues transaction ids and snapshots, tracks
//!   in-flight transactions, detects first-committer-wins write-write
//!   conflicts, and charges the begin/commit round trips plus per-cell
//!   version-filtering costs to the shared simulated clock;
//! * [`Transaction`] — a handle carrying the snapshot timestamp and the
//!   write set.
//!
//! The store itself retains multiple timestamped cell versions (see
//! `nosql-store`), and readers pass the snapshot timestamp down as a read
//! bound, so snapshot reads are real, not merely simulated.

mod manager;

pub use manager::{CommitError, Transaction, TransactionManager, TxId};
