//! Crash-at-every-WAL-position property tests.
//!
//! The durability contract under group commit: after `Cluster::crash` +
//! `Cluster::recover`, the store holds exactly the last checkpoint baseline
//! plus every *synced* WAL record — acked-but-unsynced writes are lost, and
//! nothing else is.  These tests pin that contract by crashing after **every
//! op position** of a generated workload and comparing the recovered state
//! against an independent `BTreeMap` shadow model of the acked-synced
//! writes.
//!
//! The model never looks at WAL entry payloads.  It only observes the two
//! counters that define the ack/sync contract (`next_sequence`, which server
//! log an op was appended to, and `unsynced_len`, the tail a crash drops)
//! and recomputes the expected state from the op semantics alone.  Region
//! splits can migrate a key range to another server mid-run, so the synced
//! ops are replayed in global (timestamp) order, exactly the order
//! `Cluster::recover` reconstructs across server logs.

use nosql_store::ops::{Delete, Get, Put, Scan};
use nosql_store::{Cluster, ClusterConfig, TableSchema};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// `row key → (column → value)`, the reference durable state.
type Model = BTreeMap<String, BTreeMap<String, u8>>;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, column: u8, value: u8 },
    DeleteRow { key: u8 },
    DeleteColumn { key: u8, column: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..4, any::<u8>()).prop_map(|(key, column, value)| Op::Put {
            key,
            column,
            value
        }),
        (any::<u8>(), 0u8..4, any::<u8>()).prop_map(|(key, column, value)| Op::Put {
            key,
            column,
            value
        }),
        any::<u8>().prop_map(|key| Op::DeleteRow { key }),
        (any::<u8>(), 0u8..4).prop_map(|(key, column)| Op::DeleteColumn { key, column }),
    ]
}

fn key_str(key: u8) -> String {
    format!("row{key:03}")
}

fn col_str(column: u8) -> String {
    format!("c{column}")
}

fn apply_to_cluster(cluster: &Cluster, op: &Op) {
    match op {
        Op::Put { key, column, value } => cluster
            .put(
                "t",
                Put::new(key_str(*key)).with("cf", col_str(*column), vec![*value]),
            )
            .unwrap(),
        Op::DeleteRow { key } => {
            cluster.delete("t", Delete::row(key_str(*key))).unwrap();
        }
        Op::DeleteColumn { key, column } => {
            cluster
                .delete("t", Delete::column(key_str(*key), "cf", col_str(*column)))
                .unwrap();
        }
    }
}

fn apply_to_model(model: &mut Model, op: &Op) {
    match op {
        Op::Put { key, column, value } => {
            model
                .entry(key_str(*key))
                .or_default()
                .insert(col_str(*column), *value);
        }
        Op::DeleteRow { key } => {
            model.remove(&key_str(*key));
        }
        Op::DeleteColumn { key, column } => {
            if let Some(row) = model.get_mut(&key_str(*key)) {
                row.remove(&col_str(*column));
                if row.is_empty() {
                    model.remove(&key_str(*key));
                }
            }
        }
    }
}

/// Builds a cluster, bulk-populates 16 baseline rows and checkpoints them
/// (the memstore-flush durability boundary — bulk loads are volatile until
/// then).  Returns the cluster and the model of the checkpointed baseline.
fn populated_cluster(servers: usize, interval: usize) -> (Cluster, Model) {
    let cluster = Cluster::new(ClusterConfig {
        region_servers: servers,
        // Tiny split threshold so splits (and the key-range migration they
        // cause) happen during the op stream and are covered by the sweep.
        region_split_bytes: 512,
        wal_sync_interval: interval,
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .unwrap();
    let mut baseline = Model::new();
    for key in (0u8..=255).step_by(16) {
        cluster
            .put(
                "t",
                Put::new(key_str(key)).with("cf", "c0", vec![b'b'; 48]),
            )
            .unwrap();
        // The model stores one-byte values; baseline cells are only ever
        // compared by presence + first byte below.
        baseline.entry(key_str(key)).or_default().insert(col_str(0), b'b');
    }
    cluster.checkpoint();
    (cluster, baseline)
}

fn assert_state_matches(cluster: &Cluster, model: &Model, context: &str) {
    let rows = cluster.scan("t", Scan::all()).unwrap();
    let actual_keys: Vec<String> = rows.iter().map(|r| r.key_str()).collect();
    let expected_keys: Vec<String> = model.keys().cloned().collect();
    assert_eq!(actual_keys, expected_keys, "{context}: surviving row keys");
    for row in &rows {
        let expected = &model[&row.key_str()];
        assert_eq!(
            row.cells.len(),
            expected.len(),
            "{context}: cell count of {}",
            row.key_str()
        );
        for (column, value) in expected {
            let stored = row
                .value("cf", column)
                .unwrap_or_else(|| panic!("{context}: missing {}/{column}", row.key_str()));
            assert_eq!(stored[0], *value, "{context}: value of {}/{column}", row.key_str());
        }
    }
}

/// Runs `ops[..crash_at]` on a fresh cluster, crashes, recovers, and checks
/// the recovered state against the shadow model of acked-synced writes.
fn crash_at_position(ops: &[Op], crash_at: usize, servers: usize, interval: usize) {
    let (cluster, baseline) = populated_cluster(servers, interval);
    let context = format!("servers={servers} interval={interval} crash_at={crash_at}");

    // Which op index landed in which server's log, in append order.
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); servers];
    let mut sequences: Vec<u64> = (0..servers).map(|s| cluster.wal(s).next_sequence()).collect();
    for (index, op) in ops[..crash_at].iter().enumerate() {
        apply_to_cluster(&cluster, op);
        let mut appended = 0;
        for (server, last) in sequences.iter_mut().enumerate() {
            let now = cluster.wal(server).next_sequence();
            if now != *last {
                assert_eq!(now, *last + 1, "{context}: op {index} appended one record");
                assigned[server].push(index);
                *last = now;
                appended += 1;
            }
        }
        assert_eq!(appended, 1, "{context}: op {index} landed in exactly one log");
    }

    // The crash drops each server's unsynced tail: the *last*
    // `unsynced_len` ops appended to that log.
    let mut lost = vec![false; crash_at];
    let mut expect_dropped = 0;
    for server in 0..servers {
        let unsynced = cluster.wal(server).unsynced_len();
        assert!(unsynced <= assigned[server].len(), "{context}: unsynced tail bound");
        expect_dropped += unsynced;
        for &index in &assigned[server][assigned[server].len() - unsynced..] {
            lost[index] = true;
        }
    }

    // Per-server loss predictions, checked against the crash report.
    let expect_per_server: Vec<usize> =
        (0..servers).map(|s| cluster.wal(s).unsynced_len()).collect();
    let dropped = cluster.crash();
    assert_eq!(dropped.total(), expect_dropped, "{context}: dropped unsynced count");
    assert_eq!(
        dropped.lost_per_server, expect_per_server,
        "{context}: per-server loss attribution"
    );
    let report = cluster.recover();
    assert_eq!(
        report.replayed_entries as usize,
        crash_at - expect_dropped,
        "{context}: replayed exactly the synced post-checkpoint records"
    );

    // Synced ops replay over the baseline in global (timestamp) order —
    // which, in this single-threaded sweep, is submission order.
    let mut model = baseline;
    for (index, op) in ops[..crash_at].iter().enumerate() {
        if !lost[index] {
            apply_to_model(&mut model, op);
        }
    }
    assert_state_matches(&cluster, &model, &context);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline sweep: for a generated workload and group-commit
    /// interval, crash at **every** WAL position, at 1 and at 4 region
    /// servers, and check replay against the shadow model each time.
    #[test]
    fn recovery_matches_model_at_every_crash_position(
        ops in proptest::collection::vec(op_strategy(), 1..20),
        interval in 1usize..6,
    ) {
        for servers in [1usize, 4] {
            for crash_at in 0..=ops.len() {
                crash_at_position(&ops, crash_at, servers, interval);
            }
        }
    }
}

/// With `wal_sync_interval = 1` every write syncs before acking, so **no
/// acked write is ever lost**: the recovered state equals the full applied
/// state at every crash position, and the cluster stays writable afterwards.
#[test]
fn interval_one_loses_nothing_at_any_crash_position() {
    let ops: Vec<Op> = (0u8..24)
        .map(|i| match i % 4 {
            0 | 1 => Op::Put { key: i % 8, column: i % 4, value: i },
            2 => Op::DeleteRow { key: (i + 2) % 8 },
            _ => Op::DeleteColumn { key: i % 8, column: 0 },
        })
        .collect();
    for servers in [1usize, 4] {
        for crash_at in 0..=ops.len() {
            let (cluster, mut model) = populated_cluster(servers, 1);
            for op in &ops[..crash_at] {
                apply_to_cluster(&cluster, op);
                apply_to_model(&mut model, op);
            }
            assert_eq!(cluster.crash().total(), 0, "interval=1 never has an unsynced tail");
            cluster.recover();
            let context = format!("interval=1 servers={servers} crash_at={crash_at}");
            assert_state_matches(&cluster, &model, &context);
            // The recovered cluster accepts and persists new writes.
            cluster
                .put("t", Put::new("post-recovery").with("cf", "c0", vec![1u8]))
                .unwrap();
            assert!(cluster.get("t", Get::new("post-recovery")).unwrap().is_some());
        }
    }
}

/// Recovery is idempotent: a second crash immediately after recovery (which
/// ends in a checkpoint) loses nothing and replays nothing.
#[test]
fn recovery_is_idempotent() {
    let (cluster, mut model) = populated_cluster(4, 3);
    for i in 0..10u8 {
        let op = Op::Put { key: i, column: 0, value: i };
        apply_to_cluster(&cluster, &op);
        apply_to_model(&mut model, &op);
    }
    cluster.wal(0).sync();
    cluster.checkpoint();
    cluster.crash();
    let first = cluster.recover();
    assert_eq!(first.replayed_entries, 0, "checkpoint covered the whole log");
    assert_state_matches(&cluster, &model, "after first recovery");
    assert_eq!(cluster.crash().total(), 0);
    let second = cluster.recover();
    assert_eq!(second.replayed_entries, 0);
    assert_state_matches(&cluster, &model, "after second recovery");
}

/// `recover()` called twice in a row — with **no crash in between** — is
/// idempotent.  `recover()` on a live cluster restores durable state
/// (baseline + synced log); since the first call ends in a checkpoint, the
/// second has nothing to replay and leaves the state untouched.
#[test]
fn recover_twice_in_a_row_without_a_crash_is_idempotent() {
    let (cluster, mut model) = populated_cluster(4, 3);
    for i in 0..9u8 {
        let op = Op::Put { key: i, column: 1, value: i };
        apply_to_cluster(&cluster, &op);
        apply_to_model(&mut model, &op);
    }
    // Checkpoint flushes the acked-unsynced tail, so the durable state the
    // recoveries below restore is exactly the fully-applied model.
    cluster.checkpoint();
    // A few post-checkpoint ops, force-synced across every log, give the
    // first recover() real work: 3 synced records to replay over baseline.
    for i in 9..12u8 {
        let op = Op::Put { key: i, column: 1, value: i };
        apply_to_cluster(&cluster, &op);
        apply_to_model(&mut model, &op);
    }
    for server in 0..4 {
        cluster.wal(server).sync();
    }
    let first = cluster.recover();
    assert_eq!(first.replayed_entries, 3, "the post-checkpoint batch replays");
    assert_state_matches(&cluster, &model, "after first recovery");
    let second = cluster.recover();
    assert_eq!(second.replayed_entries, 0, "first recovery checkpointed everything");
    assert_state_matches(&cluster, &model, "after back-to-back second recovery");
    let third = cluster.recover();
    assert_eq!(third.replayed_entries, 0);
    assert_state_matches(&cluster, &model, "recover() is idempotent at any arity");
}

/// Two full crash→recover cycles with op batches (driving region splits) in
/// between, checked against the shadow model after each recovery.  Interval
/// 1 keeps every acked write durable, so the model tracks all applied ops;
/// the tiny split threshold in `populated_cluster` makes the second batch
/// run against a different region map than the first.
#[test]
fn double_crash_recover_cycle_with_splits_matches_model() {
    let (cluster, mut model) = populated_cluster(4, 1);
    let regions_at = |c: &Cluster| c.table_stats("t").unwrap().regions;
    let batch = |offset: u8| -> Vec<Op> {
        (0u8..32)
            .map(|i| match i % 5 {
                0..=2 => Op::Put {
                    key: i.wrapping_mul(7).wrapping_add(offset),
                    column: i % 4,
                    value: i,
                },
                3 => Op::DeleteRow { key: i.wrapping_add(offset) },
                _ => Op::DeleteColumn { key: i.wrapping_mul(3), column: 0 },
            })
            .collect()
    };
    // Cycle 1.
    for op in &batch(40) {
        apply_to_cluster(&cluster, op);
        apply_to_model(&mut model, op);
    }
    assert_eq!(cluster.crash().total(), 0, "interval=1 leaves no unsynced tail");
    cluster.recover();
    assert_state_matches(&cluster, &model, "after crash/recover cycle 1");
    // Splits in between: wide filler rows push a region past the split
    // threshold, so cycle 2 runs against a changed region map.  (Recovery
    // restores the checkpoint's region boundaries, so the split is checked
    // here, before the second crash rolls the map back.)
    let before_fill = regions_at(&cluster);
    for j in 0..20u8 {
        let key = format!("fill{j:02}");
        cluster
            .put("t", Put::new(key.clone()).with("cf", "c0", vec![b'f'; 64]))
            .unwrap();
        model.entry(key).or_default().insert(col_str(0), b'f');
    }
    assert!(
        regions_at(&cluster) > before_fill,
        "the filler rows drove a split between the cycles"
    );
    // Cycle 2, against the split map.
    for op in &batch(90) {
        apply_to_cluster(&cluster, op);
        apply_to_model(&mut model, op);
    }
    assert_eq!(cluster.crash().total(), 0);
    cluster.recover();
    assert_state_matches(&cluster, &model, "after crash/recover cycle 2");
    // Still writable after the double cycle.
    cluster
        .put("t", Put::new("after-two-cycles").with("cf", "c0", vec![5u8]))
        .unwrap();
    assert!(cluster.get("t", Get::new("after-two-cycles")).unwrap().is_some());
}
