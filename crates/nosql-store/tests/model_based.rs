//! Model-based property tests: the cluster must behave exactly like a simple
//! in-memory map of `row key → (column → value)` under arbitrary sequences
//! of puts, deletes, column deletes and scans.

use nosql_store::ops::{Delete, Get, Put, Scan};
use nosql_store::{Cluster, ClusterConfig, TableSchema};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, column: u8, value: u8 },
    DeleteRow { key: u8 },
    DeleteColumn { key: u8, column: u8 },
    Get { key: u8 },
    ScanRange { start: u8, len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..4, any::<u8>()).prop_map(|(key, column, value)| Op::Put {
            key,
            column,
            value
        }),
        any::<u8>().prop_map(|key| Op::DeleteRow { key }),
        (any::<u8>(), 0u8..4).prop_map(|(key, column)| Op::DeleteColumn { key, column }),
        any::<u8>().prop_map(|key| Op::Get { key }),
        (any::<u8>(), any::<u8>()).prop_map(|(start, len)| Op::ScanRange { start, len }),
    ]
}

fn key_str(key: u8) -> String {
    format!("row{key:03}")
}

fn col_str(column: u8) -> String {
    format!("c{column}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cluster_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        // Small region-split threshold so splits happen during the test and
        // are covered by the model comparison.
        let cluster = Cluster::new(ClusterConfig {
            region_split_bytes: 2_000,
            ..ClusterConfig::default()
        });
        cluster.create_table(TableSchema::new("t").with_family("cf")).unwrap();
        let mut model: BTreeMap<String, BTreeMap<String, u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put { key, column, value } => {
                    cluster
                        .put("t", Put::new(key_str(key)).with("cf", col_str(column), vec![value]))
                        .unwrap();
                    model.entry(key_str(key)).or_default().insert(col_str(column), value);
                }
                Op::DeleteRow { key } => {
                    cluster.delete("t", Delete::row(key_str(key))).unwrap();
                    model.remove(&key_str(key));
                }
                Op::DeleteColumn { key, column } => {
                    cluster
                        .delete("t", Delete::column(key_str(key), "cf", col_str(column)))
                        .unwrap();
                    if let Some(row) = model.get_mut(&key_str(key)) {
                        row.remove(&col_str(column));
                        if row.is_empty() {
                            model.remove(&key_str(key));
                        }
                    }
                }
                Op::Get { key } => {
                    let stored = cluster.get("t", Get::new(key_str(key))).unwrap();
                    match model.get(&key_str(key)) {
                        None => prop_assert!(stored.is_none()),
                        Some(expected) => {
                            let stored = stored.expect("row must exist");
                            prop_assert_eq!(stored.cells.len(), expected.len());
                            for (column, value) in expected {
                                prop_assert_eq!(
                                    stored.value("cf", column),
                                    Some(&[*value][..])
                                );
                            }
                        }
                    }
                }
                Op::ScanRange { start, len } => {
                    let stop = start.saturating_add(len);
                    let rows = cluster
                        .scan("t", Scan::range(key_str(start), key_str(stop)))
                        .unwrap();
                    let expected: Vec<&String> = model
                        .range(key_str(start)..key_str(stop))
                        .map(|(k, _)| k)
                        .collect();
                    let actual: Vec<String> = rows.iter().map(|r| r.key_str()).collect();
                    prop_assert_eq!(actual, expected.into_iter().cloned().collect::<Vec<_>>());
                }
            }
        }

        // Final full-scan comparison: same keys, in order, same cell counts.
        let rows = cluster.scan("t", Scan::all()).unwrap();
        prop_assert_eq!(rows.len(), model.len());
        for (row, (key, columns)) in rows.iter().zip(model.iter()) {
            prop_assert_eq!(&row.key_str(), key);
            prop_assert_eq!(row.cells.len(), columns.len());
        }
        // Storage accounting never goes negative / inconsistent.
        let metrics = cluster.metrics();
        prop_assert_eq!(metrics.tables["t"].rows as usize, model.len());
    }
}
