//! Property tests for the region-parallel scan: for arbitrary data sets,
//! key ranges, row limits and column projections, at threads ∈ {1, 2, 4},
//! collecting a [`nosql_store::ParScanCursor`] must produce exactly what the
//! serial `scan_stream` produces, and both must agree with an independent
//! `BTreeMap` reference model.  A deterministic unit test additionally
//! forces a region split *between* worker pages and checks the workers
//! resume correctly across the new region boundary.

use nosql_store::ops::{Put, Scan};
use nosql_store::{Cluster, ClusterConfig, ResultRow, TableSchema, SCAN_PAGE_ROWS};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn key_str(key: u16) -> String {
    format!("row{key:05}")
}

/// Loads one `(v, w)` cell pair per write (last write per key wins) and
/// returns the cluster plus the model of surviving values per key.
fn build(writes: &[(u16, u8)], split_bytes: usize) -> (Cluster, BTreeMap<String, u8>) {
    let cluster = Cluster::new(ClusterConfig {
        region_split_bytes: split_bytes,
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .unwrap();
    let mut model = BTreeMap::new();
    for (key, value) in writes {
        cluster
            .bulk_load(
                "t",
                // Pad the values so small write sets still trigger splits.
                [Put::new(key_str(*key))
                    .with("cf", "v", vec![*value; 40])
                    .with("cf", "w", vec![value.wrapping_add(1); 24])],
            )
            .unwrap();
        model.insert(key_str(*key), *value);
    }
    (cluster, model)
}

fn model_scan(
    model: &BTreeMap<String, u8>,
    start: &str,
    stop: &str,
    limit: usize,
) -> Vec<(String, u8)> {
    let limit = if limit == 0 { usize::MAX } else { limit };
    model
        .iter()
        .filter(|(key, _)| start.is_empty() || key.as_str() >= start)
        .filter(|(key, _)| stop.is_empty() || key.as_str() < stop)
        .map(|(key, value)| (key.clone(), *value))
        .take(limit)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn par_scan_equals_serial_scan_and_model(
        writes in proptest::collection::vec((0u16..400, any::<u8>()), 1..140),
        start in 0u16..400,
        len in 0u16..400,
        limit in 0usize..40,
        project_w in any::<bool>(),
    ) {
        // A small split threshold so larger write sets span several regions.
        let (cluster, model) = build(&writes, 1_500);

        let start_key = key_str(start);
        let stop_key = key_str(start.saturating_add(len));
        let mut scan = Scan::range(start_key.clone(), stop_key.clone()).with_limit(limit);
        if project_w {
            scan = scan.column("cf", "w");
        }

        let serial: Vec<ResultRow> =
            cluster.scan_stream("t", scan.clone()).unwrap().collect();
        for threads in [1usize, 2, 4] {
            let parallel: Vec<ResultRow> = cluster
                .par_scan_stream("t", scan.clone(), threads)
                .unwrap()
                .collect();
            prop_assert_eq!(&parallel, &serial, "threads={}", threads);
        }

        let expected = model_scan(&model, &start_key, &stop_key, limit);
        prop_assert_eq!(serial.len(), expected.len());
        for (row, (key, value)) in serial.iter().zip(&expected) {
            prop_assert_eq!(&row.key_str(), key);
            if project_w {
                prop_assert!(row.value("cf", "v").is_none(), "projection drops v");
                prop_assert_eq!(row.value("cf", "w").unwrap()[0], value.wrapping_add(1));
            } else {
                prop_assert_eq!(row.value("cf", "v").unwrap()[0], *value);
            }
        }
    }

    #[test]
    fn par_scan_sim_elapsed_is_deterministic(
        writes in proptest::collection::vec((0u16..600, any::<u8>()), 60..160),
    ) {
        let elapsed: Vec<_> = (0..2)
            .map(|_| {
                let (cluster, _) = build(&writes, 1_200);
                let (_, d) = cluster
                    .clock()
                    .measure(|| cluster.par_scan_stream("t", Scan::all(), 4).unwrap().count());
                d
            })
            .collect();
        prop_assert_eq!(elapsed[0], elapsed[1], "max-of-workers merge is schedule-independent");
    }
}

/// Forces a region split **between worker pages**: the cursor is pulled far
/// enough that every worker has fetched its first page round, then a bulk
/// load splits a region inside the first worker's still-unscanned tail.
/// The workers' resume keys must re-locate the new regions and the rows
/// inserted past the resume point must appear, in global key order.
#[test]
fn region_split_between_worker_pages_is_survived() {
    let cluster = Cluster::new(ClusterConfig {
        region_split_bytes: 20_000,
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .unwrap();
    // Even keys 0..6000: enough rows that each of the two workers needs
    // several page rounds (a round fetches up to 2 pages = 512 rows).
    cluster
        .bulk_load(
            "t",
            (0..3_000u32).map(|i| Put::new(key_str((2 * i) as u16)).with("cf", "v", vec![b'x'; 64])),
        )
        .unwrap();
    let regions_before = cluster.metrics().tables["t"].regions;
    assert!(regions_before >= 2, "need regions to partition across workers");

    let mut cursor = cluster.par_scan_stream("t", Scan::all(), 2).unwrap();
    assert_eq!(cursor.workers(), 2);
    // Pull one row: every worker has now fetched its first round of pages.
    let first = cursor.next().unwrap();
    assert_eq!(first.key_str(), key_str(0));

    // Insert odd keys well past every worker's resume point (the last key
    // region, beyond the ≤ 1024 rows any worker has paged so far), sized to
    // split their region mid-scan.
    cluster
        .bulk_load(
            "t",
            (2_800..3_000u32)
                .map(|i| Put::new(key_str((2 * i + 1) as u16)).with("cf", "v", vec![b'y'; 400])),
        )
        .unwrap();
    let regions_after = cluster.metrics().tables["t"].regions;
    assert!(
        regions_after > regions_before,
        "the mid-scan load must split a region ({regions_before} -> {regions_after})"
    );

    let mut keys: Vec<String> = vec![first.key_str()];
    keys.extend(cursor.map(|r| r.key_str()));

    // Global key order is preserved across the split...
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "rows stay in key order across the split");
    // ...no pre-existing row is lost...
    for i in 0..3_000u32 {
        assert!(keys.binary_search(&key_str((2 * i) as u16)).is_ok(), "even key {i} lost");
    }
    // ...and the rows inserted beyond the resume points are all observed.
    for i in 2_800..3_000u32 {
        assert!(
            keys.binary_search(&key_str((2 * i + 1) as u16)).is_ok(),
            "odd key {i} inserted past the resume point must be seen"
        );
    }
    assert_eq!(keys.len(), 3_200);
    // Sanity: the split landed between pages, not after the scan finished.
    let _ = SCAN_PAGE_ROWS;
}
