//! Replication-equivalence property tests.
//!
//! Region replication is pure redundancy: it must never change *what* the
//! store returns, only how available it stays through region-server crash
//! windows.  These tests pin the equivalence from both directions:
//!
//! 1. **Durability equivalence** — with no server faults, an RF ≥ 2 cluster
//!    crashed (whole-cluster) at *every* WAL position recovers to exactly
//!    the state of an RF = 1 shadow cluster fed the same ops.  Shipping is
//!    registry bookkeeping, so even the per-server loss profile matches.
//! 2. **Availability equivalence** — under a scheduled region-server crash
//!    plan, an RF ≥ 2 cluster serves every op through the windows (failing
//!    over, fencing the victim, catching it back up) and ends query-for-query
//!    equal to an RF = 1 shadow that never saw a fault.
//! 3. **Fencing** — after a failover, every stale epoch a zombie writer
//!    could present is refused with a non-retryable error.

use nosql_store::ops::{Delete, Get, Put, Scan};
use nosql_store::{Cluster, ClusterConfig, FaultPlan, RetryPolicy, StoreError, TableSchema};
use proptest::prelude::*;
use simclock::SimDuration;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, column: u8, value: u8 },
    DeleteRow { key: u8 },
    DeleteColumn { key: u8, column: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..4, any::<u8>()).prop_map(|(key, column, value)| Op::Put {
            key,
            column,
            value
        }),
        (any::<u8>(), 0u8..4, any::<u8>()).prop_map(|(key, column, value)| Op::Put {
            key,
            column,
            value
        }),
        any::<u8>().prop_map(|key| Op::DeleteRow { key }),
        (any::<u8>(), 0u8..4).prop_map(|(key, column)| Op::DeleteColumn { key, column }),
    ]
}

fn key_str(key: u8) -> String {
    format!("row{key:03}")
}

fn col_str(column: u8) -> String {
    format!("c{column}")
}

fn apply(cluster: &Cluster, op: &Op) {
    match op {
        Op::Put { key, column, value } => cluster
            .put(
                "t",
                Put::new(key_str(*key)).with("cf", col_str(*column), vec![*value]),
            )
            .unwrap(),
        Op::DeleteRow { key } => {
            cluster.delete("t", Delete::row(key_str(*key))).unwrap();
        }
        Op::DeleteColumn { key, column } => {
            cluster
                .delete("t", Delete::column(key_str(*key), "cf", col_str(*column)))
                .unwrap();
        }
    }
}

/// Builds a cluster with 8 checkpointed baseline rows, so whole-cluster
/// recovery has a non-trivial snapshot to restore under.
fn populated(servers: usize, interval: usize, rf: usize, plan: Option<FaultPlan>) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        region_servers: servers,
        // Tiny split threshold so region splits (and the key-range migration
        // they cause) are exercised by the generated workloads.
        region_split_bytes: 512,
        wal_sync_interval: interval,
        replication_factor: rf,
        fault_plan: plan,
        retry: Some(RetryPolicy::default()),
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .unwrap();
    for key in (0u8..=255).step_by(32) {
        cluster
            .put("t", Put::new(key_str(key)).with("cf", "c0", vec![b'b'; 48]))
            .unwrap();
    }
    cluster.checkpoint();
    cluster
}

/// Logical table contents: `row key → column → newest value`.  Canonical
/// form for comparing two clusters that may have drawn different internal
/// timestamps (e.g. when one side retried through a fault).
fn canonical(cluster: &Cluster) -> BTreeMap<String, BTreeMap<String, Vec<u8>>> {
    cluster
        .scan("t", Scan::all())
        .unwrap()
        .into_iter()
        .map(|row| {
            let columns = row
                .cells
                .iter()
                .map(|c| (format!("{}:{}", c.family, c.qualifier), c.value.to_vec()))
                .collect();
            (row.key_str(), columns)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash the whole cluster after every op position and compare the
    /// recovered RF ≥ 2 cluster to an RF = 1 shadow fed the same prefix.
    /// Both the per-server loss report and the recovered rows (including
    /// cell timestamps — replication draws none of its own) must match.
    #[test]
    fn rf_cluster_recovers_identically_to_rf1_shadow_at_every_wal_position(
        ops in proptest::collection::vec(op_strategy(), 1..14),
        interval in 1usize..4,
        rf in 2usize..4,
    ) {
        for crash_at in 0..=ops.len() {
            let replicated = populated(3, interval, rf, None);
            let shadow = populated(3, interval, 1, None);
            for op in &ops[..crash_at] {
                apply(&replicated, op);
                apply(&shadow, op);
            }
            let lost_rf = replicated.crash();
            let lost_shadow = shadow.crash();
            prop_assert_eq!(
                &lost_rf.lost_per_server, &lost_shadow.lost_per_server,
                "replication must not change which acked-unsynced writes a crash drops"
            );
            replicated.recover();
            shadow.recover();
            prop_assert_eq!(
                replicated.scan("t", Scan::all()).unwrap(),
                shadow.scan("t", Scan::all()).unwrap(),
                "recovered state diverged at crash position {}", crash_at
            );
            prop_assert_eq!(
                replicated.row_count("t").unwrap(),
                shadow.row_count("t").unwrap()
            );
        }
    }
}

/// A scheduled two-crash run: every op must succeed through the windows, at
/// least one failover must fire, the rejoined victims must catch up, and the
/// final state must equal a fault-free RF = 1 shadow's — zero acked loss.
#[test]
fn failover_run_matches_fault_free_shadow_with_zero_acked_loss() {
    for rf in [2usize, 3] {
        let plan = FaultPlan::new(0xFA11).with_crashes(
            vec![SimDuration::from_millis(3), SimDuration::from_millis(25)],
            SimDuration::from_millis(8),
        );
        let replicated = populated(3, 1, rf, Some(plan));
        let shadow = populated(3, 1, 1, None);

        let ops: Vec<Op> = (0..60u8)
            .map(|i| match i % 5 {
                0..=2 => Op::Put {
                    key: i % 16,
                    column: i % 3,
                    value: i,
                },
                3 => Op::DeleteColumn {
                    key: i % 16,
                    column: (i + 1) % 3,
                },
                _ => Op::Put {
                    key: 200 + i % 16,
                    column: 0,
                    value: i,
                },
            })
            .collect();
        for op in &ops {
            apply(&replicated, op);
            apply(&shadow, op);
        }

        let stats = replicated.replication_stats();
        assert!(stats.failovers >= 1, "rf={rf}: no failover fired: {stats:?}");
        assert!(
            stats.catchup_replays >= 1 && stats.catchup_records >= 1,
            "rf={rf}: rejoined victim never caught up: {stats:?}"
        );
        assert_eq!(
            stats.replica_lag, 0,
            "rf={rf}: all replicas should be in sync once every victim rejoined"
        );
        assert_eq!(
            canonical(&replicated),
            canonical(&shadow),
            "rf={rf}: replicated run diverged from fault-free shadow"
        );

        // With wal_sync_interval = 1 every acked write is synced, so even a
        // whole-cluster crash right now loses nothing.
        let lost = replicated.crash();
        assert_eq!(lost.total(), 0, "rf={rf}: acked-synced writes were lost");
        replicated.recover();
        assert_eq!(canonical(&replicated), canonical(&shadow), "rf={rf}: post-recovery");
    }
}

/// After a failover bumps a region's epoch, every stale epoch a zombie
/// primary could still hold is fenced with a non-retryable error, while the
/// current epoch keeps writing.
#[test]
fn every_stale_epoch_is_fenced_after_failover() {
    let plan = FaultPlan::new(7).with_crashes(
        vec![SimDuration::from_nanos(1)],
        SimDuration::from_millis(500),
    );
    let cluster = populated(2, 1, 2, Some(plan));

    // Any op advances faults past the crash time and fails the victim over.
    cluster.get("t", Get::new(key_str(0))).unwrap();
    let (region, epoch) = cluster.region_epoch_for("t", key_str(0).as_bytes()).unwrap();
    assert!(epoch >= 1, "failover should have bumped the epoch");

    for stale in 0..epoch {
        let put = Put::new(key_str(0)).with("cf", "c0", vec![b'z']);
        let err = cluster.put_fenced("t", put, stale).unwrap_err();
        assert_eq!(
            err,
            StoreError::StaleRegionEpoch {
                region,
                current: epoch,
                presented: stale
            }
        );
        assert!(!err.retryable(), "fencing must not be retried away");
    }
    let put = Put::new(key_str(0)).with("cf", "c0", vec![b'w']);
    cluster.put_fenced("t", put, epoch).unwrap();
    assert_eq!(
        cluster
            .get("t", Get::new(key_str(0)))
            .unwrap()
            .unwrap()
            .value("cf", "c0"),
        Some(&[b'w'][..])
    );
}
