//! Property tests for the streaming scan cursor: for arbitrary data sets,
//! key ranges, row limits and timestamp bounds — including tables that have
//! split into multiple regions — collecting a [`nosql_store::ScanCursor`]
//! must produce exactly what the one-shot `Cluster::scan` returns, and both
//! must agree with an independent `BTreeMap` reference model.

use nosql_store::ops::{Put, Scan};
use nosql_store::{Cluster, ClusterConfig, ResultRow, TableSchema};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn key_str(key: u16) -> String {
    format!("row{key:05}")
}

/// Loads `writes` as individual puts (each gets its own cluster timestamp,
/// starting at 1) and returns the cluster plus a model mapping each key to
/// every `(timestamp, value)` version written to it, oldest first.
fn build(writes: &[(u16, u8)], split_bytes: usize) -> (Cluster, BTreeMap<String, Vec<(u64, u8)>>) {
    let cluster = Cluster::new(ClusterConfig {
        region_split_bytes: split_bytes,
        ..ClusterConfig::default()
    });
    cluster
        .create_table(TableSchema::new("t").with_family("cf"))
        .unwrap();
    let mut model: BTreeMap<String, Vec<(u64, u8)>> = BTreeMap::new();
    for (i, (key, value)) in writes.iter().enumerate() {
        let ts = (i + 1) as u64;
        cluster
            .bulk_load(
                "t",
                // Pad the value so small write sets still trigger splits.
                [Put::new(key_str(*key)).with("cf", "v", vec![*value; 48])],
            )
            .unwrap();
        model.entry(key_str(*key)).or_default().push((ts, *value));
    }
    (cluster, model)
}

/// The rows the model predicts for a scan of `[start, stop)` with the given
/// limit (0 = unlimited) and timestamp bound: per key, the newest version
/// visible under the bound; keys with no visible version are skipped.
fn model_scan(
    model: &BTreeMap<String, Vec<(u64, u8)>>,
    start: &str,
    stop: &str,
    limit: usize,
    time_bound: Option<u64>,
) -> Vec<(String, u8)> {
    let limit = if limit == 0 { usize::MAX } else { limit };
    model
        .iter()
        .filter(|(key, _)| start.is_empty() || key.as_str() >= start)
        .filter(|(key, _)| stop.is_empty() || key.as_str() < stop)
        .filter_map(|(key, versions)| {
            versions
                .iter()
                .rev()
                .find(|(ts, _)| time_bound.is_none_or(|bound| *ts <= bound))
                .map(|(_, value)| (key.clone(), *value))
        })
        .take(limit)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_stream_collected_equals_scan_and_model(
        writes in proptest::collection::vec((0u16..400, any::<u8>()), 1..120),
        start in 0u16..400,
        len in 0u16..400,
        limit in 0usize..40,
        bound_frac in 0u8..5,
    ) {
        // A small split threshold so larger write sets span several regions.
        let (cluster, model) = build(&writes, 1_500);
        let regions = cluster.metrics().tables["t"].regions;

        let start_key = key_str(start);
        let stop_key = key_str(start.saturating_add(len));
        // bound_frac sweeps the timestamp bound from "sees nothing written
        // last" to "sees everything" (None).
        let time_bound = (bound_frac < 4)
            .then(|| (writes.len() as u64 * bound_frac as u64) / 4)
            .filter(|b| *b > 0);

        let mut scan = Scan::range(start_key.clone(), stop_key.clone()).with_limit(limit);
        if let Some(bound) = time_bound {
            scan = scan.up_to(bound);
        }

        let collected = cluster.scan("t", scan.clone()).unwrap();
        let streamed: Vec<ResultRow> = cluster.scan_stream("t", scan).unwrap().collect();
        prop_assert_eq!(&collected, &streamed);

        let expected = model_scan(&model, &start_key, &stop_key, limit, time_bound);
        prop_assert_eq!(streamed.len(), expected.len(), "regions={}", regions);
        for (row, (key, value)) in streamed.iter().zip(&expected) {
            prop_assert_eq!(&row.key_str(), key);
            prop_assert_eq!(row.value("cf", "v").unwrap()[0], *value);
        }
    }

    #[test]
    fn full_stream_spans_region_splits_in_key_order(
        writes in proptest::collection::vec((0u16..1000, any::<u8>()), 40..160),
    ) {
        let (cluster, model) = build(&writes, 1_000);
        prop_assert!(
            cluster.metrics().tables["t"].regions > 1,
            "write set should force at least one split"
        );
        let streamed: Vec<ResultRow> =
            cluster.scan_stream("t", Scan::all()).unwrap().collect();
        prop_assert_eq!(streamed.len(), model.len(), "one row per distinct key");
        let keys: Vec<String> = streamed.iter().map(ResultRow::key_str).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted);
    }
}
