//! Allocation-count regression tests for the write path.
//!
//! `Region::put` used to clone the family and qualifier `String`s of every
//! cell on every write — even when the column already existed — and then
//! re-walk the whole row (materializing a throwaway `Cell` per stored cell)
//! to recompute the region's byte count.  With interned column keys and
//! incremental accounting, a put into an existing column performs a small,
//! *row-width-independent* number of allocations.  These tests pin that
//! down with a counting global allocator.

use nosql_store::ops::Put;
use nosql_store::{Region, RegionId, RegionServerId, TableSchema};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The counter is process-global and the test harness runs tests on
/// parallel threads; measurement windows must not overlap or they count
/// each other's allocations.
static MEASUREMENT_WINDOW: Mutex<()> = Mutex::new(());

fn exclusive_window() -> std::sync::MutexGuard<'static, ()> {
    MEASUREMENT_WINDOW
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn schema() -> TableSchema {
    TableSchema::new("t").with_versioned_family("cf", 8)
}

fn region() -> Region {
    Region::new(RegionId(1), RegionServerId(0), Vec::new(), Vec::new())
}

/// Allocations per put of one cell into an **existing** column must be a
/// small constant: the value bytes, a version-map node, and bookkeeping —
/// not a clone of the column names, and not a re-walk of the row.
#[test]
fn put_into_existing_column_allocates_a_small_constant() {
    let _window = exclusive_window();
    let mut region = region();
    let schema = schema();
    let put = Put::new("row1").with("cf", "col_with_a_long_name", vec![7u8; 16]);
    // Warm up: create the column and intern its names.
    for ts in 1..=8u64 {
        region.put(&schema, &put, ts).unwrap();
    }

    let reps = 100u64;
    let before = allocations();
    for ts in 100..100 + reps {
        region.put(&schema, &put, ts).unwrap();
    }
    let per_put = (allocations() - before) as f64 / reps as f64;
    assert!(
        per_put <= 6.0,
        "a put into an existing column should allocate O(1) blocks \
         (value + version-map node), measured {per_put:.1} per put"
    );
}

/// The former accounting re-materialized every stored cell of the row per
/// mutation, so allocations grew linearly with row width.  They must not:
/// writing one cell of a 1-column row and of a 30-column row costs the same.
#[test]
fn put_allocations_do_not_scale_with_row_width() {
    let _window = exclusive_window();
    let schema = schema();
    let reps = 200u64;

    let measure = |columns: usize| -> f64 {
        let mut region = region();
        for c in 0..columns {
            let put = Put::new("wide").with("cf", format!("col{c:02}"), vec![1u8; 8]);
            region.put(&schema, &put, 1).unwrap();
        }
        let put = Put::new("wide").with("cf", "col00", vec![2u8; 8]);
        for ts in 2..10u64 {
            region.put(&schema, &put, ts).unwrap(); // warm-up
        }
        let before = allocations();
        for ts in 100..100 + reps {
            region.put(&schema, &put, ts).unwrap();
        }
        (allocations() - before) as f64 / reps as f64
    };

    let narrow = measure(1);
    let wide = measure(30);
    assert!(
        wide <= narrow + 2.0,
        "per-put allocations must not grow with the number of existing \
         columns (1 column: {narrow:.1}, 30 columns: {wide:.1})"
    );
}

/// Interning is stable: repeated writes to existing columns must not grow
/// the store's name-interner table.
#[test]
fn repeated_writes_do_not_grow_the_interner() {
    let mut region = region();
    let schema = schema();
    let put = Put::new("r").with("cf", "stable_col", "v");
    region.put(&schema, &put, 1).unwrap();
    let before = nosql_store::intern::interned_name_count();
    for ts in 2..200u64 {
        region.put(&schema, &put, ts).unwrap();
    }
    assert_eq!(nosql_store::intern::interned_name_count(), before);
}
