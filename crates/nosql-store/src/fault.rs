//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes *when* and *how* the simulated cluster fails:
//! per-operation probabilistic faults (RPC timeout, transient server error,
//! slow-region latency spike) drawn from a seeded RNG, and region-server
//! crashes scheduled at fixed points on the **simulated** clock.  Because
//! both the schedule and the RNG are deterministic, the same seed and the
//! same fault plan reproduce the same fault sequence — and therefore the
//! same figures — on every run of a single-threaded workload (the
//! determinism contract; see README "Fault tolerance").
//!
//! Faults surface as [`StoreError`] variants whose
//! [`StoreError::retryable`] taxonomy drives the client-side
//! [`crate::RetryPolicy`].  With no plan configured the injection hook is a
//! single `Option` check — the no-fault path draws no randomness and
//! charges no extra cost.

use crate::error::StoreError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simclock::{SimDuration, SimInstant};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A deterministic, seeded fault schedule for one cluster.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the per-operation fault RNG.
    pub seed: u64,
    /// Probability that a charged operation times out (retryable; the op is
    /// not applied).
    pub timeout_prob: f64,
    /// Probability of a transient server-side error (retryable; the op is
    /// not applied).
    pub transient_prob: f64,
    /// Probability of a slow-region latency spike (the op succeeds but
    /// charges [`FaultPlan::slow_penalty`] extra).
    pub slow_prob: f64,
    /// Simulated time burned by a timed-out RPC before the client gives up
    /// on the attempt.
    pub timeout_penalty: SimDuration,
    /// Extra latency charged by a slow-region hit.
    pub slow_penalty: SimDuration,
    /// Simulated instants (nanos since the epoch) at which a region server
    /// crashes.  The i-th crash takes down server `i % region_servers`; its
    /// acked-but-unsynced WAL tail is lost and the server stays down for
    /// [`FaultPlan::crash_mttr`].
    pub crash_times: Vec<SimDuration>,
    /// How long a crashed region server stays down before it restarts.
    pub crash_mttr: SimDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_0175,
            timeout_prob: 0.0,
            transient_prob: 0.0,
            slow_prob: 0.0,
            timeout_penalty: SimDuration::from_millis(30),
            slow_penalty: SimDuration::from_millis(10),
            crash_times: Vec::new(),
            crash_mttr: SimDuration::from_millis(50),
        }
    }
}

impl FaultPlan {
    /// A plan with no faults (useful as a builder starting point).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the RPC-timeout probability.
    pub fn with_timeouts(mut self, prob: f64) -> Self {
        self.timeout_prob = prob;
        self
    }

    /// Sets the transient-error probability.
    pub fn with_transients(mut self, prob: f64) -> Self {
        self.transient_prob = prob;
        self
    }

    /// Sets the slow-region probability and per-hit latency penalty.
    pub fn with_slow_regions(mut self, prob: f64, penalty: SimDuration) -> Self {
        self.slow_prob = prob;
        self.slow_penalty = penalty;
        self
    }

    /// Schedules region-server crashes at the given simulated instants.
    pub fn with_crashes(mut self, times: Vec<SimDuration>, mttr: SimDuration) -> Self {
        self.crash_times = times;
        self.crash_mttr = mttr;
        self
    }

    /// Total probability that a charged op draws *any* probabilistic fault.
    pub fn fault_prob(&self) -> f64 {
        self.timeout_prob + self.transient_prob + self.slow_prob
    }
}

/// Per-region-server slice of the injected-fault counters: every op-level
/// fault is attributed to the server the faulted RPC was addressed to (the
/// same index [`StoreError::RegionUnavailable`], [`StoreError::RpcTimeout`]
/// and [`StoreError::TransientOp`] carry), so the fault matrix can show
/// *where* a plan's faults landed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFaultStats {
    /// Injected RPC timeouts addressed to this server.
    pub timeouts: u64,
    /// Injected transient op errors raised by this server.
    pub transient_errors: u64,
    /// Injected slow-region latency spikes on this server.
    pub slowdowns: u64,
    /// Operations rejected because this server was inside an outage window.
    pub unavailable_rejections: u64,
}

/// Counts of every injected fault and the retry layer's reactions, exposed
/// by [`crate::Cluster::fault_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Region-server crashes fired from the schedule.
    pub server_crashes: u64,
    /// Acked-but-unsynced WAL records lost to server crashes.
    pub wal_records_lost: u64,
    /// Injected RPC timeouts.
    pub timeouts: u64,
    /// Injected transient op errors.
    pub transient_errors: u64,
    /// Injected slow-region latency spikes.
    pub slowdowns: u64,
    /// Operations rejected because the addressed server was down.
    pub unavailable_rejections: u64,
    /// Retry attempts made by the configured [`crate::RetryPolicy`].
    pub retries: u64,
    /// Operations the retry policy gave up on.
    pub giveups: u64,
    /// Per-server attribution of the op-level fault counters, indexed by
    /// region-server id.  Empty when no fault plan is configured.  The
    /// per-server columns always sum to the cluster-wide counters above.
    pub per_server: Vec<ServerFaultStats>,
}

impl FaultStats {
    /// Total injected op-level faults (timeouts + transients + rejections).
    pub fn injected_op_faults(&self) -> u64 {
        self.timeouts + self.transient_errors + self.unavailable_rejections
    }
}

/// The outcome of one per-operation fault draw.
pub(crate) enum FaultDraw {
    /// No fault: proceed, charging `extra` on top of the op's normal cost
    /// (zero unless a slow-region spike fired).
    Proceed { extra: SimDuration },
    /// The op fails with `error` after burning `charge` of simulated time.
    Fail {
        error: StoreError,
        charge: SimDuration,
    },
}

/// Per-server fault counters, atomic so `draw` can attribute each injected
/// fault without taking a lock.
#[derive(Debug, Default)]
pub(crate) struct ServerFaultCounters {
    timeouts: AtomicU64,
    transients: AtomicU64,
    slowdowns: AtomicU64,
    unavailable: AtomicU64,
}

impl ServerFaultCounters {
    fn snapshot(&self) -> ServerFaultStats {
        ServerFaultStats {
            timeouts: self.timeouts.load(Ordering::Relaxed),
            transient_errors: self.transients.load(Ordering::Relaxed),
            slowdowns: self.slowdowns.load(Ordering::Relaxed),
            unavailable_rejections: self.unavailable.load(Ordering::Relaxed),
        }
    }
}

/// Live injection state for one cluster (plan + RNG + per-server outage
/// windows + counters).
#[derive(Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: Mutex<StdRng>,
    /// Index of the next unfired entry of `plan.crash_times`.
    next_crash: AtomicUsize,
    /// Per server: simulated nanos until which it is down (0 = up).
    down_until: Vec<AtomicU64>,
    pub(crate) server_crashes: AtomicU64,
    pub(crate) wal_records_lost: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) transients: AtomicU64,
    pub(crate) slowdowns: AtomicU64,
    pub(crate) unavailable: AtomicU64,
    per_server: Vec<ServerFaultCounters>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, servers: usize) -> Self {
        FaultState {
            rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
            next_crash: AtomicUsize::new(0),
            down_until: (0..servers).map(|_| AtomicU64::new(0)).collect(),
            plan,
            server_crashes: AtomicU64::new(0),
            wal_records_lost: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            slowdowns: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            per_server: (0..servers).map(|_| ServerFaultCounters::default()).collect(),
        }
    }

    /// Snapshots the per-server attribution columns.
    pub(crate) fn per_server_stats(&self) -> Vec<ServerFaultStats> {
        self.per_server.iter().map(ServerFaultCounters::snapshot).collect()
    }

    /// Claims every crash event whose scheduled instant has passed and
    /// returns the victims (`event index % servers`).  Each event is claimed
    /// by exactly one caller even under concurrency.
    pub(crate) fn due_crashes(&self, now: SimInstant) -> Vec<usize> {
        let servers = self.down_until.len().max(1);
        let mut victims = Vec::new();
        loop {
            let i = self.next_crash.load(Ordering::Acquire);
            if i >= self.plan.crash_times.len()
                || now.as_nanos() < self.plan.crash_times[i].as_nanos()
            {
                break;
            }
            if self
                .next_crash
                .compare_exchange(i, i + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                victims.push(i % servers);
            }
        }
        victims
    }

    /// Marks a server down until `until`.
    pub(crate) fn mark_down(&self, server: usize, until: SimInstant) {
        if let Some(slot) = self.down_until.get(server) {
            slot.store(until.as_nanos(), Ordering::Release);
        }
    }

    /// True if `server` is inside an outage window at `now`.
    pub(crate) fn is_down(&self, server: usize, now: SimInstant) -> bool {
        self.down_until
            .get(server)
            .is_some_and(|slot| now.as_nanos() < slot.load(Ordering::Acquire))
    }

    /// Draws the per-operation fault outcome for an op addressed at
    /// `server`.  `rpc` is the cost model's RPC latency (what a fast
    /// connection-refused rejection burns).
    pub(crate) fn draw(&self, server: usize, now: SimInstant, rpc: SimDuration) -> FaultDraw {
        if self.is_down(server, now) {
            self.unavailable.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = self.per_server.get(server) {
                s.unavailable.fetch_add(1, Ordering::Relaxed);
            }
            return FaultDraw::Fail {
                error: StoreError::RegionUnavailable { server },
                charge: rpc,
            };
        }
        if self.plan.fault_prob() <= 0.0 {
            return FaultDraw::Proceed {
                extra: SimDuration::ZERO,
            };
        }
        let u: f64 = self.rng.lock().random_range(0.0..1.0);
        if u < self.plan.timeout_prob {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = self.per_server.get(server) {
                s.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            FaultDraw::Fail {
                error: StoreError::RpcTimeout { server },
                charge: self.plan.timeout_penalty,
            }
        } else if u < self.plan.timeout_prob + self.plan.transient_prob {
            self.transients.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = self.per_server.get(server) {
                s.transients.fetch_add(1, Ordering::Relaxed);
            }
            FaultDraw::Fail {
                error: StoreError::TransientOp { server },
                charge: rpc,
            }
        } else if u < self.plan.fault_prob() {
            self.slowdowns.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = self.per_server.get(server) {
                s.slowdowns.fetch_add(1, Ordering::Relaxed);
            }
            FaultDraw::Proceed {
                extra: self.plan.slow_penalty,
            }
        } else {
            FaultDraw::Proceed {
                extra: SimDuration::ZERO,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_events_fire_once_in_schedule_order() {
        let plan = FaultPlan::new(1).with_crashes(
            vec![SimDuration::from_millis(10), SimDuration::from_millis(20)],
            SimDuration::from_millis(5),
        );
        let state = FaultState::new(plan, 3);
        let t5 = SimInstant::EPOCH + SimDuration::from_millis(5);
        assert!(state.due_crashes(t5).is_empty());
        let t25 = SimInstant::EPOCH + SimDuration::from_millis(25);
        assert_eq!(state.due_crashes(t25), vec![0, 1]);
        assert!(state.due_crashes(t25).is_empty(), "events fire once");
    }

    #[test]
    fn outage_windows_expire() {
        let state = FaultState::new(FaultPlan::default(), 2);
        let until = SimInstant::EPOCH + SimDuration::from_millis(10);
        state.mark_down(1, until);
        assert!(state.is_down(1, SimInstant::EPOCH + SimDuration::from_millis(9)));
        assert!(!state.is_down(1, until));
        assert!(!state.is_down(0, SimInstant::EPOCH));
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        let draw_seq = |seed: u64| {
            let plan = FaultPlan::new(seed).with_timeouts(0.3).with_transients(0.3);
            let state = FaultState::new(plan, 1);
            (0..64)
                .map(|_| {
                    match state.draw(0, SimInstant::EPOCH, SimDuration::from_micros(900)) {
                        FaultDraw::Proceed { .. } => 0u8,
                        FaultDraw::Fail { error: StoreError::RpcTimeout { .. }, .. } => 1,
                        FaultDraw::Fail { .. } => 2,
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw_seq(7), draw_seq(7));
        assert_ne!(draw_seq(7), draw_seq(8), "different seeds fault differently");
    }

    #[test]
    fn per_server_counters_attribute_faults_to_the_addressed_server() {
        let plan = FaultPlan::new(11).with_timeouts(0.5).with_transients(0.5);
        let state = FaultState::new(plan, 3);
        for i in 0..30 {
            let _ = state.draw(i % 2, SimInstant::EPOCH, SimDuration::from_micros(900));
        }
        state.mark_down(2, SimInstant::EPOCH + SimDuration::from_millis(1));
        let _ = state.draw(2, SimInstant::EPOCH, SimDuration::from_micros(900));
        let per = state.per_server_stats();
        assert_eq!(per.len(), 3);
        let sum = |f: fn(&ServerFaultStats) -> u64| per.iter().map(f).sum::<u64>();
        assert_eq!(sum(|s| s.timeouts), state.timeouts.load(Ordering::Relaxed));
        assert_eq!(sum(|s| s.transient_errors), state.transients.load(Ordering::Relaxed));
        assert_eq!(sum(|s| s.unavailable_rejections), 1);
        assert_eq!(per[2].unavailable_rejections, 1, "rejection lands on server 2");
        assert!(per[0].timeouts + per[0].transient_errors > 0);
        assert!(per[1].timeouts + per[1].transient_errors > 0);
    }

    #[test]
    fn down_server_rejects_before_any_rng_draw() {
        let plan = FaultPlan::new(3).with_timeouts(1.0);
        let state = FaultState::new(plan, 1);
        state.mark_down(0, SimInstant::EPOCH + SimDuration::from_millis(1));
        match state.draw(0, SimInstant::EPOCH, SimDuration::from_micros(900)) {
            FaultDraw::Fail { error: StoreError::RegionUnavailable { server: 0 }, .. } => {}
            other => panic!("expected unavailability, got {:?}", matches!(other, FaultDraw::Proceed { .. })),
        }
    }
}
