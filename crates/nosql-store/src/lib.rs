//! An HBase-class, column-family oriented, sorted key-value store with a
//! simulated multi-node cluster.
//!
//! The Synergy paper (Tapdiya et al., CLUSTER 2017) uses HBase as its storage
//! substrate.  This crate reproduces the parts of HBase the paper depends on:
//!
//! * tables of rows sorted by row key, grouped into column families;
//! * multi-versioned cells (`(row, family, qualifier, timestamp) → value`);
//! * the five-primitive data-manipulation API — [`ops::Get`], [`ops::Put`],
//!   [`ops::Scan`], [`ops::Delete`], [`ops::Increment`] — plus the atomic
//!   [`ops::CheckAndPut`] used by Synergy's lock tables;
//! * single-row atomicity and read-committed visibility for row operations;
//! * horizontal partitioning of each table into regions hosted by region
//!   servers, with a write-ahead log per server and major compaction;
//! * per-table storage accounting (used for the paper's Table III).
//!
//! Instead of a physical cluster, every operation charges a deterministic
//! cost from [`simclock::CostModel`] into a shared [`simclock::SimClock`]
//! (network round trips, WAL syncs, scan streaming).  See `DESIGN.md` §2 for
//! why this substitution preserves the paper's results.
//!
//! # Quick start
//!
//! ```
//! use nosql_store::{Cluster, ClusterConfig, ops::{Put, Get, Scan}, TableSchema};
//!
//! let cluster = Cluster::new(ClusterConfig::default());
//! cluster.create_table(TableSchema::new("greetings").with_family("cf")).unwrap();
//!
//! let mut put = Put::new("row1");
//! put.add("cf", "msg", "hello world");
//! cluster.put("greetings", put).unwrap();
//!
//! let row = cluster.get("greetings", Get::new("row1")).unwrap().unwrap();
//! assert_eq!(row.value("cf", "msg").unwrap(), b"hello world");
//!
//! let rows = cluster.scan("greetings", Scan::all()).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

// Library code of this crate must not panic on fault paths (the lint
// crate's panic-freedom rule is the authority; clippy backs it up in CI).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
mod cell;
mod cluster;
mod cursor;
mod error;
mod fault;
pub mod intern;
mod metrics;
pub mod ops;
mod par_scan;
mod region;
mod retry;
mod table;
mod wal;

pub use cell::{Bytes, Cell, CellCoord, Timestamp};
pub use cluster::{Cluster, ClusterConfig, CrashReport, RecoveryReport};
pub use cursor::{ScanCursor, SCAN_PAGE_ROWS};
pub use fault::{FaultPlan, FaultStats, ServerFaultStats};
pub use par_scan::ParScanCursor;
pub use retry::RetryPolicy;
pub use error::{StoreError, StoreResult};
pub use metrics::{ClusterMetrics, OpCounters, ReplicationStats, TableMetrics};
pub use region::{Region, RegionId, RegionServerId};
pub use table::{ColumnFamily, ResultRow, TableSchema};
pub use wal::{WalEntry, WalOp, WriteAheadLog};
