//! Cells: the smallest unit of data in the store.
//!
//! Following the Bigtable/HBase data model, a cell is addressed by
//! `(row key, column family, column qualifier, timestamp)` and holds an
//! uninterpreted byte value.  Multiple timestamped versions of the same cell
//! may coexist; reads see the newest version unless a timestamp bound is
//! given.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Uninterpreted byte string used for row keys, qualifiers and values.
pub type Bytes = Vec<u8>;

/// A logical timestamp attached to each cell version.
///
/// In real HBase this is wall-clock milliseconds; here it is a monotonically
/// increasing sequence number handed out by the cluster, which keeps the
/// simulation deterministic.
pub type Timestamp = u64;

/// Fully-qualified coordinate of a cell version.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellCoord {
    /// Row key the cell belongs to.
    pub row: Bytes,
    /// Column family name.
    pub family: String,
    /// Column qualifier within the family.
    pub qualifier: String,
    /// Version timestamp.
    pub timestamp: Timestamp,
}

/// One versioned value of one column of one row.
///
/// The family and qualifier are shared `Arc<str>` handles interned by the
/// store (see [`crate::intern`]): materializing a cell for a read clones a
/// pointer, not the name characters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Column family name.
    pub family: Arc<str>,
    /// Column qualifier.
    pub qualifier: Arc<str>,
    /// Version timestamp (larger = newer).
    pub timestamp: Timestamp,
    /// The stored value, shared with the store's in-memory version map so
    /// reads never copy value bytes.
    pub value: Arc<[u8]>,
}

impl Cell {
    /// Per-cell coordinate overhead modeled after HBase's storage format
    /// (length prefixes + timestamp + type tag).
    pub const PER_CELL_OVERHEAD: usize = 24;

    /// Creates a cell; mostly useful in tests.
    pub fn new(
        family: impl Into<Arc<str>>,
        qualifier: impl Into<Arc<str>>,
        timestamp: Timestamp,
        value: impl Into<Bytes>,
    ) -> Self {
        let value: Bytes = value.into();
        Cell {
            family: family.into(),
            qualifier: qualifier.into(),
            timestamp,
            value: Arc::from(value),
        }
    }

    /// Approximate on-disk footprint of this cell, in bytes.
    ///
    /// HBase stores the full coordinate with every cell;
    /// [`Cell::PER_CELL_OVERHEAD`] models that per-cell key overhead and is
    /// what the storage accounting for the paper's Table III is built on.
    pub fn heap_size(&self) -> usize {
        self.family.len() + self.qualifier.len() + self.value.len() + Self::PER_CELL_OVERHEAD
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}@{}={}",
            self.family,
            self.qualifier,
            self.timestamp,
            String::from_utf8_lossy(&self.value)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_size_counts_all_components() {
        let cell = Cell::new("cf", "name", 7, "alice");
        assert_eq!(cell.heap_size(), 2 + 4 + 5 + 24);
    }

    #[test]
    fn display_is_human_readable() {
        let cell = Cell::new("cf", "name", 7, "alice");
        assert_eq!(cell.to_string(), "cf:name@7=alice");
    }
}
