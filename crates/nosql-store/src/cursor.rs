//! Streaming scan cursors: pull-based iteration over a table's rows.
//!
//! A [`ScanCursor`] walks the regions of a table lazily, fetching one page
//! of rows per region-server visit instead of materializing the whole key
//! range up front.  Row limits, timestamp bounds and column projections are
//! pushed into the region walk, so a consumer that stops after `k` rows
//! only pays for roughly `k` rows of store work — the foundation the query
//! layer's pull-based operator pipeline is built on.
//!
//! Like an HBase scanner, the cursor is **row-atomic but not table-atomic**:
//! each page observes a consistent snapshot of its rows, while writes may
//! land between pages.  Higher layers that need stronger guarantees layer
//! their own protocol on top (the query executor's dirty-marker restarts,
//! the MVCC layer's timestamp bounds).
//!
//! Cost accounting is incremental and sums to exactly what the one-shot
//! [`Cluster::scan`] used to charge for a fully-consumed scan: one
//! scanner-open per region touched, one RPC per `scan_batch_rows` batch and
//! per-row / per-byte streaming costs.  A cursor dropped early simply stops
//! charging, which is the simulated counterpart of the memory/latency win.

use crate::cell::Bytes;
use crate::cluster::{Cluster, TableState};
use crate::error::{StoreError, StoreResult};
use crate::ops::Scan;
use crate::region::{Region, RegionId};
use crate::table::{ColKey, ResultRow};
use std::sync::Arc;

/// Rows fetched from the store per cursor page (the client-side buffer one
/// region-server visit fills).  Consumers that stop early scan at most this
/// many rows beyond what they consume.
pub const SCAN_PAGE_ROWS: usize = 256;

/// A lazy, resumable scan over one table.  Produced by
/// [`Cluster::scan_stream`]; yields rows in global key order.
pub struct ScanCursor {
    cluster: Cluster,
    state: Arc<TableState>,
    scan: Scan,
    /// Rows the scan may still return (`usize::MAX` when unlimited).
    remaining: usize,
    /// Key of the last row returned; the next page starts strictly after it.
    resume_after: Option<Bytes>,
    /// The scan's column projection, resolved to interned keys once.
    projection: Option<Vec<ColKey>>,
    page: std::vec::IntoIter<ResultRow>,
    exhausted: bool,
    /// Set when a page fetch failed after exhausting the retry policy; the
    /// cursor stops yielding and [`ScanCursor::take_error`] reports it.
    failed: Option<StoreError>,
    /// Regions already charged a scanner-open (the first is covered by the
    /// open charge at cursor creation).
    opened: Vec<RegionId>,
    rows_streamed: u64,
    batch_rows: u64,
}

impl Cluster {
    /// Opens a streaming scan over `table`.  Charges the scanner-open and
    /// first-batch RPC immediately; per-row, per-byte, per-batch and
    /// additional per-region costs are charged as pages are pulled.
    pub fn scan_stream(&self, table: &str, scan: Scan) -> StoreResult<ScanCursor> {
        self.scan_stream_inner(table, scan, true)
    }

    /// [`Cluster::scan_stream`] with control over the `scans` counter bump:
    /// parallel scan workers pass `record_open = false` so the fan-out
    /// counts as **one** logical scan (recorded by the parallel cursor),
    /// while still charging each worker's scanner-open sim cost.
    pub(crate) fn scan_stream_inner(
        &self,
        table: &str,
        scan: Scan,
        record_open: bool,
    ) -> StoreResult<ScanCursor> {
        if !scan.start.is_empty() && !scan.stop.is_empty() && scan.start > scan.stop {
            return Err(StoreError::InvalidRange);
        }
        let state = self.table(table)?;
        let model = self.cost_model();
        self.charge(model.scan_open + model.rpc_round_trip());
        if record_open {
            self.record_scan_open();
        }
        let remaining = if scan.limit == 0 { usize::MAX } else { scan.limit };
        let batch_rows = model.scan_batch_rows.max(1);
        let projection = Region::resolve_projection(&scan.columns);
        Ok(ScanCursor {
            cluster: self.clone(),
            state,
            scan,
            remaining,
            resume_after: None,
            projection,
            page: Vec::new().into_iter(),
            exhausted: false,
            failed: None,
            opened: Vec::new(),
            rows_streamed: 0,
            batch_rows,
        })
    }
}

impl ScanCursor {
    /// Total rows this cursor has yielded into pages so far.
    pub fn rows_streamed(&self) -> u64 {
        self.rows_streamed
    }

    /// The error that stopped this cursor, if a page fetch failed after
    /// exhausting the retry policy.  A cursor that ends with `None` here
    /// completed its range normally.
    pub fn error(&self) -> Option<&StoreError> {
        self.failed.as_ref()
    }

    /// Takes ownership of the terminating error, if any (see
    /// [`ScanCursor::error`]).
    pub fn take_error(&mut self) -> Option<StoreError> {
        self.failed.take()
    }

    /// Returns the remainder of the current page plus, if needed, the next
    /// fetched page; `None` once the cursor is exhausted.  This is the
    /// page-granular pull the region-parallel cursor advances workers by —
    /// between two calls the table may split and the next page re-locates
    /// its region via the resume key.
    pub(crate) fn next_page(&mut self) -> Option<Vec<ResultRow>> {
        let leftover: Vec<ResultRow> = self.page.by_ref().collect();
        if !leftover.is_empty() {
            return Some(leftover);
        }
        while !self.exhausted {
            self.fetch_page();
            let page: Vec<ResultRow> =
                std::mem::replace(&mut self.page, Vec::new().into_iter()).collect();
            if !page.is_empty() {
                return Some(page);
            }
        }
        None
    }

    /// Fetches the next page, retrying injected faults under the cluster's
    /// retry policy.  A fetch that still fails marks the cursor failed (and
    /// exhausted); [`ScanCursor::take_error`] surfaces the error.
    fn fetch_page(&mut self) {
        // Clone the handle so the retry runtime isn't borrowed from the same
        // `self` the closure mutates.
        let cluster = self.cluster.clone();
        if let Err(err) = cluster.with_retry(|| self.try_fetch_page()) {
            self.failed = Some(err);
            self.exhausted = true;
        }
    }

    /// One page-fetch attempt under the table's region read lock.  Sets
    /// `exhausted` when the walk reached the end of the range (a short page)
    /// or the row limit.  Faults are injected before any cursor state
    /// changes, so a failed attempt leaves the cursor where it was and a
    /// retry resumes cleanly from the same position.
    fn try_fetch_page(&mut self) -> StoreResult<()> {
        let want = SCAN_PAGE_ROWS.min(self.remaining);
        if want == 0 {
            self.exhausted = true;
            return Ok(());
        }
        self.cluster.precheck()?;
        let mut out: Vec<ResultRow> = Vec::new();
        {
            let regions = self.state.regions.read();
            // Regions are kept in key order, so the ones fully consumed by
            // earlier pages form a prefix: start the walk at the first
            // region whose range can still hold keys past the resume point.
            let first = match &self.resume_after {
                Some(after) => regions.partition_point(|r| {
                    !r.end.is_empty() && r.end.as_slice() <= after.as_slice()
                }),
                None => 0,
            };
            // One fault draw per page, against the server the page's first
            // region-server visit addresses.
            if let Some(region) = regions.get(first) {
                self.cluster.inject_faults(region.server)?;
            }
            for region in regions[first..].iter() {
                if out.len() >= want {
                    break;
                }
                // Skip regions entirely outside the scan range.
                if !self.scan.stop.is_empty()
                    && !region.start.is_empty()
                    && region.start >= self.scan.stop
                {
                    continue;
                }
                if !self.scan.start.is_empty()
                    && !region.end.is_empty()
                    && region.end <= self.scan.start
                {
                    continue;
                }
                if !self.opened.contains(&region.id) {
                    if !self.opened.is_empty() {
                        // The first region's open is charged at creation.
                        let open = self.cluster.cost_model().scan_open;
                        self.cluster.charge(open);
                    }
                    self.opened.push(region.id);
                }
                region.scan_page(
                    &self.scan,
                    self.projection.as_deref(),
                    self.resume_after.as_deref(),
                    want - out.len(),
                    &mut out,
                )?;
            }
        }
        if out.len() < want {
            self.exhausted = true;
        }
        self.remaining -= out.len();
        if self.remaining == 0 {
            self.exhausted = true;
        }
        if let Some(last) = out.last() {
            self.resume_after = Some(last.key.clone());
        }
        let bytes: usize = out.iter().map(ResultRow::byte_size).sum();
        let model = self.cluster.cost_model();
        let mut cost = model.scan_next_row * out.len() as u64
            + simclock::SimDuration::from_nanos(model.scan_byte_ns * bytes as u64);
        // One RPC per `scan_batch_rows` batch: the first batch is charged at
        // creation, each row crossing a batch boundary charges the next.
        for i in 0..out.len() as u64 {
            let row_number = self.rows_streamed + i + 1;
            if row_number > 1 && (row_number - 1).is_multiple_of(self.batch_rows) {
                cost += model.rpc_round_trip();
            }
        }
        self.cluster.charge(cost);
        self.rows_streamed += out.len() as u64;
        self.cluster.record_scan_page(out.len() as u64, bytes as u64);
        self.page = out.into_iter();
        Ok(())
    }
}

impl Iterator for ScanCursor {
    type Item = ResultRow;

    fn next(&mut self) -> Option<ResultRow> {
        loop {
            if let Some(row) = self.page.next() {
                return Some(row);
            }
            if self.exhausted {
                return None;
            }
            self.fetch_page();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::ops::Put;
    use crate::table::TableSchema;

    fn loaded_cluster(rows: usize) -> Cluster {
        let c = Cluster::new(ClusterConfig {
            region_split_bytes: 2_000,
            ..ClusterConfig::default()
        });
        c.create_table(TableSchema::new("t").with_family("cf")).unwrap();
        c.bulk_load(
            "t",
            (0..rows).map(|i| Put::new(format!("r{i:05}")).with("cf", "v", vec![b'x'; 64])),
        )
        .unwrap();
        c
    }

    #[test]
    fn cursor_matches_collected_scan() {
        let c = loaded_cluster(600);
        let collected = c.scan("t", Scan::all()).unwrap();
        let streamed: Vec<ResultRow> = c.scan_stream("t", Scan::all()).unwrap().collect();
        assert_eq!(collected, streamed);
        assert_eq!(streamed.len(), 600);
    }

    #[test]
    fn cursor_charges_the_closed_form_scan_cost() {
        // The incremental per-page charges must sum to exactly what the
        // pre-streaming one-shot scan charged:
        //   scan_open * regions + scan_cost(rows, bytes) - scan_open
        // (scan_cost itself includes one scanner-open).
        let c = loaded_cluster(3_000);
        let rows = c.scan("t", Scan::all()).unwrap();
        let bytes: usize = rows.iter().map(ResultRow::byte_size).sum();
        let regions = c.metrics().tables["t"].regions as u64;
        assert!(regions > 1, "split threshold should have produced regions");
        let (_, charged) = c
            .clock()
            .measure(|| c.scan_stream("t", Scan::all()).unwrap().count());
        let model = c.cost_model();
        let expected = model.scan_open * regions
            + model.scan_cost(rows.len() as u64, bytes as u64)
            - model.scan_open;
        assert_eq!(charged, expected);
    }

    #[test]
    fn abandoned_cursor_charges_less_than_a_full_scan() {
        let c = loaded_cluster(3_000);
        let (_, full) = c.clock().measure(|| c.scan("t", Scan::all()).unwrap());
        let (_, partial) = c.clock().measure(|| {
            let mut cursor = c.scan_stream("t", Scan::all()).unwrap();
            for _ in 0..10 {
                cursor.next();
            }
        });
        assert!(partial < full, "partial={partial} full={full}");
    }

    #[test]
    fn limit_bounds_store_rows_scanned() {
        let c = loaded_cluster(3_000);
        let before = c.metrics().ops;
        let rows: Vec<_> = c
            .scan_stream("t", Scan::all().with_limit(7))
            .unwrap()
            .collect();
        assert_eq!(rows.len(), 7);
        let delta = c.metrics().ops.delta_since(&before);
        assert_eq!(delta.scans, 1);
        assert_eq!(delta.scanned_rows, 7);
    }

    #[test]
    fn projection_restricts_returned_cells() {
        let c = Cluster::new(ClusterConfig::default());
        c.create_table(TableSchema::new("t").with_family("cf")).unwrap();
        c.bulk_load(
            "t",
            (0..5).map(|i| {
                Put::new(format!("r{i}"))
                    .with("cf", "a", "1")
                    .with("cf", "b", "2")
            }),
        )
        .unwrap();
        let rows: Vec<_> = c
            .scan_stream("t", Scan::all().column("cf", "b"))
            .unwrap()
            .collect();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.cells.len(), 1);
            assert_eq!(&*row.cells[0].qualifier, "b");
        }
    }

    #[test]
    fn invalid_range_is_rejected_at_open() {
        let c = loaded_cluster(10);
        assert!(matches!(
            c.scan_stream("t", Scan::range("z", "a")),
            Err(StoreError::InvalidRange)
        ));
    }
}
