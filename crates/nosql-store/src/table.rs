//! Table schemas, column families and result rows.

use crate::cell::{Bytes, Cell, Timestamp};
use crate::intern::{intern_name, lookup_name};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Declaration of one column family of a table.
///
/// HBase stores each column family in its own set of files; the paper's
/// baseline transformation (§II-D) puts all attributes of a relation into a
/// single family, which is also the default here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnFamily {
    /// Family name.
    pub name: String,
    /// Maximum number of cell versions retained after compaction.
    pub max_versions: usize,
}

impl ColumnFamily {
    /// A family retaining a single version per cell (HBase's default).
    pub fn new(name: impl Into<String>) -> Self {
        ColumnFamily {
            name: name.into(),
            max_versions: 1,
        }
    }

    /// Sets the number of retained versions.
    pub fn with_versions(mut self, versions: usize) -> Self {
        self.max_versions = versions.max(1);
        self
    }
}

/// Schema of a table: its name and declared column families.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name (unique within the cluster).
    pub name: String,
    /// Declared column families.
    pub families: Vec<ColumnFamily>,
}

impl TableSchema {
    /// Creates a schema with no families; add at least one before use.
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema {
            name: name.into(),
            families: Vec::new(),
        }
    }

    /// Adds a single-version column family.
    pub fn with_family(mut self, name: impl Into<String>) -> Self {
        self.families.push(ColumnFamily::new(name));
        self
    }

    /// Adds a column family retaining `versions` versions per cell.
    pub fn with_versioned_family(mut self, name: impl Into<String>, versions: usize) -> Self {
        self.families.push(ColumnFamily::new(name).with_versions(versions));
        self
    }

    /// Returns the declared family with the given name, if any.
    pub fn family(&self, name: &str) -> Option<&ColumnFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// True if `name` is a declared family.
    pub fn has_family(&self, name: &str) -> bool {
        self.family(name).is_some()
    }
}

/// Versions of a single column, newest first.  Values are shared with the
/// cells returned by reads, so materializing a scan result never copies
/// value bytes.
pub(crate) type VersionMap = BTreeMap<std::cmp::Reverse<Timestamp>, Arc<[u8]>>;

/// Interned `(family, qualifier)` coordinate of a column within a row.
///
/// The name strings are shared `Arc<str>` handles from [`crate::intern`]:
/// constructing a key for an existing column clones two pointers instead of
/// two `String`s.  Ordering follows `(family, qualifier)` string order so
/// iteration (and therefore returned cells) stays sorted exactly as the
/// former `BTreeMap<(String, String), _>` was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ColKey {
    pub(crate) family: Arc<str>,
    pub(crate) qualifier: Arc<str>,
}

impl ColKey {
    /// Builds a key, interning both names.
    pub(crate) fn new(family: &str, qualifier: &str) -> ColKey {
        ColKey {
            family: intern_name(family),
            qualifier: intern_name(qualifier),
        }
    }

    /// Builds a key without interning; `None` means at least one name has
    /// never been seen, so no stored column can match.  Used by probe-only
    /// paths to keep data-derived lookups from growing the interner.
    pub(crate) fn lookup(family: &str, qualifier: &str) -> Option<ColKey> {
        Some(ColKey {
            family: lookup_name(family)?,
            qualifier: lookup_name(qualifier)?,
        })
    }

    /// Byte footprint of one stored version of this column (excluding the
    /// row key, which the region accounts separately).
    pub(crate) fn cell_heap_size(&self, value_len: usize) -> usize {
        self.family.len() + self.qualifier.len() + value_len + Cell::PER_CELL_OVERHEAD
    }
}

impl PartialOrd for ColKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ColKey {
    fn cmp(&self, other: &Self) -> Ordering {
        (&*self.family, &*self.qualifier).cmp(&(&*other.family, &*other.qualifier))
    }
}

/// In-memory representation of one stored row: `(family, qualifier)` →
/// version map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RowData {
    pub(crate) columns: BTreeMap<ColKey, VersionMap>,
}

impl RowData {
    /// Approximate byte footprint of the row (excluding the row key, which
    /// the region accounts separately per cell).
    pub(crate) fn heap_size(&self, row_key_len: usize) -> usize {
        self.columns
            .iter()
            .map(|(key, versions)| {
                versions
                    .values()
                    .map(|value| key.cell_heap_size(value.len()) + row_key_len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total number of stored cell versions in the row.
    #[cfg(test)]
    pub(crate) fn cell_count(&self) -> usize {
        self.columns.values().map(|v| v.len()).sum()
    }

    /// Drops all but the newest `max_versions` versions of every column.
    pub(crate) fn compact(&mut self, max_versions: impl Fn(&str) -> usize) {
        for (key, versions) in self.columns.iter_mut() {
            let keep = max_versions(&key.family).max(1);
            while versions.len() > keep {
                versions.pop_last();
            }
        }
        self.columns.retain(|_, versions| !versions.is_empty());
    }

    /// Is the row empty (no cells at all)?
    pub(crate) fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A row returned from a [`crate::ops::Get`] or [`crate::ops::Scan`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultRow {
    /// Row key of the returned row.
    pub key: Bytes,
    /// Returned cells (newest visible version per column unless more
    /// versions were requested), sorted by family then qualifier.
    pub cells: Vec<Cell>,
}

impl ResultRow {
    /// The newest returned value of `family:qualifier`, if present.
    pub fn value(&self, family: &str, qualifier: &str) -> Option<&[u8]> {
        self.cells
            .iter()
            .filter(|c| &*c.family == family && &*c.qualifier == qualifier)
            .max_by_key(|c| c.timestamp)
            .map(|c| &c.value[..])
    }

    /// The newest returned value of `family:qualifier` decoded as UTF-8.
    pub fn value_str(&self, family: &str, qualifier: &str) -> Option<String> {
        self.value(family, qualifier)
            .map(|v| String::from_utf8_lossy(v).into_owned())
    }

    /// Row key decoded as UTF-8 (lossy).
    pub fn key_str(&self) -> String {
        String::from_utf8_lossy(&self.key).into_owned()
    }

    /// Total serialized size of the returned cells, used for scan-cost
    /// accounting.
    pub fn byte_size(&self) -> usize {
        self.key.len() + self.cells.iter().map(Cell::heap_size).sum::<usize>()
    }

    /// True if no cells were returned.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn schema_family_lookup() {
        let schema = TableSchema::new("t").with_family("cf").with_versioned_family("v", 3);
        assert!(schema.has_family("cf"));
        assert_eq!(schema.family("v").unwrap().max_versions, 3);
        assert!(!schema.has_family("missing"));
    }

    #[test]
    fn row_data_compaction_keeps_newest_versions() {
        let mut row = RowData::default();
        let versions = row.columns.entry(ColKey::new("cf", "a")).or_default();
        for ts in 1..=5u64 {
            versions.insert(Reverse(ts), Arc::from(vec![ts as u8]));
        }
        row.compact(|_| 2);
        let versions = &row.columns[&ColKey::new("cf", "a")];
        assert_eq!(versions.len(), 2);
        assert_eq!(versions.first_key_value().unwrap().0 .0, 5);
        assert_eq!(versions.last_key_value().unwrap().0 .0, 4);
    }

    #[test]
    fn result_row_returns_newest_value() {
        let row = ResultRow {
            key: b"k".to_vec(),
            cells: vec![
                Cell::new("cf", "a", 1, "old"),
                Cell::new("cf", "a", 9, "new"),
                Cell::new("cf", "b", 2, "x"),
            ],
        };
        assert_eq!(row.value("cf", "a").unwrap(), b"new");
        assert_eq!(row.value_str("cf", "b").unwrap(), "x");
        assert_eq!(row.value("cf", "zzz"), None);
        assert!(row.byte_size() > 0);
    }

    #[test]
    fn row_data_size_accounts_cells() {
        let mut row = RowData::default();
        row.columns
            .entry(ColKey::new("cf", "a"))
            .or_default()
            .insert(Reverse(1), Arc::from(&b"hello"[..]));
        assert!(row.heap_size(3) > 5);
        assert_eq!(row.cell_count(), 1);
    }
}
