//! The HBase-style data-manipulation API.
//!
//! The store exposes the five primitive operations the paper lists in §II-C
//! — [`Get`], [`Put`], [`Scan`], [`Delete`] and [`Increment`] — plus the
//! atomic [`CheckAndPut`] that HBase provides and Synergy's lock tables rely
//! on (§IX-C).  All single-row operations are atomic with respect to each
//! other, which is exactly the guarantee the paper builds on.

use crate::cell::{Bytes, Timestamp};

fn to_bytes(v: impl Into<Vec<u8>>) -> Bytes {
    v.into()
}

/// A point read of one row (optionally restricted to specific columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Get {
    /// Row key to read.
    pub row: Bytes,
    /// If non-empty, only these `(family, qualifier)` columns are returned.
    pub columns: Vec<(String, String)>,
    /// Maximum number of versions per cell to return (default 1).
    pub max_versions: usize,
    /// If set, only versions with `timestamp <= bound` are visible.
    pub time_bound: Option<Timestamp>,
}

impl Get {
    /// Reads the newest version of every column of `row`.
    pub fn new(row: impl Into<Vec<u8>>) -> Self {
        Get {
            row: to_bytes(row),
            columns: Vec::new(),
            max_versions: 1,
            time_bound: None,
        }
    }

    /// Restricts the read to a single column.
    pub fn column(mut self, family: impl Into<String>, qualifier: impl Into<String>) -> Self {
        self.columns.push((family.into(), qualifier.into()));
        self
    }

    /// Returns up to `n` versions per cell instead of only the newest.
    pub fn versions(mut self, n: usize) -> Self {
        self.max_versions = n.max(1);
        self
    }

    /// Only returns versions written at or before `ts`.
    pub fn up_to(mut self, ts: Timestamp) -> Self {
        self.time_bound = Some(ts);
        self
    }
}

/// A write of one or more cells of a single row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Put {
    /// Row key being written.
    pub row: Bytes,
    /// Cells to write as `(family, qualifier, value)`.
    pub cells: Vec<(String, String, Bytes)>,
    /// Explicit timestamp; `None` lets the cluster assign the next sequence
    /// number (the normal case).
    pub timestamp: Option<Timestamp>,
}

impl Put {
    /// Starts a put against `row`.
    pub fn new(row: impl Into<Vec<u8>>) -> Self {
        Put {
            row: to_bytes(row),
            cells: Vec::new(),
            timestamp: None,
        }
    }

    /// Adds one cell to the put.
    pub fn add(
        &mut self,
        family: impl Into<String>,
        qualifier: impl Into<String>,
        value: impl Into<Vec<u8>>,
    ) -> &mut Self {
        self.cells.push((family.into(), qualifier.into(), to_bytes(value)));
        self
    }

    /// Builder-style variant of [`Put::add`].
    pub fn with(
        mut self,
        family: impl Into<String>,
        qualifier: impl Into<String>,
        value: impl Into<Vec<u8>>,
    ) -> Self {
        self.add(family, qualifier, value);
        self
    }

    /// Pins every cell in this put to an explicit version timestamp.
    pub fn at(mut self, ts: Timestamp) -> Self {
        self.timestamp = Some(ts);
        self
    }

    /// Number of cells carried by this put.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

/// Which rows a [`Delete`] removes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeleteScope {
    /// Remove the whole row.
    Row,
    /// Remove only the listed `(family, qualifier)` columns.
    Columns(Vec<(String, String)>),
}

/// Removal of a row or of specific columns of a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delete {
    /// Row key to delete from.
    pub row: Bytes,
    /// What to delete.
    pub scope: DeleteScope,
}

impl Delete {
    /// Deletes the entire row.
    pub fn row(row: impl Into<Vec<u8>>) -> Self {
        Delete {
            row: to_bytes(row),
            scope: DeleteScope::Row,
        }
    }

    /// Deletes a single column of the row.
    pub fn column(
        row: impl Into<Vec<u8>>,
        family: impl Into<String>,
        qualifier: impl Into<String>,
    ) -> Self {
        Delete {
            row: to_bytes(row),
            scope: DeleteScope::Columns(vec![(family.into(), qualifier.into())]),
        }
    }
}

/// Atomic add to an 8-byte big-endian counter cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Increment {
    /// Row key holding the counter.
    pub row: Bytes,
    /// Column family of the counter cell.
    pub family: String,
    /// Qualifier of the counter cell.
    pub qualifier: String,
    /// Signed amount to add.
    pub amount: i64,
}

impl Increment {
    /// Adds `amount` to the counter at `row`/`family`:`qualifier`.
    pub fn new(
        row: impl Into<Vec<u8>>,
        family: impl Into<String>,
        qualifier: impl Into<String>,
        amount: i64,
    ) -> Self {
        Increment {
            row: to_bytes(row),
            family: family.into(),
            qualifier: qualifier.into(),
            amount,
        }
    }
}

/// The expected current value in a [`CheckAndPut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expectation {
    /// The cell must currently be absent.
    Absent,
    /// The cell must currently hold exactly this value.
    Equals(Bytes),
}

/// Atomic compare-and-set on a single cell: the `put` is applied only if the
/// checked cell matches the expectation.  This is the primitive Synergy's
/// lock tables are built on (paper §IX-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckAndPut {
    /// Row whose cell is checked (must equal the put's row).
    pub row: Bytes,
    /// Family of the checked cell.
    pub family: String,
    /// Qualifier of the checked cell.
    pub qualifier: String,
    /// Expected current state of the checked cell.
    pub expect: Expectation,
    /// Mutation applied when the check succeeds.
    pub put: Put,
}

impl CheckAndPut {
    /// Builds a check-and-put; panics if the put targets a different row,
    /// because HBase only supports single-row atomicity.
    pub fn new(
        row: impl Into<Vec<u8>>,
        family: impl Into<String>,
        qualifier: impl Into<String>,
        expect: Expectation,
        put: Put,
    ) -> Self {
        let row = to_bytes(row);
        assert_eq!(row, put.row, "CheckAndPut is single-row atomic");
        CheckAndPut {
            row,
            family: family.into(),
            qualifier: qualifier.into(),
            expect,
            put,
        }
    }
}

/// A predicate evaluated server-side against the newest version of a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `family:qualifier == value` (rows missing the column are excluded).
    ColumnEquals {
        /// Column family of the filtered column.
        family: String,
        /// Qualifier of the filtered column.
        qualifier: String,
        /// Value the column must equal.
        value: Bytes,
    },
    /// `family:qualifier != value` (rows missing the column are excluded).
    ColumnNotEquals {
        /// Column family of the filtered column.
        family: String,
        /// Qualifier of the filtered column.
        qualifier: String,
        /// Value the column must differ from.
        value: Bytes,
    },
    /// Row key starts with the given prefix.
    RowPrefix(Bytes),
    /// All of the contained filters must pass.
    And(Vec<Filter>),
}

/// A range read over a table, in row-key order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Scan {
    /// Inclusive start key; empty means "from the beginning".
    pub start: Bytes,
    /// Exclusive stop key; empty means "to the end".
    pub stop: Bytes,
    /// Optional server-side filter.
    pub filter: Option<Filter>,
    /// Maximum number of rows to return (`0` = unlimited).
    pub limit: usize,
    /// If set, only versions written at or before this timestamp are visible.
    pub time_bound: Option<Timestamp>,
    /// If non-empty, only these `(family, qualifier)` columns are returned
    /// (server-side projection pushed into the region walk).  Filters still
    /// see the whole row; rows with none of the requested columns are
    /// skipped, mirroring [`Get::columns`].
    pub columns: Vec<(String, String)>,
}

impl Scan {
    /// Scans the whole table.
    pub fn all() -> Self {
        Scan::default()
    }

    /// Scans `[start, stop)`.
    pub fn range(start: impl Into<Vec<u8>>, stop: impl Into<Vec<u8>>) -> Self {
        Scan {
            start: to_bytes(start),
            stop: to_bytes(stop),
            ..Scan::default()
        }
    }

    /// Scans every row whose key starts with `prefix`.
    pub fn prefix(prefix: impl Into<Vec<u8>>) -> Self {
        let start: Bytes = to_bytes(prefix);
        let mut stop = start.clone();
        // Successor of the prefix: increment the last byte that is not 0xff.
        while let Some(last) = stop.last_mut() {
            if *last < 0xff {
                *last += 1;
                break;
            }
            stop.pop();
        }
        Scan {
            start,
            stop,
            ..Scan::default()
        }
    }

    /// Adds a server-side filter.
    pub fn with_filter(mut self, filter: Filter) -> Self {
        self.filter = Some(match self.filter.take() {
            Some(existing) => Filter::And(vec![existing, filter]),
            None => filter,
        });
        self
    }

    /// Caps the number of returned rows.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Restricts the returned cells to a single column (may be chained).
    pub fn column(mut self, family: impl Into<String>, qualifier: impl Into<String>) -> Self {
        self.columns.push((family.into(), qualifier.into()));
        self
    }

    /// Restricts the returned cells to the given `(family, qualifier)`
    /// columns (replacing any previous projection; empty = all columns).
    pub fn with_columns(mut self, columns: Vec<(String, String)>) -> Self {
        self.columns = columns;
        self
    }

    /// Only returns cell versions written at or before `ts`.
    pub fn up_to(mut self, ts: Timestamp) -> Self {
        self.time_bound = Some(ts);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_builder_collects_cells() {
        let put = Put::new("r1").with("cf", "a", "1").with("cf", "b", "2");
        assert_eq!(put.cell_count(), 2);
        assert_eq!(put.cells[1].1, "b");
    }

    #[test]
    fn prefix_scan_computes_exclusive_stop() {
        let scan = Scan::prefix("cust#");
        assert_eq!(scan.start, b"cust#".to_vec());
        assert_eq!(scan.stop, b"cust$".to_vec());
    }

    #[test]
    fn prefix_scan_handles_trailing_ff() {
        let scan = Scan::prefix(vec![0x61, 0xff]);
        assert_eq!(scan.stop, vec![0x62]);
    }

    #[test]
    #[should_panic(expected = "single-row atomic")]
    fn check_and_put_rejects_cross_row_mutation() {
        let put = Put::new("other");
        let _ = CheckAndPut::new("row", "cf", "lock", Expectation::Absent, put);
    }

    #[test]
    fn with_filter_composes_into_and() {
        let scan = Scan::all()
            .with_filter(Filter::RowPrefix(b"a".to_vec()))
            .with_filter(Filter::ColumnEquals {
                family: "cf".into(),
                qualifier: "x".into(),
                value: b"1".to_vec(),
            });
        match scan.filter.unwrap() {
            Filter::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }
}
