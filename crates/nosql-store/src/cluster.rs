//! The simulated cluster: table administration, request routing, cost
//! charging and storage accounting.
//!
//! A [`Cluster`] plays the role of the paper's HBase layer (HBase + HDFS +
//! ZooKeeper on eight EC2 nodes).  Tables are split into [`Region`]s hosted
//! by a configurable number of region servers; every client-visible
//! operation charges its simulated cost (RPC round trip, server work, WAL
//! sync, scan streaming) into the shared [`SimClock`].

use crate::cell::Timestamp;
use crate::error::{StoreError, StoreResult};
use crate::metrics::{AtomicOpCounters, ClusterMetrics, TableMetrics};
use crate::ops::{CheckAndPut, Delete, Get, Increment, Put, Scan};
use crate::region::{Region, RegionId, RegionServerId};
use crate::table::{ResultRow, TableSchema};
use crate::wal::{WalOp, WriteAheadLog};
use parking_lot::RwLock;
use simclock::{CostModel, SimClock, SimDuration};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of region servers (the paper uses five slave nodes).
    pub region_servers: usize,
    /// A region is split once it exceeds this many bytes.
    pub region_split_bytes: usize,
    /// Cost model charged for every operation.
    pub cost_model: CostModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            region_servers: 5,
            region_split_bytes: 8 * 1024 * 1024,
            cost_model: CostModel::default(),
        }
    }
}

pub(crate) struct TableState {
    pub(crate) schema: TableSchema,
    pub(crate) regions: RwLock<Vec<Region>>,
}

/// The simulated HBase-class cluster.
///
/// Cheap to clone; clones share all state (tables, clock, metrics), mirroring
/// multiple clients holding connections to the same cluster.
///
/// Each handle carries its own **charge sink** clock: ordinarily the shared
/// cluster clock, but region-parallel scans rebind worker handles to private
/// clocks (see [`Cluster::par_scan_stream`]) so per-worker sim deltas can be
/// merged deterministically (max for elapsed, sum for counters).
#[derive(Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
    clock: SimClock,
}

struct ClusterInner {
    config: ClusterConfig,
    tables: RwLock<BTreeMap<String, Arc<TableState>>>,
    counters: AtomicOpCounters,
    wals: Vec<WriteAheadLog>,
    next_timestamp: AtomicU64,
    next_region_id: AtomicU64,
    next_server: AtomicU64,
}

impl Cluster {
    /// Creates a cluster with its own fresh [`SimClock`].
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_clock(config, SimClock::new())
    }

    /// Creates a cluster charging costs into an existing clock (so higher
    /// layers, e.g. the MVCC transaction server, share the same timeline).
    pub fn with_clock(config: ClusterConfig, clock: SimClock) -> Self {
        let servers = config.region_servers.max(1);
        Cluster {
            inner: Arc::new(ClusterInner {
                wals: (0..servers).map(|_| WriteAheadLog::new()).collect(),
                config,
                tables: RwLock::new(BTreeMap::new()),
                counters: AtomicOpCounters::default(),
                next_timestamp: AtomicU64::new(1),
                next_region_id: AtomicU64::new(1),
                next_server: AtomicU64::new(0),
            }),
            clock,
        }
    }

    /// The clock this handle charges costs into (the shared cluster clock,
    /// unless this is a parallel worker's rebound handle).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// A handle over the same cluster state whose charges land on `clock`
    /// instead of the shared timeline.  Parallel scan workers use this so
    /// their sim-cost deltas can be merged (`max` of workers) at the barrier
    /// rather than summing serially on the shared clock.
    pub(crate) fn with_charge_sink(&self, clock: SimClock) -> Cluster {
        Cluster {
            inner: Arc::clone(&self.inner),
            clock,
        }
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.config.cost_model
    }

    /// Next logical cell timestamp (monotonically increasing).
    pub fn next_timestamp(&self) -> Timestamp {
        self.inner.next_timestamp.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn charge(&self, cost: SimDuration) {
        self.clock.charge(cost);
    }

    /// Records one page of streamed scan rows in the operation counters
    /// (the per-scan `scans` count is bumped once, at cursor creation).
    pub(crate) fn record_scan_page(&self, rows: u64, bytes: u64) {
        AtomicOpCounters::bump(&self.inner.counters.scanned_rows, rows);
        AtomicOpCounters::bump(&self.inner.counters.scanned_bytes, bytes);
    }

    /// Bumps the scan counter (one per opened cursor — a parallel scan
    /// counts as one logical scan regardless of worker count).
    pub(crate) fn record_scan_open(&self) {
        AtomicOpCounters::bump(&self.inner.counters.scans, 1);
    }

    fn pick_server(&self) -> RegionServerId {
        let servers = self.inner.config.region_servers.max(1);
        RegionServerId(
            (self.inner.next_server.fetch_add(1, Ordering::Relaxed) as usize) % servers,
        )
    }

    fn next_region_id(&self) -> RegionId {
        RegionId(self.inner.next_region_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Creates a table; fails if it already exists or declares no families.
    pub fn create_table(&self, schema: TableSchema) -> StoreResult<()> {
        assert!(
            !schema.families.is_empty(),
            "a table must declare at least one column family"
        );
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(StoreError::TableExists(schema.name));
        }
        let region = Region::new(self.next_region_id(), self.pick_server(), Vec::new(), Vec::new());
        tables.insert(
            schema.name.clone(),
            Arc::new(TableState {
                schema,
                regions: RwLock::new(vec![region]),
            }),
        );
        Ok(())
    }

    /// Drops a table and all its data.
    pub fn drop_table(&self, name: &str) -> StoreResult<()> {
        self.inner
            .tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::TableNotFound(name.to_string()))
    }

    /// True if the named table exists.
    pub fn table_exists(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(name)
    }

    /// Names of all tables, sorted.
    pub fn list_tables(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    /// The schema of a table.
    pub fn table_schema(&self, name: &str) -> StoreResult<TableSchema> {
        Ok(self.table(name)?.schema.clone())
    }

    pub(crate) fn table(&self, name: &str) -> StoreResult<Arc<TableState>> {
        self.inner
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::TableNotFound(name.to_string()))
    }

    fn wal_for(&self, server: RegionServerId) -> &WriteAheadLog {
        &self.inner.wals[server.0 % self.inner.wals.len()]
    }

    /// The write-ahead log of one region server (for tests and recovery
    /// experiments).
    pub fn wal(&self, server: usize) -> &WriteAheadLog {
        &self.inner.wals[server % self.inner.wals.len()]
    }

    fn region_index_for(regions: &[Region], key: &[u8]) -> usize {
        regions
            .iter()
            .position(|r| r.contains(key))
            .unwrap_or(regions.len().saturating_sub(1))
    }

    fn maybe_split(&self, table: &TableState, regions: &mut Vec<Region>, idx: usize) {
        if regions[idx].byte_size() <= self.inner.config.region_split_bytes {
            return;
        }
        let new_id = self.next_region_id();
        let new_server = self.pick_server();
        if let Some(upper) = regions[idx].split(new_id, new_server) {
            regions.insert(idx + 1, upper);
        }
        let _ = table;
    }

    /// Writes one row.  Charges one RPC + server work + WAL sync.
    pub fn put(&self, table: &str, put: Put) -> StoreResult<()> {
        let state = self.table(table)?;
        let cost = self.cost_model().put_cost(put.cell_count());
        let mut regions = state.regions.write();
        // Timestamp is drawn under the region lock so that versions written
        // to one row are ordered consistently with lock acquisition order.
        let ts = self.next_timestamp();
        let idx = Self::region_index_for(&regions, &put.row);
        let server = regions[idx].server;
        regions[idx].put(&state.schema, &put, ts)?;
        self.wal_for(server).append(
            table,
            WalOp::Put {
                row: put.row.clone(),
                cells: put.cell_count(),
            },
        );
        self.wal_for(server).sync();
        self.maybe_split(&state, &mut regions, idx);
        drop(regions);
        self.charge(cost);
        AtomicOpCounters::bump(&self.inner.counters.puts, 1);
        Ok(())
    }

    /// Writes one row and returns its **before-image**: the row's prior
    /// contents read under the same region write-lock, atomically with the
    /// mutation.  Charges exactly like [`Cluster::put`] — the read shares
    /// the write's RPC and row positioning (a server-side read-modify-write),
    /// so no extra round trip is modeled and only the `puts` counter moves.
    pub fn put_fetch(&self, table: &str, put: Put) -> StoreResult<Option<ResultRow>> {
        let state = self.table(table)?;
        let cost = self.cost_model().put_cost(put.cell_count());
        let mut regions = state.regions.write();
        let ts = self.next_timestamp();
        let idx = Self::region_index_for(&regions, &put.row);
        let server = regions[idx].server;
        let before = regions[idx].get(&Get::new(put.row.clone()));
        regions[idx].put(&state.schema, &put, ts)?;
        self.wal_for(server).append(
            table,
            WalOp::Put {
                row: put.row.clone(),
                cells: put.cell_count(),
            },
        );
        self.wal_for(server).sync();
        self.maybe_split(&state, &mut regions, idx);
        drop(regions);
        self.charge(cost);
        AtomicOpCounters::bump(&self.inner.counters.puts, 1);
        Ok(before)
    }

    /// Bulk-loads rows without charging simulated cost or writing the WAL.
    ///
    /// This models the paper's offline database-population phase (which is
    /// followed by a major compaction and is not part of any measured
    /// response time).
    pub fn bulk_load(&self, table: &str, puts: impl IntoIterator<Item = Put>) -> StoreResult<usize> {
        let state = self.table(table)?;
        let mut regions = state.regions.write();
        let mut loaded = 0;
        for put in puts {
            let ts = self.next_timestamp();
            let idx = Self::region_index_for(&regions, &put.row);
            regions[idx].put(&state.schema, &put, ts)?;
            self.maybe_split(&state, &mut regions, idx);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Reads one row.  Charges one RPC + server work.
    pub fn get(&self, table: &str, get: Get) -> StoreResult<Option<ResultRow>> {
        let state = self.table(table)?;
        self.charge(self.cost_model().get_cost());
        AtomicOpCounters::bump(&self.inner.counters.gets, 1);
        let regions = state.regions.read();
        let idx = Self::region_index_for(&regions, &get.row);
        Ok(regions[idx].get(&get))
    }

    /// Deletes a row or columns of a row.  Charges one RPC + WAL sync.
    pub fn delete(&self, table: &str, delete: Delete) -> StoreResult<bool> {
        let state = self.table(table)?;
        let cost = self.cost_model().delete_cost();
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &delete.row);
        let server = regions[idx].server;
        let removed = regions[idx].delete(&delete)?;
        self.wal_for(server).append(
            table,
            WalOp::Delete {
                row: delete.row.clone(),
            },
        );
        self.wal_for(server).sync();
        drop(regions);
        self.charge(cost);
        AtomicOpCounters::bump(&self.inner.counters.deletes, 1);
        Ok(removed)
    }

    /// Deletes a row and returns its **before-image**, read under the same
    /// region write-lock.  Charges exactly like [`Cluster::delete`]; only
    /// the `deletes` counter moves.  Returns `None` when the row was absent.
    pub fn delete_fetch(&self, table: &str, delete: Delete) -> StoreResult<Option<ResultRow>> {
        let state = self.table(table)?;
        let cost = self.cost_model().delete_cost();
        let mut regions = state.regions.write();
        let idx = Self::region_index_for(&regions, &delete.row);
        let server = regions[idx].server;
        let before = regions[idx].get(&Get::new(delete.row.clone()));
        regions[idx].delete(&delete)?;
        self.wal_for(server).append(
            table,
            WalOp::Delete {
                row: delete.row.clone(),
            },
        );
        self.wal_for(server).sync();
        drop(regions);
        self.charge(cost);
        AtomicOpCounters::bump(&self.inner.counters.deletes, 1);
        Ok(before)
    }

    /// Atomically adds to a counter cell.  Charges like a put.
    pub fn increment(&self, table: &str, inc: Increment) -> StoreResult<i64> {
        let state = self.table(table)?;
        let cost = self.cost_model().put_cost(1);
        let mut regions = state.regions.write();
        let ts = self.next_timestamp();
        let idx = Self::region_index_for(&regions, &inc.row);
        let server = regions[idx].server;
        let value = regions[idx].increment(&state.schema, &inc, ts)?;
        self.wal_for(server).append(
            table,
            WalOp::Increment {
                row: inc.row.clone(),
                amount: inc.amount,
            },
        );
        self.wal_for(server).sync();
        drop(regions);
        self.charge(cost);
        AtomicOpCounters::bump(&self.inner.counters.increments, 1);
        Ok(value)
    }

    /// Atomic compare-and-set.  Charges one RPC + server work + WAL sync.
    pub fn check_and_put(&self, table: &str, cap: CheckAndPut) -> StoreResult<bool> {
        let state = self.table(table)?;
        let cost = self.cost_model().check_and_put_cost();
        let mut regions = state.regions.write();
        let ts = self.next_timestamp();
        let idx = Self::region_index_for(&regions, &cap.row);
        let server = regions[idx].server;
        let applied = regions[idx].check_and_put(
            &state.schema,
            &cap.family,
            &cap.qualifier,
            &cap.expect,
            &cap.put,
            ts,
        )?;
        if applied {
            self.wal_for(server).append(
                table,
                WalOp::Put {
                    row: cap.put.row.clone(),
                    cells: cap.put.cell_count(),
                },
            );
            self.wal_for(server).sync();
        }
        drop(regions);
        self.charge(cost);
        AtomicOpCounters::bump(&self.inner.counters.check_and_puts, 1);
        Ok(applied)
    }

    /// Scans rows in key order across all regions intersecting the range.
    /// Charges scanner-open per region plus per-batch/per-row/per-byte
    /// streaming costs.
    ///
    /// This is a thin collect wrapper over [`Cluster::scan_stream`]; callers
    /// that do not need the whole result materialized should pull the cursor
    /// directly.  Like an HBase scanner, the stream is row-atomic but pages
    /// through the table without holding a table-wide lock.
    pub fn scan(&self, table: &str, scan: Scan) -> StoreResult<Vec<ResultRow>> {
        Ok(self.scan_stream(table, scan)?.collect())
    }

    /// Number of rows currently stored in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<u64> {
        let state = self.table(table)?;
        let regions = state.regions.read();
        Ok(regions.iter().map(|r| r.row_count() as u64).sum())
    }

    /// Storage statistics (row / byte / region counts) for one table, or
    /// `None` when the table does not exist.  This reads region metadata
    /// only — no simulated cost is charged and no operation counter moves —
    /// so planners can consult it freely (e.g. the query optimizer's
    /// cardinality estimates) without perturbing measured figures.
    pub fn table_stats(&self, table: &str) -> Option<crate::metrics::TableMetrics> {
        let state = self.table(table).ok()?;
        let regions = state.regions.read();
        Some(crate::metrics::TableMetrics {
            rows: regions.iter().map(|r| r.row_count() as u64).sum(),
            bytes: regions.iter().map(|r| r.byte_size() as u64).sum(),
            regions: regions.len(),
        })
    }

    /// Major-compacts one table (drops excess cell versions, reclaims space).
    pub fn major_compact(&self, table: &str) -> StoreResult<()> {
        let state = self.table(table)?;
        let mut regions = state.regions.write();
        for region in regions.iter_mut() {
            region.major_compact(&state.schema);
        }
        Ok(())
    }

    /// Major-compacts every table, as the paper does after each database
    /// population.
    pub fn major_compact_all(&self) {
        for table in self.list_tables() {
            let _ = self.major_compact(&table);
        }
    }

    /// Snapshot of operation counters and per-table storage statistics.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut metrics = ClusterMetrics {
            ops: self.inner.counters.snapshot(),
            tables: BTreeMap::new(),
        };
        for (name, state) in self.inner.tables.read().iter() {
            let regions = state.regions.read();
            metrics.tables.insert(
                name.clone(),
                TableMetrics {
                    rows: regions.iter().map(|r| r.row_count() as u64).sum(),
                    bytes: regions.iter().map(|r| r.byte_size() as u64).sum(),
                    regions: regions.len(),
                },
            );
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Expectation;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn orders_schema() -> TableSchema {
        TableSchema::new("orders").with_family("cf")
    }

    #[test]
    fn create_and_drop_tables() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        assert!(c.table_exists("orders"));
        assert!(matches!(
            c.create_table(orders_schema()),
            Err(StoreError::TableExists(_))
        ));
        c.drop_table("orders").unwrap();
        assert!(!c.table_exists("orders"));
        assert!(matches!(
            c.drop_table("orders"),
            Err(StoreError::TableNotFound(_))
        ));
    }

    #[test]
    fn put_get_delete_round_trip_and_costs() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        let start = c.clock().now();
        c.put("orders", Put::new("o1").with("cf", "total", "99")).unwrap();
        let after_put = c.clock().now();
        assert!(after_put > start, "puts must charge simulated time");
        let row = c.get("orders", Get::new("o1")).unwrap().unwrap();
        assert_eq!(row.value_str("cf", "total").unwrap(), "99");
        assert!(c.delete("orders", Delete::row("o1")).unwrap());
        assert!(c.get("orders", Get::new("o1")).unwrap().is_none());
        let m = c.metrics();
        assert_eq!(m.ops.puts, 1);
        assert_eq!(m.ops.gets, 2);
        assert_eq!(m.ops.deletes, 1);
    }

    #[test]
    fn fetch_variants_return_before_images_at_plain_write_cost() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        assert!(c
            .put_fetch("orders", Put::new("o1").with("cf", "v", "1"))
            .unwrap()
            .is_none());
        let before = c
            .put_fetch("orders", Put::new("o1").with("cf", "v", "2"))
            .unwrap()
            .unwrap();
        assert_eq!(before.value_str("cf", "v").unwrap(), "1");
        let (_, put_cost) =
            c.clock().measure(|| c.put("orders", Put::new("o2").with("cf", "v", "1")).unwrap());
        let (_, fetch_cost) = c.clock().measure(|| {
            c.put_fetch("orders", Put::new("o3").with("cf", "v", "1")).unwrap();
        });
        assert_eq!(put_cost, fetch_cost, "before-image read rides the write RPC");
        let gets_before = c.metrics().ops.gets;
        let removed = c.delete_fetch("orders", Delete::row("o1")).unwrap().unwrap();
        assert_eq!(removed.value_str("cf", "v").unwrap(), "2");
        assert!(c.delete_fetch("orders", Delete::row("o1")).unwrap().is_none());
        assert_eq!(c.metrics().ops.gets, gets_before, "no get counter movement");
    }

    #[test]
    fn unknown_table_is_an_error() {
        let c = cluster();
        assert!(matches!(
            c.get("nope", Get::new("r")),
            Err(StoreError::TableNotFound(_))
        ));
    }

    #[test]
    fn scan_spans_region_splits() {
        let config = ClusterConfig {
            region_split_bytes: 2_000,
            ..ClusterConfig::default()
        };
        let c = Cluster::new(config);
        c.create_table(orders_schema()).unwrap();
        for i in 0..200 {
            c.bulk_load(
                "orders",
                [Put::new(format!("o{i:04}")).with("cf", "v", vec![b'x'; 64])],
            )
            .unwrap();
        }
        let metrics = c.metrics();
        assert!(metrics.tables["orders"].regions > 1, "table should have split");
        let rows = c.scan("orders", Scan::all()).unwrap();
        assert_eq!(rows.len(), 200);
        // Rows come back in global key order even across regions.
        let keys: Vec<String> = rows.iter().map(ResultRow::key_str).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let ranged = c.scan("orders", Scan::range("o0010", "o0020")).unwrap();
        assert_eq!(ranged.len(), 10);
    }

    #[test]
    fn bulk_load_is_free_but_accounted_in_storage() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        let before = c.clock().now();
        c.bulk_load(
            "orders",
            (0..50).map(|i| Put::new(format!("o{i}")).with("cf", "v", "1")),
        )
        .unwrap();
        assert_eq!(c.clock().now(), before, "bulk load must not charge time");
        assert_eq!(c.row_count("orders").unwrap(), 50);
        assert!(c.metrics().tables["orders"].bytes > 0);
    }

    #[test]
    fn check_and_put_behaves_like_a_lock() {
        let c = cluster();
        c.create_table(TableSchema::new("locks").with_family("l")).unwrap();
        let acquire = |c: &Cluster| {
            c.check_and_put(
                "locks",
                CheckAndPut::new(
                    "root#42",
                    "l",
                    "held",
                    Expectation::Absent,
                    Put::new("root#42").with("l", "held", "1"),
                ),
            )
            .unwrap()
        };
        assert!(acquire(&c));
        assert!(!acquire(&c));
        // Release.
        assert!(c
            .check_and_put(
                "locks",
                CheckAndPut::new(
                    "root#42",
                    "l",
                    "held",
                    Expectation::Equals(b"1".to_vec()),
                    Put::new("root#42").with("l", "held", ""),
                ),
            )
            .unwrap());
    }

    #[test]
    fn increments_are_atomic_across_threads() {
        let c = cluster();
        c.create_table(TableSchema::new("counters").with_family("cf")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        c.increment("counters", Increment::new("hits", "cf", "n", 1)).unwrap();
                    }
                });
            }
        });
        let row = c.get("counters", Get::new("hits")).unwrap().unwrap();
        let value = i64::from_be_bytes(row.value("cf", "n").unwrap().try_into().unwrap());
        assert_eq!(value, 400);
    }

    #[test]
    fn major_compaction_reclaims_old_versions() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        for _ in 0..10 {
            c.put("orders", Put::new("o1").with("cf", "v", vec![b'x'; 500])).unwrap();
        }
        let before = c.metrics().tables["orders"].bytes;
        c.major_compact_all();
        let after = c.metrics().tables["orders"].bytes;
        assert!(after < before);
    }

    #[test]
    fn wal_records_mutations() {
        let c = Cluster::new(ClusterConfig {
            region_servers: 1,
            ..ClusterConfig::default()
        });
        c.create_table(orders_schema()).unwrap();
        c.put("orders", Put::new("o1").with("cf", "v", "1")).unwrap();
        c.delete("orders", Delete::row("o1")).unwrap();
        let wal = c.wal(0);
        assert_eq!(wal.len(), 2);
        assert!(wal.unsynced().is_empty());
    }

    #[test]
    fn scan_cost_grows_with_result_size() {
        let c = cluster();
        c.create_table(orders_schema()).unwrap();
        c.bulk_load(
            "orders",
            (0..2_000).map(|i| Put::new(format!("o{i:05}")).with("cf", "v", vec![b'x'; 64])),
        )
        .unwrap();
        let (_, small) = c.clock().measure(|| c.scan("orders", Scan::all().with_limit(10)).unwrap());
        let (_, large) = c.clock().measure(|| c.scan("orders", Scan::all()).unwrap());
        assert!(large > small * 2, "large={large} small={small}");
    }
}
